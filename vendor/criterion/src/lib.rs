//! Minimal stand-in for the slice of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the bench harness is a
//! small self-contained timer that is source-compatible with the workspace's
//! bench files: `Criterion::bench_function`, `benchmark_group` with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark is auto-calibrated (iteration count doubled until one
//! sample takes ≳5 ms), then timed over `sample_size` samples; the minimum,
//! median, and mean per-iteration times are printed. There are no plots,
//! no statistics beyond that, and no baseline comparisons.
//!
//! Like the real crate, passing `--test` on the bench binary's command line
//! (`cargo bench --bench NAME -- --test`) switches to test mode: every
//! benchmark routine runs exactly once, untimed, so CI can smoke-check that
//! the bench paths still work without timing flakiness.

use std::time::{Duration, Instant};

/// Whether `--test` was passed to the bench binary (the real crate's
/// test-mode flag): run every routine once, report no timings.
fn test_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name + parameter id (`name/param`).
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Per-iteration timing loop handle passed to bench closures.
pub struct Bencher {
    /// Iterations to run per sample (set by calibration).
    iterations: u64,
    /// Measured duration of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` runs of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut routine: F) {
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    if test_mode() {
        routine(&mut bencher);
        println!("Testing {name} ... Success");
        return;
    }
    // Calibrate: double the iteration count until one sample takes ≳5 ms
    // (capped so very slow routines still run exactly once per sample).
    loop {
        routine(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(5) || bencher.iterations >= 1 << 20 {
            break;
        }
        bencher.iterations *= 2;
    }

    let samples = sample_size.max(2);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        routine(&mut bencher);
        per_iter.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<48} time: [min {} | median {} | mean {}]  ({} iter/sample, {} samples)",
        format_time(min),
        format_time(median),
        format_time(mean),
        bencher.iterations,
        samples,
    );
}

/// The bench context handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Times a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        run_benchmark(name, self.default_sample_size, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Times a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.sample_size, routine);
        self
    }

    /// Times a function parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Things accepted as a benchmark label (`&str` or a [`BenchmarkId`]).
pub trait IntoLabel {
    /// Renders the label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Declares a bench group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_support_inputs_and_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(12_000_000_000.0).ends_with('s'));
    }
}
