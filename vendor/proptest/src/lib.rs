//! Minimal stand-in for the slice of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small property-testing harness that is source-compatible with the
//! `proptest!` blocks written against the real crate:
//!
//! * `proptest! { #[test] fn name(arg in strategy, ...) { body } }`
//! * strategies: integer and float ranges (`0usize..12`, `0.0f64..1.0`),
//!   tuples of strategies, `any::<T>()`, and
//!   `proptest::collection::vec(strategy, size)` with a fixed size or range;
//! * assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the rendered assertion message. Each test draws
//! [`test_runner::default_cases`] cases (64 by default, override with the
//! `PROPTEST_CASES` environment variable) from a generator seeded by the
//! test's name, so runs are deterministic.

pub mod strategy {
    //! The [`Strategy`] trait and the implementations the workspace uses.

    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + hi as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = (rng.next_u64() as u128 * span) >> 64;
                    (self.start as i128 + hi as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i64 => u64, i32 => u32, isize => usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: crate::arbitrary::ArbitraryValue> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the handful of types the workspace samples.

    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue {
        /// Draws a uniform value from the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl ArbitraryValue for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

pub mod collection {
    //! `proptest::collection::vec` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible size arguments for [`vec()`]: a fixed length or a range.
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirrors `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = if span <= 1 {
                self.size.min
            } else {
                self.size.min + ((rng.next_u64() as u128 * span as u128) >> 64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic generator and case bookkeeping behind `proptest!`.

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// `prop_assert!`-family failure; the test panics with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a rendered message.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }
    }

    /// xoshiro256++ seeded from a string (the test's name), so each property
    /// test has its own deterministic stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Builds the generator for one named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, expanded through SplitMix64.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = hash;
            let mut word = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                state: [word(), word(), word(), word()],
            }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in `[0, 1)` with 53 random bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases each property test runs: `PROPTEST_CASES` or 64.
    pub fn default_cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Cap on consecutive `prop_assume!` rejections before a test gives up
    /// (mirrors proptest's "too many global rejects" guard).
    pub const MAX_REJECTS: usize = 65_536;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests; source-compatible with the real `proptest!` for
/// the argument-list form used in this workspace.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let __cases = $crate::test_runner::default_cases();
                let mut __passed = 0usize;
                let mut __rejected = 0usize;
                while __passed < __cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejected += 1;
                            if __rejected > $crate::test_runner::MAX_REJECTS {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({} accepted)",
                                    stringify!($name),
                                    __passed
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (re-drawn) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(
            a in 3usize..10,
            pair in (0usize..5, 0.0f64..1.0),
            flag in any::<bool>(),
            word in any::<u64>(),
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(pair.0 < 5 && (0.0..1.0).contains(&pair.1));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert_eq!(word, word);
        }

        #[test]
        fn vec_sizes_are_respected(
            fixed in crate::collection::vec(0usize..4, 7),
            ranged in crate::collection::vec((0usize..3, 0usize..3), 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..6).contains(&ranged.len()));
        }

        #[test]
        fn assume_rejects_until_satisfied(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failure_panics_with_message() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
