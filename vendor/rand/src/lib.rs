//! Minimal stand-in for the slice of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the exact API surface it consumes: [`rngs::SmallRng`] (a xoshiro256++
//! generator seeded through SplitMix64, the same construction the real
//! `SmallRng` uses on 64-bit targets), the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Streams differ from the real crate, but
//! every consumer in this workspace only relies on determinism-per-seed and
//! statistical quality, not on exact byte streams.

/// Core trait producing raw random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding mirror of `rand::SeedableRng` (only `seed_from_u64` is used).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts a raw word into a uniform f64 in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift; the bias is < 2^-64 per draw,
                // immaterial for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full u64 domain.
                    return start + rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`a..b` over the integer types used in this
    /// workspace, or an `f64` range).
    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Matches the construction the real `SmallRng` uses on 64-bit targets;
    /// the stream itself is not byte-compatible with any rand release, which
    /// no consumer in this workspace depends on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom` (only `shuffle`
    /// is used in this workspace).
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let bound = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * bound as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let equal = (0..100).filter(|_| a.gen_range(0usize..1000) == c.gen_range(0usize..1000));
        assert!(equal.count() < 10);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is a fixpoint with negligible probability"
        );
    }

    #[test]
    fn unit_doubles_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0f64..1.0);
            min = min.min(f);
            max = max.max(f);
        }
        assert!(min < 0.01 && max > 0.99);
    }
}
