//! Minimal stand-in for the real `serde` crate.
//!
//! The workspace annotates its public data types with
//! `#[derive(Serialize, Deserialize)]` but never actually serialises them
//! (there is no serde_json / bincode consumer in-tree), and the build
//! environment has no crates.io access. This shim provides the two marker
//! traits and re-exports the no-op derives so the annotations compile.
//! Replacing the `serde` entry in the workspace `Cargo.toml` with the real
//! crate requires no source changes anywhere else.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
