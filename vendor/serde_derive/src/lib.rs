//! No-op stand-ins for serde's `Serialize`/`Deserialize` derives.
//!
//! The workspace only uses the derives as annotations (no code actually
//! serialises anything), and the build environment has no crates.io access,
//! so the derives expand to nothing. Swapping the `serde` workspace
//! dependency back to the real crate requires no source changes.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
