//! End-to-end recovery tests: the full pipeline (generate → detect → score)
//! across the parameter regimes the paper's theorems and figures cover.

use cdrw_repro::prelude::*;

/// The paper's experimental δ: the expected conductance of a planted block.
fn paper_delta(params: &PpmParams) -> f64 {
    params.expected_block_conductance().clamp(0.01, 1.0)
}

fn recover_f_score(n: usize, r: usize, p: f64, q: f64, seed: u64) -> f64 {
    let params = PpmParams::new(n, r, p, q).expect("valid parameters");
    let (graph, truth) = generate_ppm(&params, seed).expect("generation succeeds");
    let config = CdrwConfig::builder()
        .seed(seed)
        .delta(paper_delta(&params))
        .build();
    let result = Cdrw::new(config)
        .detect_all(&graph)
        .expect("detection succeeds");
    f_score(result.partition(), &truth).f_score
}

#[test]
fn gnp_single_community_is_recovered_near_the_connectivity_threshold() {
    // Figure 2's regime: r = 1, p = 2 ln n / n.
    let n = 1024;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let f = recover_f_score(n, 1, p, 0.0, 1);
    assert!(f > 0.9, "F = {f}");
}

#[test]
fn two_sparse_blocks_are_recovered() {
    // Figure 3's easiest series: p = 2 ln² n / n, q = 0.1/n.
    let n = 1024;
    let p = 2.0 * (n as f64).ln().powi(2) / n as f64;
    let q = 0.1 / n as f64;
    let f = recover_f_score(n, 2, p, q, 2);
    assert!(f > 0.9, "F = {f}");
}

#[test]
fn eight_blocks_inside_the_theorem_regime_are_recovered() {
    // Theorem 6 regime: q well below p / (r log(n/r)).
    let r = 8;
    let n = 2048;
    let p = 2.0 * (n as f64).ln().powi(2) / n as f64;
    let block = n / r;
    let threshold = p / (r as f64 * (block as f64).ln());
    let q = threshold / 4.0;
    let f = recover_f_score(n, r, p, q, 3);
    assert!(
        f > 0.8,
        "F = {f} (q = {q:.2e}, threshold = {threshold:.2e})"
    );
}

#[test]
fn accuracy_degrades_gracefully_as_q_approaches_p() {
    // The community structure blurs as p/q shrinks; the F-score should drop
    // but the algorithm must not fail outright.
    let n = 512;
    let p = 2.0 * (n as f64).ln().powi(2) / n as f64;
    let easy = recover_f_score(n, 2, p, p / 100.0, 4);
    let hard = recover_f_score(n, 2, p, p / 3.0, 4);
    assert!(easy > 0.85, "easy F = {easy}");
    assert!(
        hard <= easy + 0.05,
        "hard ({hard}) should not beat easy ({easy})"
    );
    assert!(hard > 0.3, "hard instance collapsed entirely: F = {hard}");
}

#[test]
fn detection_works_from_every_seed_of_a_small_instance() {
    let params = PpmParams::new(128, 2, 0.4, 0.01).unwrap();
    let (graph, truth) = generate_ppm(&params, 5).unwrap();
    let cdrw = Cdrw::new(
        CdrwConfig::builder()
            .seed(1)
            .delta(paper_delta(&params))
            .min_community_size(8)
            .build(),
    );
    let mut correct = 0usize;
    for seed_vertex in 0..graph.num_vertices() {
        let detection = cdrw.detect_community(&graph, seed_vertex).unwrap();
        let truth_block = truth.community_of(seed_vertex).unwrap();
        let inside = detection
            .members
            .iter()
            .filter(|&&v| truth.community_of(v) == Some(truth_block))
            .count();
        if inside * 2 > detection.members.len() {
            correct += 1;
        }
    }
    // The overwhelming majority of seeds must yield a community dominated by
    // their own block.
    assert!(
        correct as f64 > 0.9 * graph.num_vertices() as f64,
        "only {correct}/128 seeds produced a majority-correct community"
    );
}

#[test]
fn parallel_extension_matches_sequential_quality() {
    let params = PpmParams::new(512, 4, 0.3, 0.003).unwrap();
    let (graph, truth) = generate_ppm(&params, 6).unwrap();
    let cdrw = Cdrw::new(
        CdrwConfig::builder()
            .seed(2)
            .delta(paper_delta(&params))
            .build(),
    );
    // Score the raw seeded detections, as the paper does: parallel detection
    // may legitimately grow the same block from two different seeds.
    let paper_score = |result: &DetectionResult| {
        f_score_for_detections(
            result
                .detections()
                .iter()
                .map(|d| (d.members.as_slice(), d.seed)),
            &truth,
        )
        .f_score
    };
    let sequential = paper_score(&cdrw.detect_all(&graph).unwrap());
    let parallel = paper_score(&cdrw.detect_parallel(&graph, 4).unwrap());
    assert!(sequential > 0.8, "sequential F = {sequential}");
    assert!(parallel > 0.7, "parallel F = {parallel}");
}
