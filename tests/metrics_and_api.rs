//! Cross-crate checks of the metrics and of the umbrella prelude API
//! (everything the README promises can be reached through
//! `cdrw_repro::prelude`).

use cdrw_repro::prelude::*;
use cdrw_repro::walk::{estimate_mixing_time, spectral_gap};

#[test]
fn all_metrics_agree_on_perfect_and_poor_detections() {
    let params = PpmParams::new(256, 4, 0.4, 0.002).unwrap();
    let (graph, truth) = generate_ppm(&params, 13).unwrap();

    // A perfect detection scores 1.0 on all metrics.
    assert!((f_score(&truth, &truth).f_score - 1.0).abs() < 1e-12);
    assert!((nmi(&truth, &truth) - 1.0).abs() < 1e-12);
    assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12);

    // The trivial single community scores poorly on NMI/ARI but keeps
    // perfect recall in the F decomposition.
    let trivial = Partition::single_community(graph.num_vertices()).unwrap();
    let f = f_score(&trivial, &truth);
    assert!(f.recall > 0.999);
    assert!(f.precision < 0.3);
    assert!(nmi(&trivial, &truth) < 0.05);
    assert!(adjusted_rand_index(&trivial, &truth).abs() < 0.05);

    // A real CDRW detection sits near the top on all three metrics.
    let config = CdrwConfig::builder()
        .seed(3)
        .delta(params.expected_block_conductance())
        .build();
    let result = Cdrw::new(config).detect_all(&graph).unwrap();
    let detected = result.partition();
    assert!(f_score(detected, &truth).f_score > 0.85);
    assert!(nmi(detected, &truth) > 0.7);
    assert!(adjusted_rand_index(detected, &truth) > 0.7);
}

#[test]
fn partition_and_raw_detection_scores_are_consistent() {
    let params = PpmParams::new(256, 2, 0.3, 0.003).unwrap();
    let (graph, truth) = generate_ppm(&params, 19).unwrap();
    let config = CdrwConfig::builder()
        .seed(5)
        .delta(params.expected_block_conductance())
        .build();
    let result = Cdrw::new(config).detect_all(&graph).unwrap();

    // The paper's metric: average F over the raw seeded detections.
    let raw = f_score_for_detections(
        result
            .detections()
            .iter()
            .map(|d| (d.members.as_slice(), d.seed)),
        &truth,
    )
    .f_score;
    // Alternative view: best-match scoring of the disjoint partition.
    // Overlap resolution can only leave residual fragments behind (a block
    // re-detected from a later seed contributes only its previously
    // unclaimed vertices), so the partition-based score never exceeds the raw
    // score by much, while the raw score on this clean instance is
    // essentially perfect.
    let best_match = f_score(result.partition(), &truth).f_score;
    assert!(raw > 0.9, "raw detection F = {raw}");
    assert!(
        best_match <= raw + 0.1,
        "best-match {best_match} vs raw {raw}"
    );
    assert!(best_match > 0.6, "best-match F = {best_match}");
}

#[test]
fn walk_machinery_is_reachable_and_consistent_through_the_umbrella() {
    let params = PpmParams::new(256, 1, 0.1, 0.0).unwrap();
    let (graph, _) = generate_ppm(&params, 23).unwrap();

    // Mixing time of an expander is small; λ₂ is bounded away from 1.
    let mixing = estimate_mixing_time(&graph, 0, 0.25, 200).unwrap();
    assert!(mixing.converged);
    assert!(mixing.steps < 30);
    let lambda = spectral_gap(&graph, 100).unwrap();
    assert!(lambda < 0.7, "λ₂ = {lambda}");

    // The local mixing sweep via the prelude types.
    let operator = WalkOperator::new(&graph);
    let distribution = operator.walk(&WalkDistribution::point_mass(256, 0).unwrap(), 8);
    let outcome = cdrw_repro::walk::largest_mixing_set(
        &graph,
        &distribution,
        &LocalMixingConfig::for_graph_size(256),
    )
    .unwrap();
    assert!(outcome.found());
    assert!(outcome.size() > 200);
    let _: &LocalMixingOutcome = &outcome;
}

#[test]
fn graph_substrate_is_reachable_through_the_umbrella() {
    let mut builder = GraphBuilder::new(4);
    builder.add_edge(0, 1).unwrap();
    builder.add_edge(1, 2).unwrap();
    builder.add_edge(2, 3).unwrap();
    let graph: Graph = builder.build();
    assert_eq!(graph.num_edges(), 3);
    let v: VertexId = 2;
    assert_eq!(graph.degree(v), 2);
    assert_eq!(cdrw_repro::graph::traversal::diameter(&graph).unwrap(), 3);
}
