//! Reproducibility: every layer of the stack is deterministic given its
//! seeds, which is what makes the experiment tables in EXPERIMENTS.md
//! regenerable bit-for-bit.

use cdrw_repro::prelude::*;

#[test]
fn generators_are_deterministic_and_seed_sensitive() {
    let gnp = GnpParams::new(300, 0.05).unwrap();
    assert_eq!(
        generate_gnp(&gnp, 5).unwrap(),
        generate_gnp(&gnp, 5).unwrap()
    );
    assert_ne!(
        generate_gnp(&gnp, 5).unwrap(),
        generate_gnp(&gnp, 6).unwrap()
    );

    let ppm = PpmParams::new(300, 3, 0.2, 0.01).unwrap();
    assert_eq!(
        generate_ppm(&ppm, 8).unwrap(),
        generate_ppm(&ppm, 8).unwrap()
    );

    let sbm = SbmParams::symmetric(300, 3, 0.2, 0.01).unwrap();
    assert_eq!(
        generate_sbm(&sbm, 9).unwrap(),
        generate_sbm(&sbm, 9).unwrap()
    );
}

#[test]
fn full_detection_pipeline_is_deterministic() {
    let params = PpmParams::new(256, 2, 0.25, 0.005).unwrap();
    let (graph, _) = generate_ppm(&params, 21).unwrap();
    let config = CdrwConfig::builder().seed(13).delta(0.1).build();

    let run = || Cdrw::new(config).detect_all(&graph).unwrap();
    assert_eq!(run(), run());

    let congest = || {
        CongestCdrw::new(CongestConfig::new(config))
            .detect_all(&graph)
            .unwrap()
    };
    assert_eq!(congest(), congest());

    let kmachine = || {
        KMachineSimulator::new(KMachineConfig::new(4).with_congest(CongestConfig::new(config)))
            .unwrap()
            .run(&graph)
            .unwrap()
    };
    assert_eq!(kmachine(), kmachine());
}

#[test]
fn baselines_are_deterministic() {
    let params = PpmParams::new(200, 2, 0.25, 0.01).unwrap();
    let (graph, _) = generate_ppm(&params, 31).unwrap();

    let lpa = || label_propagation(&graph, &LpaConfig::default()).unwrap();
    assert_eq!(lpa(), lpa());

    let avg = || averaging_dynamics(&graph, &AveragingConfig::default()).unwrap();
    assert_eq!(avg(), avg());

    let spectral = || spectral_partition(&graph, &SpectralConfig::default()).unwrap();
    assert_eq!(spectral(), spectral());

    let wt = || walktrap(&graph, &WalktrapConfig::default()).unwrap();
    assert_eq!(wt(), wt());
}

#[test]
fn different_algorithm_seeds_change_only_the_seed_order_not_the_quality() {
    let params = PpmParams::new(512, 2, 0.2, 0.002).unwrap();
    let (graph, truth) = generate_ppm(&params, 17).unwrap();
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    let mut scores = Vec::new();
    for seed in 0..4u64 {
        let config = CdrwConfig::builder().seed(seed).delta(delta).build();
        let result = Cdrw::new(config).detect_all(&graph).unwrap();
        scores.push(f_score(result.partition(), &truth).f_score);
    }
    for score in &scores {
        assert!(*score > 0.85, "scores across seeds: {scores:?}");
    }
}
