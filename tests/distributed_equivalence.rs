//! The CONGEST and k-machine layers must agree with the sequential algorithm
//! and with each other: same detected communities, costs consistent with the
//! theory they implement.

use cdrw_repro::prelude::*;

fn instance(n: usize, seed: u64) -> (Graph, Partition, f64) {
    let p = (12.0 * (n as f64).ln() / n as f64).min(1.0);
    let params = PpmParams::new(n, 2, p, p / 40.0).unwrap();
    let (graph, truth) = generate_ppm(&params, seed).unwrap();
    (
        graph,
        truth,
        params.expected_block_conductance().clamp(0.01, 1.0),
    )
}

#[test]
fn congest_and_sequential_detect_identical_partitions() {
    for seed in [1u64, 2, 3] {
        let (graph, _, delta) = instance(256, seed);
        let algorithm = CdrwConfig::builder().seed(seed).delta(delta).build();
        let sequential = Cdrw::new(algorithm).detect_all(&graph).unwrap();
        let congest = CongestCdrw::new(CongestConfig::new(algorithm))
            .detect_all(&graph)
            .unwrap();
        assert_eq!(sequential.partition(), congest.result.partition());
        assert_eq!(sequential.seeds(), congest.result.seeds());
    }
}

#[test]
fn congest_costs_track_the_detection_structure() {
    let (graph, truth, delta) = instance(512, 4);
    let algorithm = CdrwConfig::builder().seed(4).delta(delta).build();
    let report = CongestCdrw::new(CongestConfig::new(algorithm))
        .detect_all(&graph)
        .unwrap();
    // Detection stays correct.
    assert!(f_score(report.result.partition(), &truth).f_score > 0.85);
    // Costs decompose per community and are internally consistent.
    let sum_rounds: u64 = report.per_community.iter().map(|c| c.cost.rounds).sum();
    let sum_messages: u64 = report.per_community.iter().map(|c| c.cost.messages).sum();
    assert_eq!(sum_rounds, report.total.rounds);
    assert_eq!(sum_messages, report.total.messages);
    for community in &report.per_community {
        assert!(community.cost.rounds > 0);
        assert!(community.walk_steps > 0);
        // Every size check costs at least one aggregation round.
        assert!(community.cost.rounds >= community.size_checks as u64);
    }
}

#[test]
fn kmachine_conversion_uses_the_congest_measurements() {
    let (graph, _, delta) = instance(256, 7);
    let algorithm = CdrwConfig::builder().seed(7).delta(delta).build();
    let congest_config = CongestConfig::new(algorithm);
    let congest = CongestCdrw::new(congest_config).detect_all(&graph).unwrap();

    let k = 8usize;
    let report = KMachineSimulator::new(
        KMachineConfig::new(k)
            .with_congest(congest_config)
            .with_partition_seed(1),
    )
    .unwrap()
    .run(&graph)
    .unwrap();

    // The conversion bound must equal M/k² + ∆T/k computed from the CONGEST
    // measurements embedded in the report.
    let expected = report.congest.total.messages as f64 / (k * k) as f64
        + graph.max_degree() as f64 * report.congest.total.rounds as f64 / k as f64;
    assert!((report.conversion_rounds - expected).abs() < 1e-6);
    // And the embedded CONGEST run is the same execution.
    assert_eq!(report.congest.total, congest.total);
    // Refinement can only help.
    assert!(report.refined_rounds() <= report.conversion_rounds + 1e-9);
}

#[test]
fn kmachine_round_complexity_decreases_monotonically_in_k() {
    let (graph, _, delta) = instance(256, 9);
    let congest_config = CongestConfig::new(CdrwConfig::builder().seed(9).delta(delta).build());
    let mut previous = f64::INFINITY;
    for k in [2usize, 4, 8, 16, 32, 64] {
        let report = KMachineSimulator::new(KMachineConfig::new(k).with_congest(congest_config))
            .unwrap()
            .run(&graph)
            .unwrap();
        assert!(
            report.conversion_rounds < previous,
            "rounds did not decrease at k = {k}"
        );
        previous = report.conversion_rounds;
    }
}

#[test]
fn partition_balance_matches_the_rvp_claims() {
    let (graph, _, delta) = instance(512, 11);
    let congest_config = CongestConfig::new(CdrwConfig::builder().seed(11).delta(delta).build());
    let k = 16usize;
    let report = KMachineSimulator::new(
        KMachineConfig::new(k)
            .with_congest(congest_config)
            .with_partition_seed(3),
    )
    .unwrap()
    .run(&graph)
    .unwrap();
    let n = graph.num_vertices();
    let stats = report.partition;
    // Õ(n/k) vertices per machine: allow a generous constant.
    assert!(stats.max_vertices < 3 * n / k);
    assert!(stats.min_vertices > n / (3 * k));
    // Õ(m/k + ∆) stored edge endpoints per machine.
    let bound = 4 * (2 * graph.num_edges() / k + graph.max_degree());
    assert!(stats.max_stored_edges < bound);
}
