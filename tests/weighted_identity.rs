//! The weight lane's safety rail: an all-weights-1.0 graph must be
//! *bit-identical* to its unweighted twin across every driver — same walk
//! traces, same detections, same CONGEST and k-machine cost ledgers.
//!
//! On an unweighted CSR every weighted accessor degenerates to the old
//! expression exactly (`weighted_degree(v) == degree(v) as f64` is exact for
//! integer-valued f64 below 2⁵³), and with all weights 1.0 the weighted
//! kernels perform the same floating-point operations in the same order as
//! the weightless branch. These property tests pin that equivalence over
//! arbitrary graphs and every ensemble/assembly combination, so any future
//! change that lets the lane leak into unweighted arithmetic fails here
//! first.

use cdrw_repro::core::AssemblyPolicy;
use cdrw_repro::prelude::*;
use cdrw_repro::walk::WalkEngine;
use proptest::prelude::*;

/// Rebuilds `graph` with the weight lane engaged and every weight 1.0.
fn with_unit_weights(graph: &Graph) -> Graph {
    let mut builder = GraphBuilder::new(graph.num_vertices());
    for (u, v) in graph.edges() {
        builder.add_weighted_edge(u, v, 1.0).unwrap();
    }
    let unit = builder.build();
    assert!(unit.is_weighted() || graph.num_edges() == 0);
    unit
}

/// Builds a simple graph on `n` vertices from an arbitrary edge soup
/// (self-loops dropped, duplicates deduplicated by the builder).
fn soup_graph(n: usize, edges: &[(usize, usize)]) -> Option<Graph> {
    let clean: Vec<_> = edges.iter().copied().filter(|(u, v)| u != v).collect();
    if clean.is_empty() {
        return None;
    }
    Some(GraphBuilder::from_edges(n, clean).unwrap())
}

/// The ensemble × assembly combinations every identity check runs under.
fn policy_combos() -> Vec<(EnsemblePolicy, AssemblyPolicy)> {
    vec![
        (EnsemblePolicy::Single, AssemblyPolicy::Raw),
        (
            EnsemblePolicy::Ensemble {
                walks: 3,
                quorum: 2,
            },
            AssemblyPolicy::Raw,
        ),
        (
            EnsemblePolicy::Ensemble {
                walks: 3,
                quorum: 2,
            },
            AssemblyPolicy::Pooled {
                reseed: 2,
                quorum: 1,
            },
        ),
    ]
}

/// Asserts two detection results are the same execution: identical seeds,
/// identical member lists, identical assembled partition.
fn assert_same_result(plain: &DetectionResult, unit: &DetectionResult) {
    assert_eq!(plain.seeds(), unit.seeds());
    assert_eq!(plain.partition(), unit.partition());
    assert_eq!(plain.detections().len(), unit.detections().len());
    for (a, b) in plain.detections().iter().zip(unit.detections()) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.members, b.members);
    }
}

proptest! {
    /// Walk traces and workspace invariants: stepping the engine on the
    /// unit-weighted twin produces bit-identical probability planes and the
    /// same support list (the BitMask-backed membership plane) every step.
    #[test]
    fn walk_traces_are_bit_identical_under_unit_weights(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 1..50),
        source in 0usize..12,
        laziness in 0.0f64..1.0,
    ) {
        let Some(plain) = soup_graph(12, &edges) else { return Ok(()) };
        let unit = with_unit_weights(&plain);
        let plain_engine = WalkEngine::lazy(&plain, laziness);
        let unit_engine = WalkEngine::lazy(&unit, laziness);
        let mut plain_ws = plain_engine.workspace();
        let mut unit_ws = unit_engine.workspace();
        plain_ws.load_point_mass(source).unwrap();
        unit_ws.load_point_mass(source).unwrap();
        for step in 0..10 {
            plain_engine.step(&mut plain_ws);
            unit_engine.step(&mut unit_ws);
            prop_assert_eq!(plain_ws.support(), unit_ws.support(), "support diverged at step {}", step);
            let plain_bits: Vec<u64> = plain_ws.as_slice().iter().map(|p| p.to_bits()).collect();
            let unit_bits: Vec<u64> = unit_ws.as_slice().iter().map(|p| p.to_bits()).collect();
            prop_assert_eq!(plain_bits, unit_bits, "mass plane diverged at step {}", step);
        }
    }

    /// Sequential driver: identical detections and partitions under every
    /// ensemble/assembly combination.
    #[test]
    fn sequential_detections_are_identical_under_unit_weights(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 1..50),
        seed in 0u64..1000,
    ) {
        let Some(plain) = soup_graph(12, &edges) else { return Ok(()) };
        let unit = with_unit_weights(&plain);
        for (ensemble, assembly) in policy_combos() {
            let config = CdrwConfig::builder()
                .seed(seed)
                .delta(0.4)
                .ensemble_policy(ensemble)
                .assembly_policy(assembly)
                .build();
            let plain_run = Cdrw::new(config).detect_all(&plain);
            let unit_run = Cdrw::new(config).detect_all(&unit);
            match (plain_run, unit_run) {
                (Ok(a), Ok(b)) => assert_same_result(&a, &b),
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(false, "drivers disagreed: {:?} vs {:?}", a.is_ok(), b.is_ok()),
            }
        }
    }

    /// Parallel driver: the work-stealing runs agree with each other on the
    /// two graphs (same seeds, same workers).
    #[test]
    fn parallel_detections_are_identical_under_unit_weights(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 1..50),
        seed in 0u64..1000,
    ) {
        let Some(plain) = soup_graph(12, &edges) else { return Ok(()) };
        let unit = with_unit_weights(&plain);
        let config = CdrwConfig::builder().seed(seed).delta(0.4).build();
        let plain_run = Cdrw::new(config).detect_parallel_with_workers(&plain, 6, 3);
        let unit_run = Cdrw::new(config).detect_parallel_with_workers(&unit, 6, 3);
        match (plain_run, unit_run) {
            (Ok(a), Ok(b)) => assert_same_result(&a, &b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "drivers disagreed: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// CONGEST driver: same detections and the same cost ledger (rounds and
    /// message counts are structural, so the weight lane must not move them).
    #[test]
    fn congest_costs_are_identical_under_unit_weights(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 1..50),
        seed in 0u64..1000,
    ) {
        let Some(plain) = soup_graph(12, &edges) else { return Ok(()) };
        let unit = with_unit_weights(&plain);
        let algorithm = CdrwConfig::builder().seed(seed).delta(0.4).build();
        let plain_run = CongestCdrw::new(CongestConfig::new(algorithm)).detect_all(&plain);
        let unit_run = CongestCdrw::new(CongestConfig::new(algorithm)).detect_all(&unit);
        match (plain_run, unit_run) {
            (Ok(a), Ok(b)) => {
                assert_same_result(&a.result, &b.result);
                prop_assert_eq!(a.total, b.total, "CONGEST cost ledgers diverged");
                prop_assert_eq!(a.per_community.len(), b.per_community.len());
                for (ca, cb) in a.per_community.iter().zip(&b.per_community) {
                    prop_assert_eq!(ca.cost, cb.cost);
                    prop_assert_eq!(ca.walk_steps, cb.walk_steps);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "drivers disagreed: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// k-machine driver: the simulator's conversion (built on the CONGEST
    /// measurements) and its partition statistics are identical too.
    #[test]
    fn kmachine_reports_are_identical_under_unit_weights(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 1..50),
        seed in 0u64..1000,
        k in 2usize..6,
    ) {
        let Some(plain) = soup_graph(12, &edges) else { return Ok(()) };
        let unit = with_unit_weights(&plain);
        let congest = CongestConfig::new(CdrwConfig::builder().seed(seed).delta(0.4).build());
        let run = |graph: &Graph| {
            KMachineSimulator::new(KMachineConfig::new(k).with_congest(congest).with_partition_seed(seed))
                .unwrap()
                .run(graph)
        };
        match (run(&plain), run(&unit)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.congest.total, b.congest.total, "k-machine message ledgers diverged");
                prop_assert_eq!(a.conversion_rounds.to_bits(), b.conversion_rounds.to_bits());
                prop_assert_eq!(a.partition.max_vertices, b.partition.max_vertices);
                prop_assert_eq!(a.partition.max_stored_edges, b.partition.max_stored_edges);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "drivers disagreed: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}
