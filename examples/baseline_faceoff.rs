//! Baseline face-off: CDRW against label propagation, averaging dynamics,
//! spectral clustering and Walktrap on the same sparse PPM instance — the
//! regimes discussed in Section II of the paper.
//!
//! ```text
//! cargo run --release --example baseline_faceoff
//! ```

use cdrw_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let r = 4;
    // Sparse intra-community regime (near the connectivity threshold) where
    // the paper argues CDRW keeps working while LPA needs denser graphs.
    let p = 2.0 * (n as f64).ln().powi(2) / n as f64;
    let q = p / 80.0;
    let params = PpmParams::new(n, r, p, q)?;
    let (graph, truth) = generate_ppm(&params, 2024)?;

    println!(
        "instance: n = {n}, r = {r}, p = {p:.4}, q = {q:.6}, p/q = {:.0}, m = {}",
        p / q,
        graph.num_edges()
    );
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>8}",
        "method", "#comms", "F-score", "NMI", "ARI"
    );

    let score = |name: &str, partition: &Partition| {
        let f = f_score(partition, &truth);
        println!(
            "{:<22} {:>10} {:>8.3} {:>8.3} {:>8.3}",
            name,
            partition.num_communities(),
            f.f_score,
            nmi(partition, &truth),
            adjusted_rand_index(partition, &truth),
        );
    };

    let cdrw = Cdrw::new(
        CdrwConfig::builder()
            .seed(1)
            .delta(params.expected_block_conductance())
            .build(),
    )
    .detect_all(&graph)?;
    score("CDRW (this paper)", cdrw.partition());

    let lpa = label_propagation(&graph, &LpaConfig::default())?;
    score("label propagation", &lpa.partition);

    let avg = averaging_dynamics(&graph, &AveragingConfig::default())?;
    score("averaging dynamics", &avg.partition);

    let spectral = spectral_partition(
        &graph,
        &SpectralConfig {
            num_communities: r,
            ..SpectralConfig::default()
        },
    )?;
    score("spectral (knows r)", &spectral);

    let wt = walktrap(
        &graph,
        &WalktrapConfig {
            walk_length: 4,
            num_communities: r,
        },
    )?;
    score("walktrap (knows r)", &wt);

    println!(
        "\nnote: the averaging dynamics can only produce two communities by construction,\n\
         and LPA's guarantees require denser blocks — CDRW needs neither r nor density."
    );
    Ok(())
}
