//! Distributed complexity walkthrough: CONGEST rounds/messages and k-machine
//! scaling for one PPM instance.
//!
//! Reproduces, on a single graph, the quantities behind Theorems 5–6 and the
//! Section III-B k-machine analysis: per-community round and message counts
//! in the CONGEST model, and the conversion-theorem round complexity for a
//! range of machine counts.
//!
//! ```text
//! cargo run --release --example distributed_costs
//! ```

use cdrw_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let r = 2;
    let p = 12.0 * (n as f64).ln() / n as f64;
    let q = p / 40.0;
    let params = PpmParams::new(n, r, p, q)?;
    let (graph, truth) = generate_ppm(&params, 99)?;
    let delta = params.expected_block_conductance();

    // CONGEST execution with cost accounting.
    let algorithm = CdrwConfig::builder().seed(3).delta(delta).build();
    let congest = CongestCdrw::new(CongestConfig::new(algorithm));
    let report = congest.detect_all(&graph)?;

    println!("CONGEST execution on G(n={n}, r={r}):");
    println!(
        "  detected {} communities, F-score vs ground truth = {:.3}",
        report.per_community.len(),
        f_score(report.result.partition(), &truth).f_score
    );
    for cost in &report.per_community {
        println!(
            "  seed {:>4}: |C| = {:>4}, walk steps = {:>3}, size checks = {:>5}, rounds = {:>9}, messages = {:>12}",
            cost.seed, cost.community_size, cost.walk_steps, cost.size_checks,
            cost.cost.rounds, cost.cost.messages
        );
    }
    let ln_n = (n as f64).ln();
    println!(
        "  total: {} rounds ({}x log^4 n), {} messages ({:.2}x m)",
        report.total.rounds,
        (report.total.rounds as f64 / ln_n.powi(4)).round(),
        report.total.messages,
        report.total.messages as f64 / graph.num_edges() as f64
    );

    // k-machine scaling via the Conversion Theorem.
    println!("\nk-machine round complexity (same CONGEST execution, converted):");
    println!(
        "{:>4} {:>16} {:>16} {:>22}",
        "k", "conversion rounds", "refined rounds", "paper closed form"
    );
    for k in [2usize, 4, 8, 16, 32] {
        let config = KMachineConfig::new(k)
            .with_congest(CongestConfig::new(algorithm))
            .with_partition_seed(1);
        let km = KMachineSimulator::new(config)?.run(&graph)?;
        println!(
            "{:>4} {:>16.0} {:>16.0} {:>22.1}",
            k,
            km.conversion_rounds,
            km.refined_rounds(),
            cdrw_repro::kmachine::paper_round_bound(n, r, p, q, k)
        );
    }
    Ok(())
}
