//! Figure 1 showcase: the n = 1000, r = 5 planted partition graph.
//!
//! Regenerates the graph drawn in Figure 1 of the paper (p = 1/20,
//! q = 1/1000), prints per-block statistics, runs CDRW on it, and writes two
//! Graphviz DOT files — the uncoloured view (Figure 1a) and the
//! ground-truth-coloured view (Figure 1b) — to the current directory.
//!
//! ```text
//! cargo run --release --example ppm_showcase
//! dot -Tpng figure1b_communities.dot -o figure1b.png   # optional rendering
//! ```

use std::fs;

use cdrw_repro::graph::{dot, properties};
use cdrw_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = PpmParams::new(1000, 5, 1.0 / 20.0, 1.0 / 1000.0)?;
    let (graph, truth) = generate_ppm(&params, 20190416)?;

    println!(
        "Figure 1 graph: n = {}, m = {}, expected degree = {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        params.expected_degree()
    );
    println!(
        "{:<8} {:>6} {:>12} {:>14} {:>12}",
        "block", "size", "intra edges", "intra density", "conductance"
    );
    for (block, members) in truth.communities() {
        println!(
            "{:<8} {:>6} {:>12} {:>14.4} {:>12.4}",
            block,
            members.len(),
            properties::internal_edges(&graph, members),
            properties::internal_density(&graph, members),
            properties::set_conductance(&graph, members),
        );
    }

    let config = CdrwConfig::builder()
        .seed(5)
        .delta(params.expected_block_conductance())
        .build();
    let result = Cdrw::new(config).detect_all(&graph)?;
    let report = f_score(result.partition(), &truth);
    println!(
        "\nCDRW on this instance: {} communities detected, F-score = {:.3}",
        result.num_communities(),
        report.f_score
    );

    fs::write("figure1a_plain.dot", dot::to_dot(&graph))?;
    fs::write(
        "figure1b_communities.dot",
        dot::to_dot_with_partition(&graph, &truth),
    )?;
    fs::write(
        "figure1c_detected.dot",
        dot::to_dot_with_partition(&graph, result.partition()),
    )?;
    println!("wrote figure1a_plain.dot, figure1b_communities.dot, figure1c_detected.dot");
    Ok(())
}
