//! Domain scenario: detecting research groups in a synthetic collaboration
//! network with *unequal* community sizes.
//!
//! The paper's model assumes equal-size blocks; real collaboration networks
//! do not. This example builds a general SBM with three groups of very
//! different sizes and density, runs CDRW with the sweep-estimated δ (no
//! ground truth knowledge), and reports how well the seed-based detection
//! copes outside the symmetric setting.
//!
//! ```text
//! cargo run --release --example collaboration_network
//! ```

use cdrw_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three "research groups": a large established lab, a mid-size group and
    // a small tightly-knit team. Cross-group collaboration is rare.
    let block_sizes = vec![600, 250, 80];
    let block_matrix = vec![
        vec![0.030, 0.0015, 0.0010],
        vec![0.0015, 0.080, 0.0020],
        vec![0.0010, 0.0020, 0.250],
    ];
    let params = SbmParams::new(block_sizes.clone(), block_matrix)?;
    let (graph, truth) = generate_sbm(&params, 7)?;

    println!(
        "collaboration network: {} researchers, {} co-authorship edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    for (group, members) in truth.communities() {
        println!("  group {group}: {} members", members.len());
    }

    // No ground truth is assumed: δ comes from the BFS sweep estimate.
    let config = CdrwConfig::builder()
        .seed(11)
        .delta_policy(DeltaPolicy::SweepEstimate)
        .min_community_size(20)
        .build();
    let result = Cdrw::new(config).detect_all(&graph)?;

    println!(
        "\nCDRW detected {} groups (δ estimated as {:.3}):",
        result.num_communities(),
        result.delta()
    );
    for detection in result.detections() {
        let truth_group = truth.community_of(detection.seed).unwrap();
        println!(
            "  seed {:>4} (true group {truth_group}): detected {:>4} members",
            detection.seed,
            detection.members.len()
        );
    }

    let report = f_score(result.partition(), &truth);
    println!(
        "\nF-score = {:.3}, NMI = {:.3}, ARI = {:.3}",
        report.f_score,
        nmi(result.partition(), &truth),
        adjusted_rand_index(result.partition(), &truth)
    );
    println!(
        "(unequal blocks are outside the paper's symmetric-PPM guarantee; the detection\n\
         remains useful but the smallest, densest group is the easiest to recover)"
    );
    Ok(())
}
