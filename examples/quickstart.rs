//! Quickstart: generate a planted partition graph, run CDRW, score the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cdrw_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planted partition graph with 4 communities of 256 vertices each.
    // p is the intra-community edge probability, q the inter-community one.
    let n = 1024;
    let r = 4;
    let p = 2.0 * (n as f64).ln().powi(2) / n as f64;
    let q = p / 60.0;
    let params = PpmParams::new(n, r, p, q)?;
    let (graph, ground_truth) = generate_ppm(&params, 42)?;

    println!(
        "generated G(n={n}, r={r}, p={p:.4}, q={q:.5}): {} edges, expected degree {:.1}",
        graph.num_edges(),
        params.expected_degree()
    );

    // Run CDRW. The stopping threshold δ is the planted block conductance,
    // exactly as in the paper's experiments; use DeltaPolicy::SweepEstimate
    // when no ground truth is available.
    let config = CdrwConfig::builder()
        .seed(7)
        .delta(params.expected_block_conductance())
        .build();
    let result = Cdrw::new(config).detect_all(&graph)?;

    println!(
        "CDRW detected {} communities in {} total walk steps",
        result.num_communities(),
        result.total_walk_steps()
    );
    for detection in result.detections() {
        println!(
            "  seed {:>4} -> community of {:>4} vertices ({} walk steps, stopped by growth rule: {})",
            detection.seed,
            detection.members.len(),
            detection.trace.walk_length(),
            detection.trace.stopped_by_growth_rule
        );
    }

    // Score against the planted ground truth with the paper's F-score.
    let report = f_score(result.partition(), &ground_truth);
    println!(
        "precision = {:.3}, recall = {:.3}, F-score = {:.3}",
        report.precision, report.recall, report.f_score
    );
    Ok(())
}
