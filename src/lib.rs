//! # cdrw-repro
//!
//! Umbrella crate for the reproduction of *Efficient Distributed Community
//! Detection in the Stochastic Block Model* (Fathi, Molla, Pandurangan,
//! ICDCS 2019).
//!
//! This crate re-exports the public API of every workspace crate so that the
//! examples and integration tests can use a single import root. Downstream
//! users can either depend on this umbrella crate or on the individual crates
//! (`cdrw-core`, `cdrw-graph`, ...).
//!
//! # Quickstart
//!
//! ```
//! use cdrw_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small planted partition graph with 4 blocks.
//! let ppm = PpmParams::new(512, 4, 0.2, 0.005)?;
//! let (graph, truth) = generate_ppm(&ppm, 42)?;
//!
//! // Run CDRW with default configuration.
//! let config = CdrwConfig::builder().seed(7).build();
//! let result = Cdrw::new(config).detect_all(&graph)?;
//!
//! // Score the detection against the planted ground truth.
//! let score = f_score(result.partition(), &truth);
//! assert!(score.f_score > 0.5);
//! # Ok(())
//! # }
//! ```

pub use cdrw_baselines as baselines;
pub use cdrw_congest as congest;
pub use cdrw_core as core;
pub use cdrw_gen as gen;
pub use cdrw_graph as graph;
pub use cdrw_kmachine as kmachine;
pub use cdrw_metrics as metrics;
pub use cdrw_walk as walk;

/// Convenience prelude bringing the most commonly used items into scope.
pub mod prelude {
    pub use cdrw_baselines::{
        averaging_dynamics, label_propagation, spectral_partition, walktrap, AveragingConfig,
        LpaConfig, SpectralConfig, WalktrapConfig,
    };
    pub use cdrw_congest::{CongestCdrw, CongestConfig, CongestReport};
    pub use cdrw_core::{
        Cdrw, CdrwConfig, CdrwConfigBuilder, DeltaPolicy, DetectionResult, EnsemblePolicy,
    };
    pub use cdrw_gen::{generate_gnp, generate_ppm, generate_sbm, GnpParams, PpmParams, SbmParams};
    pub use cdrw_graph::{Graph, GraphBuilder, Partition, VertexId};
    pub use cdrw_kmachine::{KMachineConfig, KMachineReport, KMachineSimulator};
    pub use cdrw_metrics::{
        adjusted_rand_index, f_score, f_score_for_detections, f_score_for_seeds, nmi, FScoreReport,
    };
    pub use cdrw_walk::{
        LocalMixingConfig, LocalMixingOutcome, WalkDistribution, WalkEngine, WalkEvidence,
        WalkOperator, WalkWorkspace,
    };
}
