//! Volume, cut, conductance and degree statistics.
//!
//! The paper's stopping rule uses the graph conductance `Φ_G` as the growth
//! threshold `δ`, and its analysis is phrased in terms of set volume `µ(S)`,
//! the cut `E(S, V∖S)` and the set conductance
//! `φ(S) = |E(S, V∖S)| / min{µ(S), µ(V∖S)}` (Section I-C). This module
//! implements those quantities plus the estimators used by the experiment
//! harness.

use crate::{Graph, GraphError, VertexId};

/// Volume `µ(S) = Σ_{v∈S} d(v)` of a vertex set.
///
/// Vertices listed more than once are counted once (the set is deduplicated
/// through a membership bitmap), so the result is a true set volume.
pub fn volume(graph: &Graph, set: &[VertexId]) -> usize {
    let mut member = vec![false; graph.num_vertices()];
    let mut total = 0usize;
    for &v in set {
        if v < graph.num_vertices() && !member[v] {
            member[v] = true;
            total += graph.degree(v);
        }
    }
    total
}

/// Number of edges crossing from `set` to the rest of the graph,
/// `|E(S, V∖S)|`.
pub fn cut_size(graph: &Graph, set: &[VertexId]) -> usize {
    let member = membership(graph, set);
    let mut crossing = 0usize;
    for &u in set {
        if u >= graph.num_vertices() || !member[u] {
            continue;
        }
        for v in graph.neighbors(u) {
            if !member[v] {
                crossing += 1;
            }
        }
    }
    crossing
}

/// Number of edges with both endpoints inside `set`.
pub fn internal_edges(graph: &Graph, set: &[VertexId]) -> usize {
    let member = membership(graph, set);
    let mut internal_twice = 0usize;
    for &u in set {
        if u >= graph.num_vertices() {
            continue;
        }
        for v in graph.neighbors(u) {
            if member[v] {
                internal_twice += 1;
            }
        }
    }
    internal_twice / 2
}

/// Conductance of a vertex set,
/// `φ(S) = |E(S, V∖S)| / min{µ(S), µ(V∖S)}`.
///
/// Degenerate cases follow the usual conventions: if either side has zero
/// volume the conductance is defined as 1.0 (the set is either empty,
/// everything, or touches no edges — none of these are a community).
pub fn set_conductance(graph: &Graph, set: &[VertexId]) -> f64 {
    let vol_s = volume(graph, set);
    let vol_rest = graph.total_volume().saturating_sub(vol_s);
    let denominator = vol_s.min(vol_rest);
    if denominator == 0 {
        return 1.0;
    }
    cut_size(graph, set) as f64 / denominator as f64
}

/// Internal edge density of the set: `internal edges / (|S| choose 2)`.
///
/// Used by the experiment harness to report how close each planted block is
/// to its target `p`.
pub fn internal_density(graph: &Graph, set: &[VertexId]) -> f64 {
    let k = dedup_count(graph, set);
    if k < 2 {
        return 0.0;
    }
    let possible = k * (k - 1) / 2;
    internal_edges(graph, set) as f64 / possible as f64
}

/// Newman–Girvan modularity contribution of a single set:
/// `e_in/m − (µ(S)/2m)²`.
pub fn modularity_contribution(graph: &Graph, set: &[VertexId]) -> f64 {
    let m = graph.num_edges();
    if m == 0 {
        return 0.0;
    }
    let e_in = internal_edges(graph, set) as f64;
    let vol = volume(graph, set) as f64;
    e_in / m as f64 - (vol / (2.0 * m as f64)).powi(2)
}

/// Modularity of a full partition (sum of per-community contributions).
pub fn modularity(graph: &Graph, communities: &[Vec<VertexId>]) -> f64 {
    communities
        .iter()
        .map(|c| modularity_contribution(graph, c))
        .sum()
}

/// Estimate of the graph conductance `Φ_G = min_S φ(S)` by sweeping the
/// communities of a candidate partition.
///
/// Computing `Φ_G` exactly is NP-hard; the paper assumes it is "given as
/// input, or computed by a distributed algorithm \[28\]". For the planted
/// partition experiments the natural sweep is over the planted blocks — the
/// minimum of their conductances is exactly the value the paper plugs in for
/// `δ`. This function implements that sweep for an arbitrary candidate family.
///
/// # Errors
///
/// Returns [`GraphError::EmptyVertexSet`] if `candidates` is empty.
pub fn conductance_from_candidates(
    graph: &Graph,
    candidates: &[Vec<VertexId>],
) -> Result<f64, GraphError> {
    if candidates.is_empty() {
        return Err(GraphError::EmptyVertexSet);
    }
    Ok(candidates
        .iter()
        .map(|set| set_conductance(graph, set))
        .fold(f64::INFINITY, f64::min))
}

/// Sweep-cut estimate of the graph conductance using a BFS-ordered sweep.
///
/// Starts a breadth-first search at the minimum-degree vertex and sweeps the
/// prefixes of the visit order, returning the smallest prefix conductance
/// found. Because BFS grows a connected, locally dense prefix, this finds
/// sparse cuts such as the single bridge between two well-connected blocks.
/// It is a cheap heuristic upper bound on `Φ_G` good enough to act as the
/// `δ` threshold when no ground truth is available.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] for a graph without vertices.
pub fn conductance_sweep_estimate(graph: &Graph) -> Result<f64, GraphError> {
    if graph.num_vertices() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if graph.num_edges() == 0 {
        return Ok(1.0);
    }
    let start = graph
        .vertices()
        .min_by_key(|&v| graph.degree(v))
        .expect("graph has at least one vertex");
    let order = bfs_visit_order(graph, start);
    let mut member = vec![false; graph.num_vertices()];
    let mut vol_s = 0usize;
    let mut cut = 0usize;
    let total = graph.total_volume();
    let mut best = 1.0f64;
    // Sweep all proper non-empty prefixes.
    for (i, &v) in order.iter().enumerate() {
        member[v] = true;
        vol_s += graph.degree(v);
        for w in graph.neighbors(v) {
            if member[w] {
                // This edge used to cross the cut; it no longer does.
                cut -= 1;
            } else {
                cut += 1;
            }
        }
        if i + 1 == order.len() {
            break;
        }
        let denom = vol_s.min(total - vol_s);
        if denom > 0 {
            best = best.min(cut as f64 / denom as f64);
        }
    }
    Ok(best)
}

/// Summary statistics of the weighted degree sequence `w(v)`, reported
/// alongside the structural [`DegreeStats`] when the graph carries a weight
/// lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedDegreeStats {
    /// Minimum weighted degree.
    pub min: f64,
    /// Maximum weighted degree.
    pub max: f64,
    /// Mean weighted degree `w(V)/n`.
    pub mean: f64,
    /// Population standard deviation of the weighted degree sequence.
    pub std_dev: f64,
}

/// Summary statistics of the degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Population standard deviation of the degree sequence.
    pub std_dev: f64,
    /// Weighted-degree statistics — `Some` iff the graph has a weight lane.
    pub weighted: Option<WeightedDegreeStats>,
}

/// Computes [`DegreeStats`] for the graph. On a weighted graph the
/// `weighted` field additionally summarises the weighted degree sequence.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] for a graph without vertices.
pub fn degree_stats(graph: &Graph) -> Result<DegreeStats, GraphError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let variance = degrees
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    let weighted = graph.is_weighted().then(|| {
        let wd: Vec<f64> = graph.vertices().map(|v| graph.weighted_degree(v)).collect();
        let w_mean = graph.weighted_volume() / n as f64;
        let w_variance = wd.iter().map(|&d| (d - w_mean).powi(2)).sum::<f64>() / n as f64;
        WeightedDegreeStats {
            min: wd.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
            max: wd.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
            mean: w_mean,
            std_dev: w_variance.sqrt(),
        }
    });
    Ok(DegreeStats {
        min: *degrees.iter().min().expect("n > 0"),
        max: *degrees.iter().max().expect("n > 0"),
        mean,
        std_dev: variance.sqrt(),
        weighted,
    })
}

/// BFS visit order starting at `start`, followed by any vertices in other
/// components in increasing id order (so the sweep covers the whole graph).
fn bfs_visit_order(graph: &Graph, start: VertexId) -> Vec<VertexId> {
    let mut visited = vec![false; graph.num_vertices()];
    let mut order = Vec::with_capacity(graph.num_vertices());
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in graph.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    for v in graph.vertices() {
        if !visited[v] {
            order.push(v);
        }
    }
    order
}

fn membership(graph: &Graph, set: &[VertexId]) -> Vec<bool> {
    let mut member = vec![false; graph.num_vertices()];
    for &v in set {
        if v < graph.num_vertices() {
            member[v] = true;
        }
    }
    member
}

fn dedup_count(graph: &Graph, set: &[VertexId]) -> usize {
    membership(graph, set).iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    /// Two triangles joined by a single bridge edge: {0,1,2} and {3,4,5}.
    fn barbell() -> Graph {
        GraphBuilder::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .unwrap()
    }

    fn complete_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn volume_counts_degrees_once() {
        let g = barbell();
        assert_eq!(volume(&g, &[0, 1, 2]), 2 + 2 + 3);
        assert_eq!(volume(&g, &[0, 0, 0]), 2);
        assert_eq!(volume(&g, &[]), 0);
        assert_eq!(
            volume(&g, &g.vertices().collect::<Vec<_>>()),
            g.total_volume()
        );
    }

    #[test]
    fn cut_and_internal_edges_on_barbell() {
        let g = barbell();
        assert_eq!(cut_size(&g, &[0, 1, 2]), 1);
        assert_eq!(internal_edges(&g, &[0, 1, 2]), 3);
        assert_eq!(cut_size(&g, &[0, 1]), 2);
        assert_eq!(internal_edges(&g, &[0, 1]), 1);
        assert_eq!(cut_size(&g, &g.vertices().collect::<Vec<_>>()), 0);
    }

    #[test]
    fn conductance_of_one_triangle() {
        let g = barbell();
        // cut = 1, vol({0,1,2}) = 7, vol(rest) = 7 → φ = 1/7.
        let phi = set_conductance(&g, &[0, 1, 2]);
        assert!((phi - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_degenerate_cases() {
        let g = barbell();
        assert_eq!(set_conductance(&g, &[]), 1.0);
        let everything: Vec<_> = g.vertices().collect();
        assert_eq!(set_conductance(&g, &everything), 1.0);
        let isolated = Graph::empty(4);
        assert_eq!(set_conductance(&isolated, &[0, 1]), 1.0);
    }

    #[test]
    fn internal_density_of_complete_graph_is_one() {
        let g = complete_graph(6);
        let all: Vec<_> = g.vertices().collect();
        assert!((internal_density(&g, &all) - 1.0).abs() < 1e-12);
        assert_eq!(internal_density(&g, &[0]), 0.0);
    }

    #[test]
    fn modularity_of_planted_split_is_positive() {
        let g = barbell();
        let split = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let merged = vec![g.vertices().collect::<Vec<_>>()];
        assert!(modularity(&g, &split) > modularity(&g, &merged));
    }

    #[test]
    fn conductance_from_candidates_picks_minimum() {
        let g = barbell();
        let candidates = vec![vec![0, 1, 2], vec![0, 1]];
        let phi = conductance_from_candidates(&g, &candidates).unwrap();
        assert!((phi - 1.0 / 7.0).abs() < 1e-12);
        assert!(conductance_from_candidates(&g, &[]).is_err());
    }

    #[test]
    fn sweep_estimate_finds_the_bridge_in_barbell() {
        let g = barbell();
        let est = conductance_sweep_estimate(&g).unwrap();
        // The true Φ is 1/7; the BFS-ordered sweep reaches exactly that cut
        // after visiting the first triangle.
        assert!((est - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_estimate_edge_cases() {
        assert!(conductance_sweep_estimate(&Graph::empty(0)).is_err());
        assert_eq!(conductance_sweep_estimate(&Graph::empty(5)).unwrap(), 1.0);
    }

    #[test]
    fn degree_stats_on_star() {
        let g = GraphBuilder::from_edges(5, (1..5).map(|i| (0, i))).unwrap();
        let stats = degree_stats(&g).unwrap();
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 4);
        assert!((stats.mean - 8.0 / 5.0).abs() < 1e-12);
        assert!(stats.std_dev > 0.0);
        assert!(stats.weighted.is_none());
        assert!(degree_stats(&Graph::empty(0)).is_err());
    }

    #[test]
    fn degree_stats_report_the_weight_lane() {
        // Path 0-1-2 with weights 2 and 6: w = [2, 8, 6].
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 2, 6.0).unwrap();
        let stats = degree_stats(&b.build()).unwrap();
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 2);
        let w = stats.weighted.expect("weighted graph");
        assert_eq!(w.min, 2.0);
        assert_eq!(w.max, 8.0);
        assert!((w.mean - 16.0 / 3.0).abs() < 1e-12);
        assert!(w.std_dev > 0.0);
    }

    proptest! {
        /// Conductance always lies in [0, 1] and the cut is symmetric:
        /// cut(S) == cut(V \ S).
        #[test]
        fn conductance_in_unit_interval(
            edges in proptest::collection::vec((0usize..14, 0usize..14), 1..80),
            picks in proptest::collection::vec(any::<bool>(), 14),
        ) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let g = GraphBuilder::from_edges(14, clean).unwrap();
            let set: Vec<_> = (0..14).filter(|&v| picks[v]).collect();
            let complement: Vec<_> = (0..14).filter(|&v| !picks[v]).collect();
            let phi = set_conductance(&g, &set);
            prop_assert!((0.0..=1.0).contains(&phi));
            prop_assert_eq!(cut_size(&g, &set), cut_size(&g, &complement));
        }

        /// Volume of a set plus volume of its complement is the total volume,
        /// and internal edges + cut + internal edges of complement = m.
        #[test]
        fn volume_and_edge_partition_identities(
            edges in proptest::collection::vec((0usize..12, 0usize..12), 1..60),
            picks in proptest::collection::vec(any::<bool>(), 12),
        ) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let g = GraphBuilder::from_edges(12, clean).unwrap();
            let set: Vec<_> = (0..12).filter(|&v| picks[v]).collect();
            let complement: Vec<_> = (0..12).filter(|&v| !picks[v]).collect();
            prop_assert_eq!(volume(&g, &set) + volume(&g, &complement), g.total_volume());
            let total_edges = internal_edges(&g, &set) + internal_edges(&g, &complement) + cut_size(&g, &set);
            prop_assert_eq!(total_edges, g.num_edges());
        }

        /// The sweep estimate is a valid conductance value (of *some* cut), so
        /// it is always within [0, 1].
        #[test]
        fn sweep_estimate_is_valid(edges in proptest::collection::vec((0usize..12, 0usize..12), 1..60)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let g = GraphBuilder::from_edges(12, clean).unwrap();
            let est = conductance_sweep_estimate(&g).unwrap();
            prop_assert!((0.0..=1.0).contains(&est));
        }
    }
}
