//! Graphviz DOT export for small showcase graphs.
//!
//! Figure 1 of the paper draws a 1000-vertex planted partition graph with and
//! without its ground-truth colouring. The `ppm_showcase` example regenerates
//! that figure's data by exporting the graph to DOT, with communities mapped
//! to colours.

use std::fmt::Write as _;

use crate::{Graph, Partition};

/// Palette of Graphviz colour names cycled over community ids.
const PALETTE: &[&str] = &[
    "crimson",
    "steelblue",
    "forestgreen",
    "darkorange",
    "purple",
    "goldenrod",
    "deeppink",
    "teal",
    "saddlebrown",
    "slategray",
];

/// Renders the graph in Graphviz DOT format without any community colouring
/// (the "Figure 1a" view).
pub fn to_dot(graph: &Graph) -> String {
    render(graph, None)
}

/// Renders the graph in DOT format with vertices coloured by community
/// (the "Figure 1b" view). Vertices not covered by the partition are drawn in
/// white.
pub fn to_dot_with_partition(graph: &Graph, partition: &Partition) -> String {
    render(graph, Some(partition))
}

fn render(graph: &Graph, partition: Option<&Partition>) -> String {
    let mut out = String::new();
    out.push_str("graph G {\n");
    out.push_str("  node [shape=circle, style=filled, label=\"\"];\n");
    for v in graph.vertices() {
        let color = partition
            .and_then(|p| p.community_of(v))
            .map(|c| PALETTE[c % PALETTE.len()])
            .unwrap_or("white");
        let _ = writeln!(out, "  v{v} [fillcolor={color}];");
    }
    for (u, v) in graph.edges() {
        if graph.is_weighted() {
            let w = graph.edge_weight(u, v).expect("edge listed by edges()");
            let _ = writeln!(out, "  v{u} -- v{v} [label=\"{w}\"];");
        } else {
            let _ = writeln!(out, "  v{u} -- v{v};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        GraphBuilder::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g = triangle();
        let dot = to_dot(&g);
        assert!(dot.starts_with("graph G {"));
        assert!(dot.trim_end().ends_with('}'));
        for v in 0..3 {
            assert!(dot.contains(&format!("v{v} [")));
        }
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn weighted_edges_are_labelled() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.5).unwrap();
        b.add_weighted_edge(1, 2, 1.0).unwrap();
        let dot = to_dot(&b.build());
        assert!(dot.contains("v0 -- v1 [label=\"2.5\"];"));
        assert!(dot.contains("v1 -- v2 [label=\"1\"];"));
        // Unweighted graphs keep the bare edge syntax.
        let plain = to_dot(&triangle());
        assert!(!plain.contains(" [label=\""));
    }

    #[test]
    fn dot_with_partition_uses_distinct_colours() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let p = Partition::from_assignment(vec![0, 0, 1, 1]).unwrap();
        let dot = to_dot_with_partition(&g, &p);
        assert!(dot.contains(PALETTE[0]));
        assert!(dot.contains(PALETTE[1]));
    }

    #[test]
    fn palette_wraps_for_many_communities() {
        let n = PALETTE.len() + 3;
        let g = Graph::empty(n);
        let p = Partition::from_assignment((0..n).collect()).unwrap();
        let dot = to_dot_with_partition(&g, &p);
        // Community PALETTE.len() wraps to colour 0.
        assert!(dot.matches(PALETTE[0]).count() >= 2);
    }

    #[test]
    fn uncovered_vertices_are_white() {
        let g = Graph::empty(3);
        let p = Partition::from_assignment(vec![0, 0]).unwrap();
        let dot = to_dot_with_partition(&g, &p);
        assert!(dot.contains("white"));
    }
}
