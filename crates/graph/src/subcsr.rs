//! Shard-local sub-CSR extraction for distributed execution.
//!
//! A k-machine shard homes a subset of the vertices and stores the incident
//! edges of exactly those vertices (the storage rule of the random vertex
//! partition). [`SubCsr`] materialises that shard-local view as its own
//! compact CSR: row `i` is the full global adjacency list of the `i`-th owned
//! vertex, with neighbour identifiers kept *global* so degrees — and
//! therefore the walk's transition probabilities — are identical to the whole
//! graph's. The rows are copied with one counting pass over the owned
//! degrees followed by straight `extend_from_slice` row copies, the same
//! counting-sort shape as [`crate::GraphBuilder`]'s CSR assembly.
//!
//! The extraction also records, per owned vertex, whether any neighbour is
//! homed remotely (a *boundary* vertex, whose walk mass must travel over the
//! network each step) — the boundary map drives the shard engine's
//! message-exchange fast paths and its fault-shape tests.

use crate::csr::Graph;
use crate::VertexId;

/// A shard's slice of a [`Graph`]: the rows of its owned vertices, neighbour
/// identifiers global, plus the owned→global map and the boundary map.
#[derive(Debug, Clone, PartialEq)]
pub struct SubCsr {
    /// Owned vertices in ascending global order.
    owned: Vec<VertexId>,
    /// Row offsets into `neighbors`; length `owned.len() + 1`.
    offsets: Vec<usize>,
    /// Concatenated adjacency rows, global vertex identifiers.
    neighbors: Vec<VertexId>,
    /// Optional per-edge-slot weights, parallel to `neighbors`; copied from
    /// the originating graph's weight lane when it has one.
    weights: Option<Vec<f64>>,
    /// Weighted degree per owned vertex, copied from the originating graph
    /// (bit-identical to its row-order sums); present iff `weights` is.
    weighted_degrees: Option<Vec<f64>>,
    /// `boundary[i]` ⟺ owned vertex `i` has at least one remote neighbour.
    boundary: Vec<bool>,
    /// Number of stored edge endpoints whose far end is remote.
    remote_endpoints: usize,
    /// Vertex count of the originating graph (global id range).
    num_global_vertices: usize,
}

impl SubCsr {
    /// Extracts the sub-CSR of `owned` (must be sorted ascending and
    /// duplicate-free) from `graph`. `is_owned` tells whether a *global*
    /// vertex is homed on this shard; it must agree with `owned`.
    ///
    /// # Panics
    ///
    /// Panics if `owned` is unsorted/duplicated or contains an out-of-range
    /// vertex.
    pub fn extract<F>(graph: &Graph, owned: &[VertexId], is_owned: F) -> Self
    where
        F: Fn(VertexId) -> bool,
    {
        assert!(
            owned.windows(2).all(|w| w[0] < w[1]),
            "owned vertices must be sorted and duplicate-free"
        );
        if let Some(&last) = owned.last() {
            assert!(
                last < graph.num_vertices(),
                "owned vertex {last} out of range (n = {})",
                graph.num_vertices()
            );
        }
        // Counting pass: size the row arena from the owned degrees.
        let mut offsets = Vec::with_capacity(owned.len() + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for &v in owned {
            total += graph.degree(v);
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total);
        let mut weights = graph.is_weighted().then(|| Vec::with_capacity(total));
        let mut boundary = Vec::with_capacity(owned.len());
        let mut remote_endpoints = 0usize;
        for &v in owned {
            let row = graph.neighbor_slice(v);
            neighbors.extend_from_slice(row);
            if let Some(lane) = &mut weights {
                lane.extend_from_slice(graph.weight_slice(v).expect("weighted graph has rows"));
            }
            let remote = row.iter().filter(|&&u| !is_owned(u)).count();
            remote_endpoints += remote;
            boundary.push(remote > 0);
        }
        let weighted_degrees = graph
            .is_weighted()
            .then(|| owned.iter().map(|&v| graph.weighted_degree(v)).collect());
        SubCsr {
            owned: owned.to_vec(),
            offsets,
            neighbors,
            weights,
            weighted_degrees,
            boundary,
            remote_endpoints,
            num_global_vertices: graph.num_vertices(),
        }
    }

    /// The owned vertices, ascending global order.
    pub fn owned(&self) -> &[VertexId] {
        &self.owned
    }

    /// Number of owned vertices.
    pub fn num_owned(&self) -> usize {
        self.owned.len()
    }

    /// Whether this shard owns no vertices (possible when `k > n`).
    pub fn is_empty(&self) -> bool {
        self.owned.is_empty()
    }

    /// Vertex count of the originating graph.
    pub fn num_global_vertices(&self) -> usize {
        self.num_global_vertices
    }

    /// Global identifier of the `i`-th owned vertex.
    pub fn global(&self, i: usize) -> VertexId {
        self.owned[i]
    }

    /// Local index of global vertex `v`, if owned here.
    pub fn local_of(&self, v: VertexId) -> Option<usize> {
        self.owned.binary_search(&v).ok()
    }

    /// Degree of the `i`-th owned vertex — equal to its global degree, since
    /// a shard stores the full row of every owned vertex.
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Global neighbour identifiers of the `i`-th owned vertex, in the same
    /// ascending order as the originating graph's row.
    pub fn neighbor_slice(&self, i: usize) -> &[VertexId] {
        &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Whether the shard carries the originating graph's edge-weight lane.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Weights of the `i`-th owned vertex's edge slots, parallel to
    /// [`Self::neighbor_slice`], or `None` when the graph is unweighted.
    pub fn weight_slice(&self, i: usize) -> Option<&[f64]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.offsets[i]..self.offsets[i + 1]])
    }

    /// Weighted degree `w(v)` of the `i`-th owned vertex — equal (bitwise)
    /// to its global weighted degree, and exactly `degree(i) as f64` on an
    /// unweighted graph.
    pub fn weighted_degree(&self, i: usize) -> f64 {
        match &self.weighted_degrees {
            Some(wd) => wd[i],
            None => self.degree(i) as f64,
        }
    }

    /// Whether the `i`-th owned vertex has at least one remote neighbour.
    pub fn is_boundary(&self, i: usize) -> bool {
        self.boundary[i]
    }

    /// Number of owned boundary vertices.
    pub fn num_boundary(&self) -> usize {
        self.boundary.iter().filter(|&&b| b).count()
    }

    /// Total stored edge endpoints (the sum of owned degrees — the shard's
    /// share of the graph's volume).
    pub fn stored_endpoints(&self) -> usize {
        self.neighbors.len()
    }

    /// Stored edge endpoints whose far end is homed remotely.
    pub fn remote_endpoints(&self) -> usize {
        self.remote_endpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn rows_match_the_global_graph() {
        let g = path(6);
        let owned = [1usize, 3, 4];
        let sub = SubCsr::extract(&g, &owned, |v| owned.contains(&v));
        assert_eq!(sub.num_owned(), 3);
        assert_eq!(sub.num_global_vertices(), 6);
        for (i, &v) in owned.iter().enumerate() {
            assert_eq!(sub.global(i), v);
            assert_eq!(sub.local_of(v), Some(i));
            assert_eq!(sub.degree(i), g.degree(v));
            assert_eq!(sub.neighbor_slice(i), g.neighbor_slice(v));
        }
        assert_eq!(sub.local_of(0), None);
        assert_eq!(
            sub.stored_endpoints(),
            owned.iter().map(|&v| g.degree(v)).sum::<usize>()
        );
    }

    #[test]
    fn boundary_map_marks_remote_neighbours() {
        let g = path(5);
        // Own {3, 4}: vertex 3 borders remote vertex 2; vertex 4's only
        // neighbour (3) is local.
        let owned = [3usize, 4];
        let sub = SubCsr::extract(&g, &owned, |v| owned.contains(&v));
        assert!(sub.is_boundary(0));
        assert!(!sub.is_boundary(1));
        assert_eq!(sub.num_boundary(), 1);
        assert_eq!(sub.remote_endpoints(), 1);
    }

    #[test]
    fn all_neighbours_remote_is_fully_boundary() {
        // A star with the centre owned alone: every stored endpoint is
        // remote.
        let g = GraphBuilder::from_edges(5, (1..5).map(|leaf| (0, leaf))).unwrap();
        let sub = SubCsr::extract(&g, &[0], |v| v == 0);
        assert!(sub.is_boundary(0));
        assert_eq!(sub.remote_endpoints(), 4);
        assert_eq!(sub.stored_endpoints(), 4);
    }

    #[test]
    fn empty_shard_is_well_formed() {
        let g = path(4);
        let sub = SubCsr::extract(&g, &[], |_| false);
        assert!(sub.is_empty());
        assert_eq!(sub.num_owned(), 0);
        assert_eq!(sub.stored_endpoints(), 0);
        assert_eq!(sub.num_boundary(), 0);
    }

    #[test]
    fn shards_cover_the_graph_volume() {
        let g = path(7);
        let assignment = [0usize, 1, 0, 2, 1, 0, 2];
        let total: usize = (0..3)
            .map(|m| {
                let owned: Vec<VertexId> = (0..7).filter(|&v| assignment[v] == m).collect();
                SubCsr::extract(&g, &owned, |v| assignment[v] == m).stored_endpoints()
            })
            .sum();
        assert_eq!(total, g.total_volume());
    }

    #[test]
    fn weighted_rows_travel_with_the_shard() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 2, 3.0).unwrap();
        b.add_weighted_edge(2, 3, 4.0).unwrap();
        let g = b.build();
        let owned = [1usize, 3];
        let sub = SubCsr::extract(&g, &owned, |v| owned.contains(&v));
        assert!(sub.is_weighted());
        assert_eq!(sub.weight_slice(0), Some(&[2.0, 3.0][..]));
        assert_eq!(sub.weight_slice(1), Some(&[4.0][..]));
        for (i, &v) in owned.iter().enumerate() {
            assert_eq!(
                sub.weighted_degree(i).to_bits(),
                g.weighted_degree(v).to_bits()
            );
        }
        let unweighted = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let plain = SubCsr::extract(&unweighted, &owned, |v| owned.contains(&v));
        assert!(!plain.is_weighted());
        assert_eq!(plain.weight_slice(0), None);
        assert_eq!(plain.weighted_degree(0), 2.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_owned_list_panics() {
        let g = path(4);
        let _ = SubCsr::extract(&g, &[2, 1], |_| true);
    }
}
