//! Mutable edge-churn buffer over an immutable committed CSR.
//!
//! The streaming service layer (`cdrw_core::CdrwService`) needs a graph that
//! *changes*: edges arrive and depart while queries keep answering from the
//! last detected partition. The CSR [`Graph`] is deliberately immutable —
//! every walk, sweep and absorption decision binary-searches sorted
//! neighbour rows — so mutation lives here instead: a [`DeltaGraph`] is the
//! committed CSR plus a buffer of pending add/remove operations, folded into
//! a fresh CSR by [`DeltaGraph::commit`] through the same counting-sort
//! [`GraphBuilder`] the generators use (weight lane included).
//!
//! Each commit reports the **dirty vertices** — the endpoints of every edge
//! whose presence or weight actually changed. Dirtiness is the exact
//! invalidation signal for cached detections: the cut, volume and internal
//! topology of a vertex set `S` depend only on edges with at least one
//! endpoint in `S`, so a detection containing no dirty vertex is structurally
//! untouched by the commit and its cached evidence stays valid.
//!
//! # Example
//!
//! ```
//! use cdrw_graph::{DeltaGraph, GraphBuilder};
//!
//! # fn main() -> Result<(), cdrw_graph::GraphError> {
//! let committed = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
//! let mut delta = DeltaGraph::new(committed);
//! delta.remove_edge(1, 2)?;
//! delta.add_edge(0, 3)?;
//! let report = delta.commit()?;
//! assert_eq!(report.dirty, vec![0, 1, 2, 3]);
//! assert!(delta.graph().has_edge(0, 3));
//! assert!(!delta.graph().has_edge(1, 2));
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use crate::{Graph, GraphBuilder, GraphError, VertexId};

/// What one [`DeltaGraph::commit`] changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReport {
    /// Endpoints of every edge whose presence or weight changed, sorted and
    /// deduplicated. Empty when the pending buffer was a no-op (removing
    /// absent edges, re-adding identical weights).
    pub dirty: Vec<VertexId>,
    /// Edges present after the commit that were absent before.
    pub edges_added: usize,
    /// Edges absent after the commit that were present before.
    pub edges_removed: usize,
    /// Edges present on both sides whose weight changed.
    pub edges_reweighted: usize,
}

impl CommitReport {
    /// Whether the commit changed nothing.
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// A committed CSR [`Graph`] plus a buffer of pending edge additions and
/// removals, rebuilt on [`DeltaGraph::commit`].
///
/// The vertex set is fixed at construction (`0..n`, like every [`Graph`]);
/// only edges churn. The pending buffer stores the *absolute* post-commit
/// state per touched pair — `Some(w)` present with weight `w`, `None` absent
/// — so repeated operations on one pair collapse into a single entry and the
/// weight arithmetic of stacked [`DeltaGraph::add_weighted_edge`] calls is
/// folded left-to-right at operation time, exactly the order a from-scratch
/// [`GraphBuilder`] would sum duplicate insertions in. A property test pins
/// the committed CSR bit-identical (offsets, targets, weight lane) to a
/// from-scratch build over the surviving edge set.
///
/// Weightedness is decided by the committed graph: a weighted CSR stays
/// weighted (plain [`DeltaGraph::add_edge`] contributes `1.0`, matching the
/// builder's backfill), an unweighted CSR stays unweighted and rejects
/// [`DeltaGraph::add_weighted_edge`] — engaging the weight lane mid-stream
/// would retroactively change the meaning of buffered plain additions.
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    committed: Graph,
    /// Absolute pending state per normalised `(min, max)` pair: `Some(w)` —
    /// present with weight `w` after the next commit; `None` — absent.
    pending: BTreeMap<(VertexId, VertexId), Option<f64>>,
}

impl DeltaGraph {
    /// Wraps a committed graph with an empty pending buffer.
    pub fn new(committed: Graph) -> Self {
        DeltaGraph {
            committed,
            pending: BTreeMap::new(),
        }
    }

    /// The last committed CSR. Pending operations are invisible here until
    /// [`DeltaGraph::commit`].
    pub fn graph(&self) -> &Graph {
        &self.committed
    }

    /// Number of vertices (fixed at construction).
    pub fn num_vertices(&self) -> usize {
        self.committed.num_vertices()
    }

    /// Whether the committed graph carries the edge-weight lane.
    pub fn is_weighted(&self) -> bool {
        self.committed.is_weighted()
    }

    /// Number of edge pairs with a pending (possibly no-op) operation.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// The weight the pair would have after a commit right now: the pending
    /// state if the pair was touched, the committed weight otherwise.
    fn effective_weight(&self, key: (VertexId, VertexId)) -> Option<f64> {
        match self.pending.get(&key) {
            Some(state) => *state,
            None => self.committed.edge_weight(key.0, key.1),
        }
    }

    fn validate_pair(&self, u: VertexId, v: VertexId) -> Result<(VertexId, VertexId), GraphError> {
        self.committed.check_vertex(u)?;
        self.committed.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        Ok((u.min(v), u.max(v)))
    }

    /// Buffers the addition of the undirected edge `(u, v)`.
    ///
    /// On a weighted graph this contributes weight `1.0` (the builder's
    /// backfill value); re-adding a pair that is already present stacks
    /// another `1.0` onto it, matching duplicate-insertion summing in
    /// [`GraphBuilder::build`]. On an unweighted graph re-adding a present
    /// pair is a no-op, matching builder deduplication.
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let key = self.validate_pair(u, v)?;
        let next = if self.is_weighted() {
            self.effective_weight(key).unwrap_or(0.0) + 1.0
        } else {
            1.0
        };
        self.pending.insert(key, Some(next));
        Ok(())
    }

    /// Buffers the addition of the undirected edge `(u, v)` with weight
    /// `weight`, summing onto the pair's current effective weight — the
    /// delta analogue of duplicate weighted insertions in
    /// [`GraphBuilder::build`].
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::InvalidParameter`] unless `weight` is finite and
    ///   strictly positive, or when the committed graph is unweighted
    ///   (weightedness is fixed at construction — see the type docs).
    pub fn add_weighted_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: f64,
    ) -> Result<(), GraphError> {
        if !self.is_weighted() {
            return Err(GraphError::InvalidParameter {
                name: "weight",
                reason: "committed graph is unweighted; build it through \
                         GraphBuilder::add_weighted_edge to engage the weight lane"
                    .to_string(),
            });
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(GraphError::InvalidParameter {
                name: "weight",
                reason: format!("edge weight must be finite and positive, got {weight}"),
            });
        }
        let key = self.validate_pair(u, v)?;
        let next = self.effective_weight(key).unwrap_or(0.0) + weight;
        self.pending.insert(key, Some(next));
        Ok(())
    }

    /// Buffers the removal of the undirected edge `(u, v)`. Removing an
    /// absent edge is tolerated (the commit reports it clean).
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let key = self.validate_pair(u, v)?;
        self.pending.insert(key, None);
        Ok(())
    }

    /// Discards the pending buffer without touching the committed graph.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Folds the pending buffer into a fresh committed CSR via the
    /// counting-sort [`GraphBuilder`] and reports the dirty vertices.
    ///
    /// With an empty or no-op buffer the committed graph is left untouched
    /// (no rebuild) and the report is clean.
    ///
    /// # Errors
    ///
    /// Never fails in practice — every pending entry was validated at
    /// operation time — but propagates [`GraphBuilder`] errors rather than
    /// panicking.
    pub fn commit(&mut self) -> Result<CommitReport, GraphError> {
        // Classify pending entries against the committed state first; no-op
        // buffers skip the rebuild entirely.
        let mut dirty: Vec<VertexId> = Vec::new();
        let mut edges_added = 0usize;
        let mut edges_removed = 0usize;
        let mut edges_reweighted = 0usize;
        for (&(u, v), &state) in &self.pending {
            let before = self.committed.edge_weight(u, v);
            let changed = match (before, state) {
                (None, None) => false,
                (Some(a), Some(b)) => {
                    if a.to_bits() != b.to_bits() {
                        edges_reweighted += 1;
                        true
                    } else {
                        false
                    }
                }
                (None, Some(_)) => {
                    edges_added += 1;
                    true
                }
                (Some(_), None) => {
                    edges_removed += 1;
                    true
                }
            };
            if changed {
                dirty.push(u);
                dirty.push(v);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        if !dirty.is_empty() {
            let weighted = self.is_weighted();
            let mut builder = GraphBuilder::new(self.num_vertices());
            // Surviving committed edges, with pending overrides applied; the
            // iteration order (ascending pairs) matches a from-scratch build
            // over the model map, so duplicate-free insertion keeps the
            // weight lane bit-identical.
            for (u, v) in self.committed.edges() {
                match self.pending.get(&(u, v)) {
                    Some(None) => continue,
                    Some(Some(w)) => builder.add_weighted_edge(u, v, *w)?,
                    None => match self.committed.edge_weight(u, v) {
                        Some(w) if weighted => builder.add_weighted_edge(u, v, w)?,
                        _ => builder.add_edge(u, v)?,
                    },
                }
            }
            // Pairs that are new outright.
            for (&(u, v), &state) in &self.pending {
                if self.committed.has_edge(u, v) {
                    continue;
                }
                if let Some(w) = state {
                    if weighted {
                        builder.add_weighted_edge(u, v, w)?;
                    } else {
                        builder.add_edge(u, v)?;
                    }
                }
            }
            self.committed = builder.build();
        }
        self.pending.clear();
        Ok(CommitReport {
            dirty,
            edges_added,
            edges_removed,
            edges_reweighted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn add_and_remove_round_trip() {
        let mut delta = DeltaGraph::new(path(5));
        delta.add_edge(0, 4).unwrap();
        delta.remove_edge(1, 2).unwrap();
        assert_eq!(delta.pending_ops(), 2);
        let report = delta.commit().unwrap();
        assert_eq!(report.dirty, vec![0, 1, 2, 4]);
        assert_eq!(report.edges_added, 1);
        assert_eq!(report.edges_removed, 1);
        assert_eq!(delta.pending_ops(), 0);
        assert!(delta.graph().has_edge(0, 4));
        assert!(!delta.graph().has_edge(1, 2));
        assert_eq!(delta.graph().num_edges(), 4);
    }

    #[test]
    fn noop_buffer_reports_clean_and_skips_the_rebuild() {
        let mut delta = DeltaGraph::new(path(4));
        // Removing an absent edge and re-adding a present unweighted edge
        // both leave the graph untouched.
        delta.remove_edge(0, 3).unwrap();
        delta.add_edge(1, 2).unwrap();
        let before = delta.graph().clone();
        let report = delta.commit().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.edges_added + report.edges_removed, 0);
        assert_eq!(delta.graph(), &before);
    }

    #[test]
    fn remove_then_add_restores_presence() {
        let mut delta = DeltaGraph::new(path(4));
        delta.remove_edge(1, 2).unwrap();
        delta.add_edge(1, 2).unwrap();
        let report = delta.commit().unwrap();
        assert!(report.is_clean(), "remove+add of a present edge is a no-op");
        assert!(delta.graph().has_edge(1, 2));
    }

    #[test]
    fn weighted_adds_stack_onto_the_committed_weight() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 2, 1.0).unwrap();
        let mut delta = DeltaGraph::new(b.build());
        delta.add_weighted_edge(0, 1, 0.5).unwrap();
        delta.add_weighted_edge(1, 0, 0.25).unwrap(); // normalised onto the same pair
        delta.add_edge(1, 2).unwrap(); // plain add contributes 1.0
        let report = delta.commit().unwrap();
        assert_eq!(report.edges_reweighted, 2);
        assert_eq!(delta.graph().edge_weight(0, 1), Some(2.75));
        assert_eq!(delta.graph().edge_weight(1, 2), Some(2.0));
    }

    #[test]
    fn weighted_add_after_remove_starts_from_zero() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 5.0).unwrap();
        b.add_weighted_edge(1, 2, 1.0).unwrap();
        let mut delta = DeltaGraph::new(b.build());
        delta.remove_edge(0, 1).unwrap();
        delta.add_weighted_edge(0, 1, 0.5).unwrap();
        delta.commit().unwrap();
        assert_eq!(delta.graph().edge_weight(0, 1), Some(0.5));
    }

    #[test]
    fn unweighted_graph_rejects_weighted_adds() {
        let mut delta = DeltaGraph::new(path(4));
        assert!(matches!(
            delta.add_weighted_edge(0, 2, 2.0),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn operations_validate_endpoints() {
        let mut delta = DeltaGraph::new(path(3));
        assert!(matches!(
            delta.add_edge(0, 3),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            delta.remove_edge(5, 0),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            delta.add_edge(1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        let mut weighted = GraphBuilder::new(2);
        weighted.add_weighted_edge(0, 1, 1.0).unwrap();
        let mut delta = DeltaGraph::new(weighted.build());
        assert!(matches!(
            delta.add_weighted_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            delta.add_weighted_edge(0, 1, -1.0),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn failed_commit_leaves_the_journal_and_the_committed_graph_intact() {
        // Weight validation happens per operation, but stacking is folded at
        // operation time: two f64::MAX adds fold to +inf in the pending
        // buffer, which the commit-time builder rejects. The failure must
        // leave both sides untouched — the committed CSR still serves and
        // the journal still holds every buffered operation, so the caller
        // can discard the poison and commit the rest.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0).unwrap();
        b.add_weighted_edge(1, 2, 2.0).unwrap();
        b.add_weighted_edge(2, 3, 1.0).unwrap();
        let mut delta = DeltaGraph::new(b.build());
        let before = delta.graph().clone();

        delta.remove_edge(1, 2).unwrap();
        delta.add_weighted_edge(0, 1, f64::MAX).unwrap();
        delta.add_weighted_edge(0, 1, f64::MAX).unwrap();
        assert_eq!(delta.pending_ops(), 2);

        let err = delta.commit().unwrap_err();
        assert!(matches!(
            err,
            GraphError::InvalidParameter { name: "weight", .. }
        ));
        // Committed graph untouched, journal intact.
        assert_eq!(delta.graph(), &before);
        assert_eq!(delta.pending_ops(), 2);

        // Every further commit fails the same way until the poison is
        // dropped; afterwards the surviving operations commit normally.
        assert!(delta.commit().is_err());
        assert_eq!(delta.pending_ops(), 2);
        delta.discard_pending();
        delta.remove_edge(1, 2).unwrap();
        let report = delta.commit().unwrap();
        assert_eq!(report.edges_removed, 1);
        assert!(!delta.graph().has_edge(1, 2));
        assert_eq!(delta.graph().edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn discard_pending_drops_buffered_operations() {
        let mut delta = DeltaGraph::new(path(4));
        delta.remove_edge(0, 1).unwrap();
        delta.discard_pending();
        assert_eq!(delta.pending_ops(), 0);
        assert!(delta.commit().unwrap().is_clean());
        assert!(delta.graph().has_edge(0, 1));
    }

    /// One encoded random operation of the interleaving property tests:
    /// `kind` 0 = plain add, 1 = weighted add (downgraded to plain when the
    /// lane is off), anything else = remove. Self-loop draws are skipped.
    type EncodedOp = (usize, (VertexId, VertexId), u32);

    /// Applies one encoded op to the delta and to a model map holding the
    /// surviving edge set with the same left-to-right weight folding the
    /// delta buffer uses. Returns `false` for skipped self-loop draws.
    fn apply_op(
        delta: &mut DeltaGraph,
        model: &mut BTreeMap<(VertexId, VertexId), f64>,
        op: &EncodedOp,
    ) -> bool {
        let (kind, (u, v), w_raw) = *op;
        if u == v {
            return false;
        }
        let key = (u.min(v), u.max(v));
        let weighted = delta.is_weighted();
        match kind {
            0 => {
                delta.add_edge(u, v).unwrap();
                if weighted {
                    let w = model.get(&key).copied().unwrap_or(0.0) + 1.0;
                    model.insert(key, w);
                } else {
                    model.insert(key, 1.0);
                }
            }
            1 if weighted => {
                let w = w_raw as f64 * 0.25;
                delta.add_weighted_edge(u, v, w).unwrap();
                let next = model.get(&key).copied().unwrap_or(0.0) + w;
                model.insert(key, next);
            }
            1 => {
                delta.add_edge(u, v).unwrap();
                model.insert(key, 1.0);
            }
            _ => {
                delta.remove_edge(u, v).unwrap();
                model.remove(&key);
            }
        }
        true
    }

    proptest! {
        /// The satellite pin: after ANY interleaving of adds and removes —
        /// applied across one or several commits — the committed CSR is
        /// bit-identical (offsets, targets, weight lane; `Graph: PartialEq`
        /// compares all of them) to a from-scratch `GraphBuilder` over the
        /// surviving edge set.
        #[test]
        fn commit_matches_from_scratch_build(
            base_edges in proptest::collection::vec((0usize..12, 0usize..12), 0..30),
            ops in proptest::collection::vec((0usize..3, (0usize..12, 0usize..12), 1u32..16), 0..40),
            weighted in any::<bool>(),
            commit_every in 1usize..8,
        ) {
            let n = 12;
            // Committed base graph and the model map tracking it.
            let mut model: BTreeMap<(VertexId, VertexId), f64> = BTreeMap::new();
            let mut base = GraphBuilder::new(n);
            for &(u, v) in base_edges.iter().filter(|(u, v)| u != v) {
                if weighted {
                    base.add_weighted_edge(u, v, 1.0).unwrap();
                    let key = (u.min(v), u.max(v));
                    let w = model.get(&key).copied().unwrap_or(0.0) + 1.0;
                    model.insert(key, w);
                } else {
                    base.add_edge(u, v).unwrap();
                    model.insert((u.min(v), u.max(v)), 1.0);
                }
            }
            let mut delta = DeltaGraph::new(base.build());
            prop_assert_eq!(delta.is_weighted(), weighted && !model.is_empty());

            let mut applied = 0usize;
            for op in &ops {
                if apply_op(&mut delta, &mut model, op) {
                    applied += 1;
                    if applied.is_multiple_of(commit_every) {
                        delta.commit().unwrap();
                    }
                }
            }
            let report = delta.commit().unwrap();
            prop_assert!(report.dirty.len() <= 2 * delta.num_vertices());

            // The from-scratch reference over the surviving edge set.
            let mut reference = GraphBuilder::new(n);
            for (&(u, v), &w) in &model {
                if delta.is_weighted() {
                    reference.add_weighted_edge(u, v, w).unwrap();
                } else {
                    reference.add_edge(u, v).unwrap();
                }
            }
            prop_assert_eq!(delta.graph(), &reference.build());
        }

        /// Dirty vertices are exactly the endpoints of changed pairs: a
        /// commit's report never flags a vertex whose incident edges are all
        /// unchanged, and always flags both endpoints of a changed pair.
        #[test]
        fn dirty_set_is_exactly_the_changed_endpoints(
            base_edges in proptest::collection::vec((0usize..10, 0usize..10), 0..25),
            ops in proptest::collection::vec((0usize..3, (0usize..10, 0usize..10), 1u32..16), 1..20),
        ) {
            let n = 10;
            let clean: Vec<_> = base_edges.into_iter().filter(|(u, v)| u != v).collect();
            let before = GraphBuilder::from_edges(n, clean).unwrap();
            let mut delta = DeltaGraph::new(before.clone());
            let mut model: BTreeMap<(VertexId, VertexId), f64> = BTreeMap::new();
            for (u, v) in before.edges() {
                model.insert((u, v), 1.0);
            }
            for op in &ops {
                apply_op(&mut delta, &mut model, op);
            }
            let report = delta.commit().unwrap();
            let after = delta.graph();
            let mut expected: Vec<VertexId> = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if before.has_edge(u, v) != after.has_edge(u, v) {
                        expected.push(u);
                        expected.push(v);
                    }
                }
            }
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(report.dirty, expected);
        }
    }
}
