//! Mutable builder producing immutable CSR [`Graph`]s.

use crate::{Graph, GraphError, VertexId};

/// Incremental builder for simple undirected graphs.
///
/// The builder records validated edges in a flat list; duplicates are
/// resolved by one sort + dedup at [`GraphBuilder::build`] time (the random
/// generators may propose the same pair twice when composing block-diagonal
/// and off-diagonal edges), and self-loops are rejected at insertion. This
/// makes `add_edge` an `O(1)` push — the previous per-vertex ordered-set
/// representation paid `O(log d)` *and* a cache-hostile tree allocation per
/// insertion, which made full-scale PPM generation the dominant cost of the
/// quick benches. [`GraphBuilder::build`] produces an immutable [`Graph`] in
/// compressed-sparse-row form via one counting sort over the deduplicated
/// list; a property test pins the produced CSR identical to the ordered-set
/// reference builder.
///
/// # Example
///
/// ```
/// use cdrw_graph::GraphBuilder;
///
/// # fn main() -> Result<(), cdrw_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(1, 0)?; // duplicate, deduplicated at build
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
/// ## Weighted edges
///
/// [`GraphBuilder::add_weighted_edge`] switches the builder into weighted
/// mode: every recorded edge carries a positive finite weight (plain
/// [`GraphBuilder::add_edge`] insertions contribute weight `1.0`), and
/// duplicate insertions of the same pair are resolved by *summing* their
/// weights at [`GraphBuilder::build`] time — the natural semantics for
/// multigraph-style inputs collapsed to a simple weighted graph. A builder
/// that never sees `add_weighted_edge` builds a weight-free [`Graph`] whose
/// CSR is bit-identical to the pre-weight-lane output.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// Recorded edges, normalised to `(min, max)`; may contain duplicates
    /// until [`GraphBuilder::build`] sorts and deduplicates them.
    edges: Vec<(VertexId, VertexId)>,
    /// Weight per recorded edge, parallel to `edges`; engaged by the first
    /// [`GraphBuilder::add_weighted_edge`] (earlier plain insertions are
    /// backfilled with `1.0`).
    weights: Option<Vec<f64>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `num_vertices` isolated vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            weights: None,
        }
    }

    /// Whether the builder is in weighted mode (at least one
    /// [`GraphBuilder::add_weighted_edge`] insertion).
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edge insertions recorded so far — deliberately *not* named
    /// `num_edges`: duplicates are resolved at [`GraphBuilder::build`] time,
    /// so this is only an upper bound on the built graph's edge count (the
    /// built [`Graph::num_edges`] is exact).
    pub fn edges_recorded(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the edge `(u, v)` has been recorded.
    ///
    /// Linear in the edges added so far — a debugging/testing convenience,
    /// not a hot-path operation (the built [`Graph::has_edge`] is a binary
    /// search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.contains(&key)
    }

    /// Records the undirected edge `(u, v)`.
    ///
    /// Duplicate edges are accepted and deduplicated at
    /// [`GraphBuilder::build`] time.
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let n = self.num_vertices;
        if u >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                num_vertices: n,
            });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push((u.min(v), u.max(v)));
        if let Some(w) = &mut self.weights {
            w.push(1.0);
        }
        Ok(())
    }

    /// Records the undirected edge `(u, v)` with weight `weight`, switching
    /// the builder into weighted mode.
    ///
    /// Duplicate insertions of the same pair are resolved at
    /// [`GraphBuilder::build`] time by summing their weights. Edges recorded
    /// through plain [`GraphBuilder::add_edge`] — before or after this call —
    /// contribute weight `1.0`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::InvalidParameter`] unless `weight` is finite and
    ///   strictly positive (zero or negative mass has no meaning for the
    ///   walk operator, and positivity keeps `w(v) = 0 ⟺ d(v) = 0`).
    pub fn add_weighted_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: f64,
    ) -> Result<(), GraphError> {
        if !(weight.is_finite() && weight > 0.0) {
            return Err(GraphError::InvalidParameter {
                name: "weight",
                reason: format!("edge weight must be finite and positive, got {weight}"),
            });
        }
        let recorded = self.edges.len();
        self.add_edge(u, v)?;
        match &mut self.weights {
            Some(w) => {
                // `add_edge` pushed the placeholder 1.0; overwrite it.
                w[recorded] = weight;
            }
            None => {
                // Engage the weight lane, backfilling earlier plain edges.
                let mut w = vec![1.0; recorded];
                w.push(weight);
                self.weights = Some(w);
            }
        }
        Ok(())
    }

    /// Adds every edge from an iterator of pairs.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first error produced by [`GraphBuilder::add_edge`].
    pub fn add_edges<I>(&mut self, edges: I) -> Result<(), GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Consumes the builder and produces the immutable CSR [`Graph`]:
    /// sort + dedup of the edge list (weighted mode merges duplicates by
    /// summing their weights), then a counting sort into the CSR arrays.
    /// Total `O(E log E + n)`.
    pub fn build(mut self) -> Graph {
        let edge_weights = match self.weights.take() {
            None => {
                self.edges.sort_unstable();
                self.edges.dedup();
                None
            }
            Some(weights) => {
                // Sort the insertion indices by pair so the weights travel
                // with their edges, then merge duplicates by summing in
                // sorted order (deterministic: ties broken by insertion
                // index, so equal pairs sum first-inserted first).
                let mut order: Vec<usize> = (0..self.edges.len()).collect();
                order.sort_unstable_by_key(|&i| (self.edges[i], i));
                let mut merged = Vec::with_capacity(self.edges.len());
                let mut merged_w: Vec<f64> = Vec::with_capacity(self.edges.len());
                for &i in &order {
                    if merged.last() == Some(&self.edges[i]) {
                        *merged_w.last_mut().unwrap() += weights[i];
                    } else {
                        merged.push(self.edges[i]);
                        merged_w.push(weights[i]);
                    }
                }
                self.edges = merged;
                Some(merged_w)
            }
        };
        let n = self.num_vertices;
        let m = self.edges.len();

        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Fill both directions in one pass over the (min, max)-sorted list:
        // vertex x first receives its smaller neighbours (from pairs (c, x),
        // c ascending) and then its larger ones (from pairs (x, d), d
        // ascending), so every adjacency list comes out sorted.
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; 2 * m];
        match edge_weights {
            None => {
                for &(u, v) in &self.edges {
                    neighbors[cursor[u]] = v;
                    cursor[u] += 1;
                    neighbors[cursor[v]] = u;
                    cursor[v] += 1;
                }
                Graph::from_csr_parts(offsets, neighbors, m)
            }
            Some(ws) => {
                // Same cursor fill with the weight lane travelling alongside:
                // both directed slots of an edge carry the same weight.
                let mut lane = vec![0.0f64; 2 * m];
                for (&(u, v), &w) in self.edges.iter().zip(&ws) {
                    neighbors[cursor[u]] = v;
                    lane[cursor[u]] = w;
                    cursor[u] += 1;
                    neighbors[cursor[v]] = u;
                    lane[cursor[v]] = w;
                    cursor[v] += 1;
                }
                Graph::from_weighted_csr_parts(offsets, neighbors, lane, m)
            }
        }
    }
}

/// Builds a graph directly from an edge list.
///
/// Convenience wrapper over [`GraphBuilder`] used pervasively in tests.
///
/// # Errors
///
/// Propagates the first invalid edge ([`GraphError::VertexOutOfRange`] or
/// [`GraphError::SelfLoop`]).
///
/// # Example
///
/// ```
/// let g = cdrw_graph::GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(g.degree(1), 2);
/// # Ok::<(), cdrw_graph::GraphError>(())
/// ```
impl GraphBuilder {
    /// See the type-level documentation; builds a [`Graph`] from an edge list.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid edge.
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut builder = GraphBuilder::new(num_vertices);
        builder.add_edges(edges)?;
        Ok(builder.build())
    }

    /// Builds a weighted [`Graph`] from `(u, v, weight)` triples; duplicate
    /// pairs merge by summing their weights.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid edge or weight.
    pub fn from_weighted_edges<I>(num_vertices: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId, f64)>,
    {
        let mut builder = GraphBuilder::new(num_vertices);
        for (u, v, w) in edges {
            builder.add_weighted_edge(u, v, w)?;
        }
        Ok(builder.build())
    }
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// The pre-edge-list builder, kept verbatim as the reference the
    /// counting-sort build is pinned against: per-vertex ordered sets,
    /// deduplicated at insertion, concatenated into CSR.
    fn reference_build(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Graph {
        let mut adjacency: Vec<BTreeSet<VertexId>> = vec![BTreeSet::new(); num_vertices];
        let mut num_edges = 0usize;
        for &(u, v) in edges {
            if adjacency[u].insert(v) {
                adjacency[v].insert(u);
                num_edges += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut neighbors = Vec::with_capacity(2 * num_edges);
        offsets.push(0usize);
        for set in &adjacency {
            neighbors.extend(set.iter().copied());
            offsets.push(neighbors.len());
        }
        Graph::from_csr_parts(offsets, neighbors, num_edges)
    }

    #[test]
    fn empty_builder_produces_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
            assert_eq!(g.neighbors(v).count(), 0);
        }
    }

    #[test]
    fn duplicate_edges_are_deduplicated_at_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        // All three insertions are recorded …
        assert_eq!(b.edges_recorded(), 3);
        // … and collapse to one edge in the built graph.
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn out_of_range_vertex_is_rejected() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3),
            Err(GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            })
        );
        assert_eq!(
            b.add_edge(9, 0),
            Err(GraphError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 3
            })
        );
    }

    #[test]
    fn has_edge_reflects_insertions() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2).unwrap();
        assert!(b.has_edge(0, 2));
        assert!(b.has_edge(2, 0));
        assert!(!b.has_edge(0, 1));
        assert!(!b.has_edge(7, 1));
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.num_edges(), 4);
        for v in 0..4 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn neighbors_are_sorted_in_csr() {
        let g = GraphBuilder::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let neighbors: Vec<_> = g.neighbors(2).collect();
        assert_eq!(neighbors, vec![0, 1, 3, 4]);
    }

    #[test]
    fn weighted_duplicates_merge_by_summing() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 1.5).unwrap();
        b.add_weighted_edge(1, 0, 2.0).unwrap();
        b.add_edge(0, 1).unwrap(); // plain insertion contributes 1.0
        b.add_weighted_edge(1, 2, 4.0).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(4.5));
        assert_eq!(g.edge_weight(1, 2), Some(4.0));
        assert_eq!(g.weighted_degree(1), 8.5);
    }

    #[test]
    fn plain_edges_before_the_first_weighted_edge_are_backfilled() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(!b.is_weighted());
        b.add_weighted_edge(1, 2, 3.0).unwrap();
        assert!(b.is_weighted());
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 2), Some(3.0));
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_weighted_edge(0, 1, 0.0),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            b.add_weighted_edge(0, 1, -1.0),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            b.add_weighted_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            b.add_weighted_edge(0, 1, f64::INFINITY),
            Err(GraphError::InvalidParameter { .. })
        ));
        // A rejected weight must not engage weighted mode or record an edge.
        assert!(!b.is_weighted());
        assert_eq!(b.edges_recorded(), 0);
        // An invalid endpoint on a valid weight must not record either.
        assert!(b.add_weighted_edge(0, 9, 1.0).is_err());
        assert_eq!(b.edges_recorded(), 0);
    }

    proptest! {
        /// All-weights-1.0 builds the same CSR as the unweighted builder,
        /// with every weighted accessor degenerating bit-identically.
        #[test]
        fn unit_weights_match_the_unweighted_build(
            edges in proptest::collection::vec((0usize..20, 0usize..20), 0..120),
        ) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let plain = GraphBuilder::from_edges(20, clean.iter().copied()).unwrap();
            let unit = GraphBuilder::from_weighted_edges(
                20,
                clean.iter().map(|&(u, v)| (u, v, 1.0)),
            )
            .unwrap();
            prop_assert_eq!(unit.num_edges(), plain.num_edges());
            for v in 0..20usize {
                prop_assert_eq!(unit.neighbor_slice(v), plain.neighbor_slice(v));
                // Duplicate insertions sum their 1.0 weights, so only
                // duplicate-free inputs promise unit weights; degree
                // equality holds regardless.
                prop_assert_eq!(unit.degree(v), plain.degree(v));
            }
        }

        /// On duplicate-free weighted inputs the weighted degree is the
        /// row-order sum of the incident weights, and all-1.0 weights make
        /// it exactly `degree as f64`.
        #[test]
        fn weighted_degrees_sum_the_lane(
            edges in proptest::collection::vec((0usize..12, 0usize..12), 0..50),
        ) {
            let mut seen = std::collections::BTreeSet::new();
            let clean: Vec<_> = edges
                .into_iter()
                .filter(|&(u, v)| u != v && seen.insert((u.min(v), u.max(v))))
                .collect();
            let unit = GraphBuilder::from_weighted_edges(
                12,
                clean.iter().map(|&(u, v)| (u, v, 1.0)),
            )
            .unwrap();
            for v in 0..12usize {
                prop_assert_eq!(unit.weighted_degree(v).to_bits(), (unit.degree(v) as f64).to_bits());
            }
            prop_assert_eq!(unit.weighted_volume().to_bits(), (unit.total_volume() as f64).to_bits());
        }
    }

    proptest! {
        /// The counting-sort build produces a CSR identical — offsets,
        /// neighbour arrays, edge count, the lot — to the ordered-set
        /// reference builder on arbitrary edge lists with duplicates.
        #[test]
        fn build_matches_the_ordered_set_reference(
            edges in proptest::collection::vec((0usize..30, 0usize..30), 0..250),
        ) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = GraphBuilder::from_edges(30, clean.iter().copied()).unwrap();
            let reference = reference_build(30, &clean);
            prop_assert_eq!(g, reference);
        }

        /// Building from an arbitrary edge list preserves the handshake lemma
        /// (sum of degrees equals twice the number of edges) and symmetry.
        #[test]
        fn csr_invariants_hold(edges in proptest::collection::vec((0usize..30, 0usize..30), 0..200)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = GraphBuilder::from_edges(30, clean).unwrap();
            let degree_sum: usize = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.num_edges());
            for u in 0..g.num_vertices() {
                for v in g.neighbors(u) {
                    prop_assert!(g.has_edge(v, u), "edge ({}, {}) not symmetric", u, v);
                }
            }
        }

        /// `has_edge` agrees between builder and built graph.
        #[test]
        fn builder_and_graph_agree(edges in proptest::collection::vec((0usize..15, 0usize..15), 0..60)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let mut b = GraphBuilder::new(15);
            b.add_edges(clean).unwrap();
            let b_snapshot = b.clone();
            let g = b.build();
            for u in 0..15 {
                for v in 0..15 {
                    prop_assert_eq!(b_snapshot.has_edge(u, v), g.has_edge(u, v));
                }
            }
        }
    }
}
