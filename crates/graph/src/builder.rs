//! Mutable builder producing immutable CSR [`Graph`]s.

use crate::{Graph, GraphError, VertexId};

/// Incremental builder for simple undirected graphs.
///
/// The builder records validated edges in a flat list; duplicates are
/// resolved by one sort + dedup at [`GraphBuilder::build`] time (the random
/// generators may propose the same pair twice when composing block-diagonal
/// and off-diagonal edges), and self-loops are rejected at insertion. This
/// makes `add_edge` an `O(1)` push — the previous per-vertex ordered-set
/// representation paid `O(log d)` *and* a cache-hostile tree allocation per
/// insertion, which made full-scale PPM generation the dominant cost of the
/// quick benches. [`GraphBuilder::build`] produces an immutable [`Graph`] in
/// compressed-sparse-row form via one counting sort over the deduplicated
/// list; a property test pins the produced CSR identical to the ordered-set
/// reference builder.
///
/// # Example
///
/// ```
/// use cdrw_graph::GraphBuilder;
///
/// # fn main() -> Result<(), cdrw_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(1, 0)?; // duplicate, deduplicated at build
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// Recorded edges, normalised to `(min, max)`; may contain duplicates
    /// until [`GraphBuilder::build`] sorts and deduplicates them.
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `num_vertices` isolated vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edge insertions recorded so far — deliberately *not* named
    /// `num_edges`: duplicates are resolved at [`GraphBuilder::build`] time,
    /// so this is only an upper bound on the built graph's edge count (the
    /// built [`Graph::num_edges`] is exact).
    pub fn edges_recorded(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the edge `(u, v)` has been recorded.
    ///
    /// Linear in the edges added so far — a debugging/testing convenience,
    /// not a hot-path operation (the built [`Graph::has_edge`] is a binary
    /// search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.contains(&key)
    }

    /// Records the undirected edge `(u, v)`.
    ///
    /// Duplicate edges are accepted and deduplicated at
    /// [`GraphBuilder::build`] time.
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let n = self.num_vertices;
        if u >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                num_vertices: n,
            });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(())
    }

    /// Adds every edge from an iterator of pairs.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first error produced by [`GraphBuilder::add_edge`].
    pub fn add_edges<I>(&mut self, edges: I) -> Result<(), GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Consumes the builder and produces the immutable CSR [`Graph`]:
    /// sort + dedup of the edge list, then a counting sort into the CSR
    /// arrays. Total `O(E log E + n)`.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.num_vertices;
        let m = self.edges.len();

        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Fill both directions in one pass over the (min, max)-sorted list:
        // vertex x first receives its smaller neighbours (from pairs (c, x),
        // c ascending) and then its larger ones (from pairs (x, d), d
        // ascending), so every adjacency list comes out sorted.
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; 2 * m];
        for &(u, v) in &self.edges {
            neighbors[cursor[u]] = v;
            cursor[u] += 1;
            neighbors[cursor[v]] = u;
            cursor[v] += 1;
        }
        Graph::from_csr_parts(offsets, neighbors, m)
    }
}

/// Builds a graph directly from an edge list.
///
/// Convenience wrapper over [`GraphBuilder`] used pervasively in tests.
///
/// # Errors
///
/// Propagates the first invalid edge ([`GraphError::VertexOutOfRange`] or
/// [`GraphError::SelfLoop`]).
///
/// # Example
///
/// ```
/// let g = cdrw_graph::GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(g.degree(1), 2);
/// # Ok::<(), cdrw_graph::GraphError>(())
/// ```
impl GraphBuilder {
    /// See the type-level documentation; builds a [`Graph`] from an edge list.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid edge.
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut builder = GraphBuilder::new(num_vertices);
        builder.add_edges(edges)?;
        Ok(builder.build())
    }
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// The pre-edge-list builder, kept verbatim as the reference the
    /// counting-sort build is pinned against: per-vertex ordered sets,
    /// deduplicated at insertion, concatenated into CSR.
    fn reference_build(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Graph {
        let mut adjacency: Vec<BTreeSet<VertexId>> = vec![BTreeSet::new(); num_vertices];
        let mut num_edges = 0usize;
        for &(u, v) in edges {
            if adjacency[u].insert(v) {
                adjacency[v].insert(u);
                num_edges += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut neighbors = Vec::with_capacity(2 * num_edges);
        offsets.push(0usize);
        for set in &adjacency {
            neighbors.extend(set.iter().copied());
            offsets.push(neighbors.len());
        }
        Graph::from_csr_parts(offsets, neighbors, num_edges)
    }

    #[test]
    fn empty_builder_produces_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
            assert_eq!(g.neighbors(v).count(), 0);
        }
    }

    #[test]
    fn duplicate_edges_are_deduplicated_at_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        // All three insertions are recorded …
        assert_eq!(b.edges_recorded(), 3);
        // … and collapse to one edge in the built graph.
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn out_of_range_vertex_is_rejected() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3),
            Err(GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            })
        );
        assert_eq!(
            b.add_edge(9, 0),
            Err(GraphError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 3
            })
        );
    }

    #[test]
    fn has_edge_reflects_insertions() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2).unwrap();
        assert!(b.has_edge(0, 2));
        assert!(b.has_edge(2, 0));
        assert!(!b.has_edge(0, 1));
        assert!(!b.has_edge(7, 1));
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.num_edges(), 4);
        for v in 0..4 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn neighbors_are_sorted_in_csr() {
        let g = GraphBuilder::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let neighbors: Vec<_> = g.neighbors(2).collect();
        assert_eq!(neighbors, vec![0, 1, 3, 4]);
    }

    proptest! {
        /// The counting-sort build produces a CSR identical — offsets,
        /// neighbour arrays, edge count, the lot — to the ordered-set
        /// reference builder on arbitrary edge lists with duplicates.
        #[test]
        fn build_matches_the_ordered_set_reference(
            edges in proptest::collection::vec((0usize..30, 0usize..30), 0..250),
        ) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = GraphBuilder::from_edges(30, clean.iter().copied()).unwrap();
            let reference = reference_build(30, &clean);
            prop_assert_eq!(g, reference);
        }

        /// Building from an arbitrary edge list preserves the handshake lemma
        /// (sum of degrees equals twice the number of edges) and symmetry.
        #[test]
        fn csr_invariants_hold(edges in proptest::collection::vec((0usize..30, 0usize..30), 0..200)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = GraphBuilder::from_edges(30, clean).unwrap();
            let degree_sum: usize = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.num_edges());
            for u in 0..g.num_vertices() {
                for v in g.neighbors(u) {
                    prop_assert!(g.has_edge(v, u), "edge ({}, {}) not symmetric", u, v);
                }
            }
        }

        /// `has_edge` agrees between builder and built graph.
        #[test]
        fn builder_and_graph_agree(edges in proptest::collection::vec((0usize..15, 0usize..15), 0..60)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let mut b = GraphBuilder::new(15);
            b.add_edges(clean).unwrap();
            let b_snapshot = b.clone();
            let g = b.build();
            for u in 0..15 {
                for v in 0..15 {
                    prop_assert_eq!(b_snapshot.has_edge(u, v), g.has_edge(u, v));
                }
            }
        }
    }
}
