//! Error type shared by the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or querying graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex identifier was outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices of the graph.
        num_vertices: usize,
    },
    /// A self-loop `(u, u)` was supplied; the paper's graphs are simple.
    SelfLoop {
        /// The vertex on which the loop was attempted.
        vertex: usize,
    },
    /// An empty graph (zero vertices) was supplied where at least one vertex
    /// is required.
    EmptyGraph,
    /// A vertex set argument was empty where a non-empty set is required.
    EmptyVertexSet,
    /// The graph is disconnected but the operation requires connectivity.
    Disconnected,
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human readable description of the constraint that was violated.
        reason: String,
    },
    /// A textual graph file (edge list or METIS) could not be parsed.
    ParseError {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human readable description of what was wrong with the line.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop on vertex {vertex} is not allowed in a simple graph"
                )
            }
            GraphError::EmptyGraph => {
                write!(f, "operation requires a graph with at least one vertex")
            }
            GraphError::EmptyVertexSet => write!(f, "operation requires a non-empty vertex set"),
            GraphError::Disconnected => write!(f, "operation requires a connected graph"),
            GraphError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            GraphError::ParseError { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 7,
            num_vertices: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('7'));
        assert!(msg.contains('3'));

        let e = GraphError::SelfLoop { vertex: 2 };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::InvalidParameter {
            name: "p",
            reason: "must lie in [0, 1]".to_string(),
        };
        assert!(e.to_string().contains("`p`"));
    }

    #[test]
    fn error_is_send_sync_and_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<GraphError>();
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 1 }
        );
        assert_ne!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 2 }
        );
    }
}
