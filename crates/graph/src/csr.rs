//! Immutable compressed-sparse-row graph representation.

use serde::{Deserialize, Serialize};

use crate::{GraphError, VertexId};

/// A simple undirected graph in compressed-sparse-row (CSR) form.
///
/// This is the single graph type consumed by every algorithm in the
/// workspace: the CDRW random-walk probability push, the CONGEST simulator,
/// the baselines and the metrics all iterate neighbourhoods through this
/// structure. The representation is immutable; use [`crate::GraphBuilder`] to
/// construct one.
///
/// Vertices are the integers `0..n`. Neighbour lists are sorted, which makes
/// `has_edge` a binary search and keeps iteration deterministic (important
/// for reproducible experiments).
///
/// ## Optional edge weights
///
/// A graph built through [`crate::GraphBuilder::add_weighted_edge`] carries a
/// weight lane parallel to `neighbors`: `weights[k]` is the (positive,
/// finite) weight of the edge slot `neighbors[k]`, stored once per
/// direction. Unweighted graphs carry no lane at all, and every weighted
/// accessor degenerates to the structural quantity — `weighted_degree(v)`
/// is exactly `degree(v) as f64` — so algorithms written against the
/// weighted accessors are bit-identical to their pre-weight behaviour on
/// unweighted input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<VertexId>,
    /// Number of undirected edges `m`.
    num_edges: usize,
    /// Optional per-edge-slot weights, parallel to `neighbors`.
    weights: Option<Vec<f64>>,
    /// Precomputed weighted degrees `w(v) = Σ_u w(v,u)` (row-order sums);
    /// present iff `weights` is.
    weighted_degrees: Option<Vec<f64>>,
    /// Cached weighted volume `w(V) = Σ_v w(v)`; 0.0 when unweighted.
    weight_volume: f64,
}

impl Graph {
    /// Assembles a graph from raw CSR parts.
    ///
    /// Intended for use by [`crate::GraphBuilder`]; the parts are trusted to
    /// be consistent (symmetric, sorted, no self-loops).
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        num_edges: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(neighbors.len(), 2 * num_edges);
        Graph {
            offsets,
            neighbors,
            num_edges,
            weights: None,
            weighted_degrees: None,
            weight_volume: 0.0,
        }
    }

    /// Assembles a weighted graph from raw CSR parts plus a weight lane
    /// parallel to `neighbors`.
    ///
    /// Intended for use by [`crate::GraphBuilder`]; the parts are trusted to
    /// be consistent (symmetric slots with symmetric weights, sorted, no
    /// self-loops, weights positive and finite).
    pub(crate) fn from_weighted_csr_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        weights: Vec<f64>,
        num_edges: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(neighbors.len(), 2 * num_edges);
        debug_assert_eq!(weights.len(), neighbors.len());
        debug_assert!(weights.iter().all(|w| w.is_finite() && *w > 0.0));
        let num_vertices = offsets.len() - 1;
        let mut weighted_degrees = Vec::with_capacity(num_vertices);
        for v in 0..num_vertices {
            // Row-order summation via fold(0.0, +): deterministic, exact for
            // integer-valued weights (all-1.0 rows sum to exactly
            // `degree(v) as f64`), and +0.0 on empty rows (`Iterator::sum`
            // would yield -0.0).
            let row = &weights[offsets[v]..offsets[v + 1]];
            weighted_degrees.push(row.iter().fold(0.0, |acc, w| acc + w));
        }
        let weight_volume = weighted_degrees.iter().fold(0.0, |acc, w| acc + w);
        Graph {
            offsets,
            neighbors,
            num_edges,
            weights: Some(weights),
            weighted_degrees: Some(weighted_degrees),
            weight_volume,
        }
    }

    /// Creates a graph with `num_vertices` vertices and no edges.
    pub fn empty(num_vertices: usize) -> Self {
        Graph {
            offsets: vec![0; num_vertices + 1],
            neighbors: Vec::new(),
            num_edges: 0,
            weights: None,
            weighted_degrees: None,
            weight_volume: 0.0,
        }
    }

    /// The number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The volume of the whole graph, `µ(V) = 2m`.
    pub fn total_volume(&self) -> usize {
        2 * self.num_edges
    }

    /// The degree `d(v)` of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Whether the graph carries an edge-weight lane.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The weighted degree `w(v) = Σ_u w(v, u)`.
    ///
    /// On an unweighted graph this is exactly `degree(v) as f64`, so walk
    /// code can use it unconditionally without changing the unweighted
    /// arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn weighted_degree(&self, v: VertexId) -> f64 {
        match &self.weighted_degrees {
            Some(wd) => wd[v],
            None => self.degree(v) as f64,
        }
    }

    /// The weighted volume `w(V) = Σ_v w(v)`; equals `total_volume() as f64`
    /// on an unweighted graph.
    pub fn weighted_volume(&self) -> f64 {
        if self.weights.is_some() {
            self.weight_volume
        } else {
            self.total_volume() as f64
        }
    }

    /// The weights of `v`'s edge slots, parallel to [`Self::neighbor_slice`],
    /// or `None` on an unweighted graph.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn weight_slice(&self, v: VertexId) -> Option<&[f64]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.offsets[v]..self.offsets[v + 1]])
    }

    /// The weight of the edge `(u, v)` if present: the stored weight on a
    /// weighted graph, `1.0` on an unweighted one, `None` when the edge (or
    /// either endpoint) does not exist.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f64> {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return None;
        }
        let k = self.neighbor_slice(u).binary_search(&v).ok()?;
        Some(match self.weight_slice(u) {
            Some(ws) => ws[k],
            None => 1.0,
        })
    }

    /// Iterator over the vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices()
    }

    /// Iterator over the (sorted) neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        Neighbors {
            inner: self.neighbors[self.offsets[v]..self.offsets[v + 1]].iter(),
        }
    }

    /// The neighbours of `v` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge `(u, v)` is present.
    ///
    /// Runs in `O(log d(u))`. Out-of-range vertices simply yield `false`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        self.neighbor_slice(u).binary_search(&v).is_ok()
    }

    /// Iterator over every undirected edge `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbor_slice(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree `∆` of the graph, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree of the graph, or 0 for an empty graph.
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m / n`.
    ///
    /// Returns 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.total_volume() as f64 / self.num_vertices() as f64
        }
    }

    /// Validates that a vertex id is in range.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] when `v >= n`.
    pub fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if v < self.num_vertices() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.num_vertices(),
            })
        }
    }

    /// Builds the subgraph induced by `vertices`.
    ///
    /// Returns the induced graph together with the mapping from new vertex
    /// ids (`0..vertices.len()`) back to the original ids. Duplicate entries
    /// in `vertices` are an error.
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] for out-of-range members.
    /// * [`GraphError::InvalidParameter`] when `vertices` contains duplicates.
    pub fn induced_subgraph(
        &self,
        vertices: &[VertexId],
    ) -> Result<(Graph, Vec<VertexId>), GraphError> {
        let mut new_id = vec![usize::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            self.check_vertex(v)?;
            if new_id[v] != usize::MAX {
                return Err(GraphError::InvalidParameter {
                    name: "vertices",
                    reason: format!("vertex {v} appears more than once"),
                });
            }
            new_id[v] = i;
        }
        let mut builder = crate::GraphBuilder::new(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            for (k, &w) in self.neighbor_slice(v).iter().enumerate() {
                let j = new_id[w];
                if j != usize::MAX && i < j {
                    match self.weight_slice(v) {
                        Some(ws) => builder.add_weighted_edge(i, j, ws[k]),
                        None => builder.add_edge(i, j),
                    }
                    .expect("induced edges are always in range and loop-free");
                }
            }
        }
        Ok((builder.build(), vertices.to_vec()))
    }
}

/// Iterator over the neighbours of a vertex (see [`Graph::neighbors`]).
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, VertexId>,
}

impl<'a> Iterator for Neighbors<'a> {
    type Item = VertexId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a> ExactSizeIterator for Neighbors<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    fn complete_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn empty_graph_properties() {
        let g = Graph::empty(7);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_volume(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_vertex_graph_average_degree_is_zero() {
        let g = Graph::empty(0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn path_graph_degrees_and_edges() {
        let g = path_graph(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn complete_graph_has_all_edges() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 15);
        for u in 0..6 {
            assert_eq!(g.degree(u), 5);
            for v in 0..6 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
        assert!((g.average_degree() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_out_of_range_is_false() {
        let g = path_graph(3);
        assert!(!g.has_edge(0, 10));
        assert!(!g.has_edge(10, 0));
    }

    #[test]
    fn check_vertex_errors() {
        let g = path_graph(3);
        assert!(g.check_vertex(2).is_ok());
        assert_eq!(
            g.check_vertex(3),
            Err(GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            })
        );
    }

    #[test]
    fn neighbors_iterator_is_exact_size() {
        let g = complete_graph(4);
        let it = g.neighbors(1);
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn induced_subgraph_of_complete_graph() {
        let g = complete_graph(6);
        let (sub, mapping) = g.induced_subgraph(&[1, 3, 5]).unwrap();
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(mapping, vec![1, 3, 5]);
    }

    #[test]
    fn induced_subgraph_of_path_keeps_only_internal_edges() {
        let g = path_graph(6);
        let (sub, _) = g.induced_subgraph(&[0, 1, 4, 5]).unwrap();
        // Edges (0,1) and (4,5) survive; (1,2),(2,3),(3,4) are cut.
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn induced_subgraph_rejects_duplicates_and_out_of_range() {
        let g = path_graph(4);
        assert!(matches!(
            g.induced_subgraph(&[0, 0]),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            g.induced_subgraph(&[0, 9]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn unweighted_accessors_degenerate_to_structural_quantities() {
        let g = path_graph(4);
        assert!(!g.is_weighted());
        for v in g.vertices() {
            assert_eq!(
                g.weighted_degree(v).to_bits(),
                (g.degree(v) as f64).to_bits()
            );
            assert!(g.weight_slice(v).is_none());
        }
        assert_eq!(g.weighted_volume(), g.total_volume() as f64);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(0, 2), None);
        assert_eq!(g.edge_weight(0, 10), None);
    }

    #[test]
    fn weighted_accessors_report_the_weight_lane() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.5).unwrap();
        b.add_weighted_edge(1, 2, 0.5).unwrap();
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.weighted_degree(0), 2.5);
        assert_eq!(g.weighted_degree(1), 3.0);
        assert_eq!(g.weighted_degree(2), 0.5);
        assert_eq!(g.weighted_volume(), 6.0);
        assert_eq!(g.weight_slice(1), Some(&[2.5, 0.5][..]));
        assert_eq!(g.edge_weight(2, 1), Some(0.5));
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    fn induced_subgraph_preserves_weights() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 2, 3.0).unwrap();
        b.add_weighted_edge(2, 3, 4.0).unwrap();
        let g = b.build();
        let (sub, _) = g.induced_subgraph(&[1, 2, 3]).unwrap();
        assert!(sub.is_weighted());
        assert_eq!(sub.edge_weight(0, 1), Some(3.0));
        assert_eq!(sub.edge_weight(1, 2), Some(4.0));
        assert_eq!(sub.weighted_degree(1), 7.0);
    }

    #[test]
    fn rebuilding_from_edge_list_is_identity() {
        let g = complete_graph(5);
        let edges: Vec<_> = g.edges().collect();
        let rebuilt = crate::GraphBuilder::from_edges(g.num_vertices(), edges).unwrap();
        assert_eq!(g, rebuilt);
    }

    proptest! {
        /// Edge iteration yields each edge exactly once with u < v, and the
        /// count matches `num_edges`.
        #[test]
        fn edges_iteration_consistent(edges in proptest::collection::vec((0usize..25, 0usize..25), 0..150)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = GraphBuilder::from_edges(25, clean).unwrap();
            let listed: Vec<_> = g.edges().collect();
            prop_assert_eq!(listed.len(), g.num_edges());
            for &(u, v) in &listed {
                prop_assert!(u < v);
                prop_assert!(g.has_edge(u, v));
            }
        }

        /// Induced subgraph on all vertices is the graph itself (up to id relabeling,
        /// which is identity here).
        #[test]
        fn induced_on_everything_is_identity(edges in proptest::collection::vec((0usize..15, 0usize..15), 0..60)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = GraphBuilder::from_edges(15, clean).unwrap();
            let all: Vec<_> = g.vertices().collect();
            let (sub, _) = g.induced_subgraph(&all).unwrap();
            prop_assert_eq!(sub, g);
        }
    }
}
