//! Immutable compressed-sparse-row graph representation.

use serde::{Deserialize, Serialize};

use crate::{GraphError, VertexId};

/// A simple undirected graph in compressed-sparse-row (CSR) form.
///
/// This is the single graph type consumed by every algorithm in the
/// workspace: the CDRW random-walk probability push, the CONGEST simulator,
/// the baselines and the metrics all iterate neighbourhoods through this
/// structure. The representation is immutable; use [`crate::GraphBuilder`] to
/// construct one.
///
/// Vertices are the integers `0..n`. Neighbour lists are sorted, which makes
/// `has_edge` a binary search and keeps iteration deterministic (important
/// for reproducible experiments).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<VertexId>,
    /// Number of undirected edges `m`.
    num_edges: usize,
}

impl Graph {
    /// Assembles a graph from raw CSR parts.
    ///
    /// Intended for use by [`crate::GraphBuilder`]; the parts are trusted to
    /// be consistent (symmetric, sorted, no self-loops).
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        num_edges: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(neighbors.len(), 2 * num_edges);
        Graph {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// Creates a graph with `num_vertices` vertices and no edges.
    pub fn empty(num_vertices: usize) -> Self {
        Graph {
            offsets: vec![0; num_vertices + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// The number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The volume of the whole graph, `µ(V) = 2m`.
    pub fn total_volume(&self) -> usize {
        2 * self.num_edges
    }

    /// The degree `d(v)` of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterator over the vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices()
    }

    /// Iterator over the (sorted) neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        Neighbors {
            inner: self.neighbors[self.offsets[v]..self.offsets[v + 1]].iter(),
        }
    }

    /// The neighbours of `v` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge `(u, v)` is present.
    ///
    /// Runs in `O(log d(u))`. Out-of-range vertices simply yield `false`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        self.neighbor_slice(u).binary_search(&v).is_ok()
    }

    /// Iterator over every undirected edge `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbor_slice(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree `∆` of the graph, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree of the graph, or 0 for an empty graph.
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m / n`.
    ///
    /// Returns 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.total_volume() as f64 / self.num_vertices() as f64
        }
    }

    /// Validates that a vertex id is in range.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] when `v >= n`.
    pub fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if v < self.num_vertices() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.num_vertices(),
            })
        }
    }

    /// Builds the subgraph induced by `vertices`.
    ///
    /// Returns the induced graph together with the mapping from new vertex
    /// ids (`0..vertices.len()`) back to the original ids. Duplicate entries
    /// in `vertices` are an error.
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] for out-of-range members.
    /// * [`GraphError::InvalidParameter`] when `vertices` contains duplicates.
    pub fn induced_subgraph(
        &self,
        vertices: &[VertexId],
    ) -> Result<(Graph, Vec<VertexId>), GraphError> {
        let mut new_id = vec![usize::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            self.check_vertex(v)?;
            if new_id[v] != usize::MAX {
                return Err(GraphError::InvalidParameter {
                    name: "vertices",
                    reason: format!("vertex {v} appears more than once"),
                });
            }
            new_id[v] = i;
        }
        let mut builder = crate::GraphBuilder::new(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            for &w in self.neighbor_slice(v) {
                let j = new_id[w];
                if j != usize::MAX && i < j {
                    builder
                        .add_edge(i, j)
                        .expect("induced edges are always in range and loop-free");
                }
            }
        }
        Ok((builder.build(), vertices.to_vec()))
    }
}

/// Iterator over the neighbours of a vertex (see [`Graph::neighbors`]).
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, VertexId>,
}

impl<'a> Iterator for Neighbors<'a> {
    type Item = VertexId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a> ExactSizeIterator for Neighbors<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    fn complete_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn empty_graph_properties() {
        let g = Graph::empty(7);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_volume(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_vertex_graph_average_degree_is_zero() {
        let g = Graph::empty(0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn path_graph_degrees_and_edges() {
        let g = path_graph(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn complete_graph_has_all_edges() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 15);
        for u in 0..6 {
            assert_eq!(g.degree(u), 5);
            for v in 0..6 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
        assert!((g.average_degree() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_out_of_range_is_false() {
        let g = path_graph(3);
        assert!(!g.has_edge(0, 10));
        assert!(!g.has_edge(10, 0));
    }

    #[test]
    fn check_vertex_errors() {
        let g = path_graph(3);
        assert!(g.check_vertex(2).is_ok());
        assert_eq!(
            g.check_vertex(3),
            Err(GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            })
        );
    }

    #[test]
    fn neighbors_iterator_is_exact_size() {
        let g = complete_graph(4);
        let it = g.neighbors(1);
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn induced_subgraph_of_complete_graph() {
        let g = complete_graph(6);
        let (sub, mapping) = g.induced_subgraph(&[1, 3, 5]).unwrap();
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(mapping, vec![1, 3, 5]);
    }

    #[test]
    fn induced_subgraph_of_path_keeps_only_internal_edges() {
        let g = path_graph(6);
        let (sub, _) = g.induced_subgraph(&[0, 1, 4, 5]).unwrap();
        // Edges (0,1) and (4,5) survive; (1,2),(2,3),(3,4) are cut.
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn induced_subgraph_rejects_duplicates_and_out_of_range() {
        let g = path_graph(4);
        assert!(matches!(
            g.induced_subgraph(&[0, 0]),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            g.induced_subgraph(&[0, 9]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn rebuilding_from_edge_list_is_identity() {
        let g = complete_graph(5);
        let edges: Vec<_> = g.edges().collect();
        let rebuilt = crate::GraphBuilder::from_edges(g.num_vertices(), edges).unwrap();
        assert_eq!(g, rebuilt);
    }

    proptest! {
        /// Edge iteration yields each edge exactly once with u < v, and the
        /// count matches `num_edges`.
        #[test]
        fn edges_iteration_consistent(edges in proptest::collection::vec((0usize..25, 0usize..25), 0..150)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = GraphBuilder::from_edges(25, clean).unwrap();
            let listed: Vec<_> = g.edges().collect();
            prop_assert_eq!(listed.len(), g.num_edges());
            for &(u, v) in &listed {
                prop_assert!(u < v);
                prop_assert!(g.has_edge(u, v));
            }
        }

        /// Induced subgraph on all vertices is the graph itself (up to id relabeling,
        /// which is identity here).
        #[test]
        fn induced_on_everything_is_identity(edges in proptest::collection::vec((0usize..15, 0usize..15), 0..60)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = GraphBuilder::from_edges(15, clean).unwrap();
            let all: Vec<_> = g.vertices().collect();
            let (sub, _) = g.induced_subgraph(&all).unwrap();
            prop_assert_eq!(sub, g);
        }
    }
}
