//! # cdrw-graph
//!
//! Graph substrate for the reproduction of *Efficient Distributed Community
//! Detection in the Stochastic Block Model* (Fathi, Molla, Pandurangan,
//! ICDCS 2019).
//!
//! The paper works with simple, undirected, unweighted graphs: the planted
//! partition model graph `G(n, p, q)` and the Erdős–Rényi graph `G(n, p)`.
//! This crate provides the data structures and primitive graph computations
//! every other crate in the workspace builds on:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) representation of a
//!   simple undirected graph. All algorithmic crates consume this type.
//! * [`GraphBuilder`] — a mutable adjacency-set builder used by the random
//!   graph generators; deduplicates edges and rejects self-loops.
//! * [`DeltaGraph`] — a committed CSR plus a pending add/remove buffer for
//!   streaming edge churn; [`DeltaGraph::commit`] merge-rebuilds the CSR and
//!   reports the dirty vertices, the invalidation signal the incremental
//!   service layer (`cdrw_core::CdrwService`) keys its cache on.
//! * [`traversal`] — breadth-first search, BFS trees (as used by the source
//!   node of CDRW to aggregate values), connected components, balls `B_ℓ`
//!   (the radius-`ℓ` neighbourhoods appearing in Lemma 1), eccentricity and
//!   diameter estimation.
//! * [`properties`] — volume `µ(S)`, cut size `|E(S, V∖S)|`, set conductance
//!   `φ(S)`, degree statistics, and estimators for the graph conductance
//!   `Φ_G` which the paper uses as the stopping threshold `δ`.
//! * [`partition`] — [`Partition`]: an assignment of every vertex to a
//!   community, used both for planted ground truth and detected output.
//! * [`subcsr`] — [`SubCsr`]: a shard's slice of the CSR (owned rows with
//!   global neighbour identifiers and a boundary-vertex map), the storage
//!   unit of the k-machine execution engine.
//! * [`dot`] — Graphviz DOT export for small showcase graphs (Figure 1).
//! * [`io`] — plain-text edge-list and METIS readers for real datasets,
//!   with the optional edge-weight lane engaged when the input carries
//!   weights.
//!
//! Graphs may optionally carry per-edge weights (see [`Graph::is_weighted`]
//! and [`GraphBuilder::add_weighted_edge`]): the walk substrate generalises
//! to `P(u→v) = w(u,v)/w(u)`, and every weighted accessor degenerates to the
//! structural quantity on unweighted graphs so the unweighted pipeline is
//! bit-identical to the pre-weight behaviour.
//!
//! # Example
//!
//! ```
//! use cdrw_graph::{GraphBuilder, properties};
//!
//! # fn main() -> Result<(), cdrw_graph::GraphError> {
//! // A triangle plus a pendant vertex.
//! let mut builder = GraphBuilder::new(4);
//! builder.add_edge(0, 1)?;
//! builder.add_edge(1, 2)?;
//! builder.add_edge(2, 0)?;
//! builder.add_edge(2, 3)?;
//! let graph = builder.build();
//!
//! assert_eq!(graph.num_vertices(), 4);
//! assert_eq!(graph.num_edges(), 4);
//! assert_eq!(graph.degree(2), 3);
//!
//! // Conductance of the triangle {0, 1, 2}: one edge leaves, volume is 7.
//! let phi = properties::set_conductance(&graph, &[0, 1, 2]);
//! assert!((phi - 1.0 / 1.0f64.min(7.0)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod delta;
pub mod dot;
mod error;
pub mod io;
pub mod partition;
pub mod properties;
pub mod subcsr;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{Graph, Neighbors};
pub use delta::{CommitReport, DeltaGraph};
pub use error::GraphError;
pub use partition::Partition;
pub use subcsr::SubCsr;
pub use traversal::BfsTree;

/// Identifier of a vertex.
///
/// Vertices of a graph with `n` vertices are always the contiguous integers
/// `0..n`; all crates in the workspace rely on this convention (it is also how
/// the paper's CONGEST and k-machine analyses index nodes).
pub type VertexId = usize;
