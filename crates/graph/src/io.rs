//! Plain-text graph readers: whitespace edge lists and METIS files.
//!
//! Two interchange formats cover most real-world datasets dropped into the
//! container:
//!
//! * **Edge list** ([`parse_edge_list`]) — one edge per line, `u v` or
//!   `u v w` with an optional weight column. `#` and `%` start comments.
//! * **METIS** ([`parse_metis`]) — the classic `n m [fmt]` header followed
//!   by one 1-indexed adjacency line per vertex, with interleaved edge
//!   weights when `fmt` ends in `1`.
//!
//! Both readers produce the same [`Graph`] the generators do: simple,
//! undirected, with the optional weight lane engaged exactly when the input
//! carries weights — so a dataset file runs through the full CDRW stack
//! (sequential, CONGEST, k-machine) unchanged.

use crate::{Graph, GraphBuilder, GraphError, VertexId};

fn parse_err(line: usize, reason: impl Into<String>) -> GraphError {
    GraphError::ParseError {
        line,
        reason: reason.into(),
    }
}

fn parse_field<T: std::str::FromStr>(
    token: &str,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    token
        .parse()
        .map_err(|_| parse_err(line, format!("cannot parse {what} from `{token}`")))
}

/// Parses a whitespace-separated edge list: one `u v` or `u v weight` line
/// per edge, vertex ids 0-based, blank lines and `#`/`%` comments ignored —
/// both full-line comments and trailing inline ones (`0 1 2.5 # note`).
///
/// The vertex count is `max id + 1`. A weight column on *any* line engages
/// the weight lane for the whole graph (weight-less lines contribute `1.0`);
/// duplicate pairs merge by summing weights, matching
/// [`GraphBuilder::add_weighted_edge`]. Self-loops are skipped — real
/// datasets commonly carry them, and the walk substrate works on simple
/// graphs.
///
/// # Errors
///
/// [`GraphError::ParseError`] on malformed lines,
/// [`GraphError::InvalidParameter`] on non-positive or non-finite weights.
pub fn parse_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut edges: Vec<(VertexId, VertexId, Option<f64>)> = Vec::new();
    let mut max_vertex = 0usize;
    let mut any_weight = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Strip a trailing inline comment before splitting fields; a line
        // that is all comment (or blank) is skipped entirely.
        let line = raw.find(['#', '%']).map_or(raw, |pos| &raw[..pos]).trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let u: VertexId = parse_field(fields.next().unwrap(), line_no, "vertex id")?;
        let v: VertexId = parse_field(
            fields
                .next()
                .ok_or_else(|| parse_err(line_no, "expected at least two fields"))?,
            line_no,
            "vertex id",
        )?;
        let w = match fields.next() {
            Some(tok) => {
                any_weight = true;
                Some(parse_field::<f64>(tok, line_no, "edge weight")?)
            }
            None => None,
        };
        if fields.next().is_some() {
            return Err(parse_err(line_no, "expected at most three fields"));
        }
        max_vertex = max_vertex.max(u).max(v);
        if u == v {
            continue; // tolerated and dropped: the substrate is simple
        }
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() && max_vertex == 0 {
        0
    } else {
        max_vertex + 1
    };
    let mut builder = GraphBuilder::new(n);
    for (u, v, w) in edges {
        match (any_weight, w) {
            (true, Some(w)) => builder.add_weighted_edge(u, v, w)?,
            (true, None) => builder.add_weighted_edge(u, v, 1.0)?,
            (false, _) => builder.add_edge(u, v)?,
        }
    }
    Ok(builder.build())
}

/// Parses a METIS graph file: header `n m [fmt]`, then one adjacency line
/// per vertex with 1-indexed neighbour ids, `%` comment lines ignored.
///
/// Supported `fmt` codes are `0`/`00` (plain, the default) and `1`/`01`
/// (edge weights, interleaved `neighbour weight` pairs). Vertex weights
/// (`fmt` ≥ 10) are not supported. Each edge must appear in both endpoint
/// rows, as the format requires; the reader takes the weight from the
/// smaller endpoint's row and validates the declared edge count `m`.
///
/// # Errors
///
/// [`GraphError::ParseError`] on malformed input, an unsupported `fmt`, a
/// wrong line count, or an edge-count mismatch with the header;
/// [`GraphError::InvalidParameter`] on non-positive or non-finite weights.
pub fn parse_metis(text: &str) -> Result<Graph, GraphError> {
    // (1-based line number, content) for every non-comment line. Blank
    // lines are kept: after the header they are the adjacency rows of
    // isolated vertices, which the format encodes as empty lines.
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.starts_with('%'));
    let (header_no, header) = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty())
        .ok_or_else(|| parse_err(1, "empty METIS file: missing `n m [fmt]` header"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 || fields.len() > 3 {
        return Err(parse_err(header_no, "header must be `n m [fmt]`"));
    }
    let n: usize = parse_field(fields[0], header_no, "vertex count")?;
    let m: usize = parse_field(fields[1], header_no, "edge count")?;
    let weighted = match fields.get(2).copied().unwrap_or("0") {
        "0" | "00" | "000" => false,
        "1" | "01" | "001" => true,
        fmt => {
            return Err(parse_err(
                header_no,
                format!("unsupported METIS fmt `{fmt}` (vertex weights are not supported)"),
            ))
        }
    };

    let mut builder = GraphBuilder::new(n);
    let mut vertex = 0usize;
    for (line_no, line) in lines {
        if vertex >= n {
            if line.is_empty() {
                continue; // tolerate trailing blank lines
            }
            return Err(parse_err(line_no, format!("more than {n} adjacency lines")));
        }
        let mut fields = line.split_whitespace();
        while let Some(tok) = fields.next() {
            let neighbor1: usize = parse_field(tok, line_no, "neighbour id")?;
            if neighbor1 == 0 || neighbor1 > n {
                return Err(parse_err(
                    line_no,
                    format!("neighbour id {neighbor1} outside 1..={n}"),
                ));
            }
            let neighbor = neighbor1 - 1;
            let weight = if weighted {
                let tok = fields.next().ok_or_else(|| {
                    parse_err(line_no, "missing weight after neighbour id (fmt = 1)")
                })?;
                Some(parse_field::<f64>(tok, line_no, "edge weight")?)
            } else {
                None
            };
            if neighbor == vertex {
                return Err(parse_err(line_no, format!("self-loop on vertex {vertex}")));
            }
            // Each undirected edge appears in both rows; record it from the
            // smaller endpoint's row only, so weighted dedup-by-sum cannot
            // double it.
            if vertex < neighbor {
                match weight {
                    Some(w) => builder.add_weighted_edge(vertex, neighbor, w)?,
                    None => builder.add_edge(vertex, neighbor)?,
                }
            }
        }
        vertex += 1;
    }
    if vertex != n {
        return Err(parse_err(
            header_no,
            format!("expected {n} adjacency lines, found {vertex}"),
        ));
    }
    let graph = builder.build();
    if graph.num_edges() != m {
        return Err(parse_err(
            header_no,
            format!(
                "header declares {m} edges but the adjacency lists define {}",
                graph.num_edges()
            ),
        ));
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_without_weights_is_unweighted() {
        let g = parse_edge_list("# a path\n0 1\n1 2\n\n% trailing comment\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_weighted());
    }

    #[test]
    fn edge_list_weight_column_engages_the_lane() {
        let g = parse_edge_list("0 1 2.5\n1 2 0.5\n2 3\n").unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
        // Weight-less line in a weighted file defaults to 1.0.
        assert_eq!(g.edge_weight(2, 3), Some(1.0));
        assert_eq!(g.weighted_degree(1), 3.0);
    }

    #[test]
    fn edge_list_duplicates_sum_and_self_loops_drop() {
        let g = parse_edge_list("0 1 1.5\n1 0 1.0\n2 2 9.0\n1 2 1.0\n").unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn edge_list_fixture_mixes_comments_blank_lines_and_weights() {
        // The satellite fixture: full-line `#` and `%` comments, blank lines,
        // inline trailing comments on both weighted and unweighted lines —
        // all in one file.
        let fixture = "\
# weighted collaboration snippet
% exported 2026-08-08

0 1 2.5   # strong tie
1 2 0.5 % weak tie

2 3       # unweighted line in a weighted file -> 1.0
3 0
   % indented comment line
";
        let g = parse_edge_list(fixture).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
        assert_eq!(g.edge_weight(1, 2), Some(0.5));
        assert_eq!(g.edge_weight(2, 3), Some(1.0));
        assert_eq!(g.edge_weight(0, 3), Some(1.0));
        // Inline comments on an unweighted file keep it unweighted.
        let plain = parse_edge_list("0 1 # note\n1 2 % note\n").unwrap();
        assert!(!plain.is_weighted());
        assert_eq!(plain.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(matches!(
            parse_edge_list("0 x\n"),
            Err(GraphError::ParseError { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("0 1\n2\n"),
            Err(GraphError::ParseError { line: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("0 1 2.0 3.0\n"),
            Err(GraphError::ParseError { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("0 1 -2.0\n"),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_edge_list_is_the_empty_graph() {
        let g = parse_edge_list("# nothing\n").unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn metis_plain_triangle_with_pendant() {
        // The METIS manual's shape: n m, then 1-indexed rows.
        let text = "% tiny\n4 4\n2 3\n1 3\n1 2 4\n3\n";
        let g = parse_metis(text).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_weighted());
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(1, 2) && g.has_edge(2, 3));
    }

    #[test]
    fn metis_edge_weights_fmt_1() {
        let text = "3 2 1\n2 5.0\n1 5.0 3 2.0\n2 2.0\n";
        let g = parse_metis(text).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(5.0));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.weighted_degree(1), 7.0);
    }

    #[test]
    fn metis_rejects_bad_inputs() {
        // Unsupported vertex-weight fmt.
        assert!(matches!(
            parse_metis("2 1 11\n2 1.0\n1 1.0\n"),
            Err(GraphError::ParseError { .. })
        ));
        // Edge count mismatch with the header.
        assert!(matches!(
            parse_metis("3 5\n2\n1 3\n2\n"),
            Err(GraphError::ParseError { .. })
        ));
        // Wrong number of adjacency lines.
        assert!(matches!(
            parse_metis("3 2\n2\n1 3\n"),
            Err(GraphError::ParseError { .. })
        ));
        // Neighbour id out of the 1-indexed range.
        assert!(matches!(
            parse_metis("2 1\n2\n1 0\n"),
            Err(GraphError::ParseError { .. })
        ));
        // Self-loop.
        assert!(matches!(
            parse_metis("2 1\n1\n2\n"),
            Err(GraphError::ParseError { .. })
        ));
        // Missing weight in fmt-1 mode.
        assert!(matches!(
            parse_metis("2 1 1\n2\n1 1.0\n"),
            Err(GraphError::ParseError { .. })
        ));
    }

    #[test]
    fn metis_empty_rows_are_isolated_vertices() {
        // Vertex 3's adjacency row is blank: an isolated vertex.
        let g = parse_metis("3 1\n2\n1\n\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }
}
