//! Breadth-first search, BFS trees, connected components, balls and diameter.
//!
//! CDRW's distributed implementation uses a BFS tree rooted at the seed node
//! for all of its broadcast / convergecast aggregation (Algorithm 1, line 5),
//! and the theoretical analysis reasons about the balls `B_ℓ` of radius `ℓ`
//! around the seed (Lemma 1). This module provides the corresponding
//! sequential primitives.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{Graph, GraphError, VertexId};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: usize = usize::MAX;

/// Result of a breadth-first search: hop distances from the source.
///
/// Distances of vertices in other connected components are [`UNREACHABLE`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfsDistances {
    source: VertexId,
    distances: Vec<usize>,
}

impl BfsDistances {
    /// The source vertex of the search.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Hop distance from the source to `v`, or `None` if unreachable.
    pub fn distance(&self, v: VertexId) -> Option<usize> {
        match self.distances.get(v) {
            Some(&d) if d != UNREACHABLE => Some(d),
            _ => None,
        }
    }

    /// The raw distance vector (unreachable encoded as [`UNREACHABLE`]).
    pub fn as_slice(&self) -> &[usize] {
        &self.distances
    }

    /// Largest finite distance (the eccentricity of the source within its
    /// component). Returns 0 for a single-vertex component.
    pub fn eccentricity(&self) -> usize {
        self.distances
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Number of vertices reachable from the source (including itself).
    pub fn reachable_count(&self) -> usize {
        self.distances.iter().filter(|&&d| d != UNREACHABLE).count()
    }
}

/// Runs breadth-first search from `source` and returns the hop distances.
///
/// # Errors
///
/// Returns [`GraphError::VertexOutOfRange`] if `source >= n`.
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Result<BfsDistances, GraphError> {
    graph.check_vertex(source)?;
    let mut distances = vec![UNREACHABLE; graph.num_vertices()];
    let mut queue = VecDeque::new();
    distances[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = distances[u] + 1;
        for v in graph.neighbors(u) {
            if distances[v] == UNREACHABLE {
                distances[v] = next;
                queue.push_back(v);
            }
        }
    }
    Ok(BfsDistances { source, distances })
}

/// A BFS tree rooted at a source node, as built by the seed node of CDRW.
///
/// The tree records, for every reachable vertex, its parent, its depth and
/// its children; the CONGEST simulator uses the same structure for broadcast
/// and convergecast cost accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfsTree {
    root: VertexId,
    parent: Vec<Option<VertexId>>,
    depth_of: Vec<usize>,
    children: Vec<Vec<VertexId>>,
    depth: usize,
    reachable: usize,
}

impl BfsTree {
    /// Builds the BFS tree rooted at `root`, truncated at `max_depth` hops
    /// (pass `usize::MAX` for no truncation).
    ///
    /// CDRW builds a BFS tree of depth `O(log n)` (Algorithm 1, line 5), so
    /// truncation is a first-class parameter here.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `root >= n`.
    pub fn build(graph: &Graph, root: VertexId, max_depth: usize) -> Result<Self, GraphError> {
        graph.check_vertex(root)?;
        let n = graph.num_vertices();
        let mut parent = vec![None; n];
        let mut depth_of = vec![UNREACHABLE; n];
        let mut children = vec![Vec::new(); n];
        let mut queue = VecDeque::new();
        depth_of[root] = 0;
        queue.push_back(root);
        let mut deepest = 0usize;
        let mut reachable = 1usize;
        while let Some(u) = queue.pop_front() {
            let next = depth_of[u] + 1;
            if next > max_depth {
                continue;
            }
            for v in graph.neighbors(u) {
                if depth_of[v] == UNREACHABLE {
                    depth_of[v] = next;
                    parent[v] = Some(u);
                    children[u].push(v);
                    deepest = deepest.max(next);
                    reachable += 1;
                    queue.push_back(v);
                }
            }
        }
        Ok(BfsTree {
            root,
            parent,
            depth_of,
            children,
            depth: deepest,
            reachable,
        })
    }

    /// The root of the tree.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Depth (number of levels below the root) of the tree.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of vertices in the tree (reachable within the depth cap).
    pub fn num_tree_vertices(&self) -> usize {
        self.reachable
    }

    /// Parent of `v` in the tree, `None` for the root or untouched vertices.
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent.get(v).copied().flatten()
    }

    /// Depth of `v`, or `None` if `v` is not in the tree.
    pub fn depth_of(&self, v: VertexId) -> Option<usize> {
        match self.depth_of.get(v) {
            Some(&d) if d != UNREACHABLE => Some(d),
            _ => None,
        }
    }

    /// Children of `v` in the tree.
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        self.children.get(v).map(|c| c.as_slice()).unwrap_or(&[])
    }

    /// Whether `v` belongs to the tree.
    pub fn contains(&self, v: VertexId) -> bool {
        self.depth_of(v).is_some()
    }

    /// Vertices of the tree grouped by level, from the root downward.
    ///
    /// Level `i` of the returned vector holds the vertices at depth `i`. This
    /// ordering is what a convergecast (leaves to root) or broadcast (root to
    /// leaves) walks over, one level per CONGEST round.
    pub fn levels(&self) -> Vec<Vec<VertexId>> {
        let mut levels = vec![Vec::new(); self.depth + 1];
        for (v, &d) in self.depth_of.iter().enumerate() {
            if d != UNREACHABLE {
                levels[d].push(v);
            }
        }
        levels
    }
}

/// Computes the ball `B_ℓ(center)`: all vertices within hop distance `radius`.
///
/// This is the set appearing in Lemma 1 of the paper ("the largest mixing set
/// is the ball `B_{⌊ℓ/2⌋}`"). The returned vector is sorted.
///
/// # Errors
///
/// Returns [`GraphError::VertexOutOfRange`] if `center >= n`.
pub fn ball(graph: &Graph, center: VertexId, radius: usize) -> Result<Vec<VertexId>, GraphError> {
    let dist = bfs_distances(graph, center)?;
    let mut members: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| dist.distance(v).map(|d| d <= radius).unwrap_or(false))
        .collect();
    members.sort_unstable();
    Ok(members)
}

/// Connected components of the graph.
///
/// Returns `(component_id_per_vertex, number_of_components)`; component ids
/// are contiguous, assigned in order of discovery by increasing vertex id.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut component = vec![usize::MAX; n];
    let mut next_id = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        component[start] = next_id;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for v in graph.neighbors(u) {
                if component[v] == usize::MAX {
                    component[v] = next_id;
                    queue.push_back(v);
                }
            }
        }
        next_id += 1;
    }
    (component, next_id)
}

/// Whether the graph is connected. The empty graph is considered connected.
pub fn is_connected(graph: &Graph) -> bool {
    if graph.num_vertices() == 0 {
        return true;
    }
    connected_components(graph).1 == 1
}

/// Exact diameter of the graph via one BFS per vertex.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] when the graph is disconnected or
/// [`GraphError::EmptyGraph`] when it has no vertices.
pub fn diameter(graph: &Graph) -> Result<usize, GraphError> {
    if graph.num_vertices() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if !is_connected(graph) {
        return Err(GraphError::Disconnected);
    }
    let mut best = 0usize;
    for v in graph.vertices() {
        let ecc = bfs_distances(graph, v)?.eccentricity();
        best = best.max(ecc);
    }
    Ok(best)
}

/// Lower bound on the diameter via a double-sweep heuristic (two BFS runs).
///
/// Much faster than [`diameter`] and exact on trees; used by the experiment
/// harness when reporting graph statistics for large instances.
///
/// # Errors
///
/// Same conditions as [`diameter`].
pub fn diameter_double_sweep(graph: &Graph) -> Result<usize, GraphError> {
    if graph.num_vertices() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if !is_connected(graph) {
        return Err(GraphError::Disconnected);
    }
    let first = bfs_distances(graph, 0)?;
    let far = graph
        .vertices()
        .max_by_key(|&v| first.distance(v).unwrap_or(0))
        .unwrap_or(0);
    let second = bfs_distances(graph, far)?;
    Ok(second.eccentricity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    fn cycle_graph(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    fn star_graph(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (1..n).map(|i| (0, i))).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0).unwrap();
        assert_eq!(d.source(), 0);
        for v in 0..5 {
            assert_eq!(d.distance(v), Some(v));
        }
        assert_eq!(d.eccentricity(), 4);
        assert_eq!(d.reachable_count(), 5);
    }

    #[test]
    fn bfs_distances_unreachable_component() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0).unwrap();
        assert_eq!(d.distance(1), Some(1));
        assert_eq!(d.distance(2), None);
        assert_eq!(d.reachable_count(), 2);
    }

    #[test]
    fn bfs_source_out_of_range() {
        let g = path_graph(3);
        assert!(bfs_distances(&g, 5).is_err());
    }

    #[test]
    fn bfs_tree_on_star_has_depth_one() {
        let g = star_graph(6);
        let tree = BfsTree::build(&g, 0, usize::MAX).unwrap();
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.num_tree_vertices(), 6);
        assert_eq!(tree.children(0).len(), 5);
        for v in 1..6 {
            assert_eq!(tree.parent(v), Some(0));
            assert_eq!(tree.depth_of(v), Some(1));
            assert!(tree.children(v).is_empty());
        }
    }

    #[test]
    fn bfs_tree_depth_truncation() {
        let g = path_graph(10);
        let tree = BfsTree::build(&g, 0, 3).unwrap();
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.num_tree_vertices(), 4);
        assert!(tree.contains(3));
        assert!(!tree.contains(4));
        assert_eq!(tree.depth_of(9), None);
    }

    #[test]
    fn bfs_tree_levels_partition_tree_vertices() {
        let g = cycle_graph(8);
        let tree = BfsTree::build(&g, 0, usize::MAX).unwrap();
        let levels = tree.levels();
        let total: usize = levels.iter().map(|l| l.len()).sum();
        assert_eq!(total, tree.num_tree_vertices());
        assert_eq!(levels[0], vec![0]);
        // On an 8-cycle the farthest vertex is at distance 4.
        assert_eq!(tree.depth(), 4);
    }

    #[test]
    fn parents_point_one_level_up() {
        let g = cycle_graph(9);
        let tree = BfsTree::build(&g, 4, usize::MAX).unwrap();
        for v in g.vertices() {
            if v == 4 {
                assert_eq!(tree.parent(v), None);
                continue;
            }
            let p = tree.parent(v).unwrap();
            assert_eq!(tree.depth_of(v).unwrap(), tree.depth_of(p).unwrap() + 1);
            assert!(g.has_edge(v, p));
        }
    }

    #[test]
    fn ball_growth_on_path() {
        let g = path_graph(7);
        assert_eq!(ball(&g, 3, 0).unwrap(), vec![3]);
        assert_eq!(ball(&g, 3, 1).unwrap(), vec![2, 3, 4]);
        assert_eq!(ball(&g, 3, 2).unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(ball(&g, 3, 100).unwrap().len(), 7);
    }

    #[test]
    fn connected_components_counts() {
        let g = GraphBuilder::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected_by_convention() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(diameter(&Graph::empty(0)).is_err());
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&path_graph(6)).unwrap(), 5);
        assert_eq!(diameter(&cycle_graph(8)).unwrap(), 4);
        assert_eq!(diameter(&star_graph(9)).unwrap(), 2);
    }

    #[test]
    fn diameter_errors_on_disconnected() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), Err(GraphError::Disconnected));
        assert_eq!(diameter_double_sweep(&g), Err(GraphError::Disconnected));
    }

    #[test]
    fn double_sweep_is_exact_on_paths() {
        for n in 2..20 {
            let g = path_graph(n);
            assert_eq!(diameter_double_sweep(&g).unwrap(), n - 1);
        }
    }

    proptest! {
        /// The double-sweep lower bound never exceeds the exact diameter.
        #[test]
        fn double_sweep_is_a_lower_bound(edges in proptest::collection::vec((0usize..12, 0usize..12), 1..60)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let g = GraphBuilder::from_edges(12, clean).unwrap();
            prop_assume!(is_connected(&g));
            let exact = diameter(&g).unwrap();
            let sweep = diameter_double_sweep(&g).unwrap();
            prop_assert!(sweep <= exact);
        }

        /// BFS distances satisfy the triangle-ish property along edges:
        /// adjacent vertices differ by at most one hop.
        #[test]
        fn bfs_distance_lipschitz_along_edges(edges in proptest::collection::vec((0usize..15, 0usize..15), 1..80)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let g = GraphBuilder::from_edges(15, clean).unwrap();
            let d = bfs_distances(&g, 0).unwrap();
            for (u, v) in g.edges() {
                match (d.distance(u), d.distance(v)) {
                    (Some(a), Some(b)) => {
                        let diff = a.abs_diff(b);
                        prop_assert!(diff <= 1);
                    }
                    (None, None) => {}
                    // One endpoint reachable and the other not would violate
                    // BFS correctness.
                    _ => prop_assert!(false, "edge with exactly one reachable endpoint"),
                }
            }
        }

        /// Balls are monotone in the radius and eventually cover the
        /// component of the center.
        #[test]
        fn balls_are_monotone(edges in proptest::collection::vec((0usize..12, 0usize..12), 1..50)) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let g = GraphBuilder::from_edges(12, clean).unwrap();
            let mut previous = 0usize;
            for radius in 0..12 {
                let b = ball(&g, 0, radius).unwrap();
                prop_assert!(b.len() >= previous);
                previous = b.len();
            }
            let d = bfs_distances(&g, 0).unwrap();
            prop_assert_eq!(previous, d.reachable_count());
        }
    }
}
