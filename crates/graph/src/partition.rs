//! Vertex partitions (community assignments).
//!
//! Both the planted ground truth of an SBM graph and the output of a
//! community detection algorithm are represented as a [`Partition`]: a total
//! assignment of every vertex to exactly one community. Communities are
//! identified by contiguous integers `0..k`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{GraphError, VertexId};

/// Identifier of a community within a [`Partition`].
pub type CommunityId = usize;

/// A total assignment of vertices to communities.
///
/// # Example
///
/// ```
/// use cdrw_graph::Partition;
///
/// // Two communities: {0, 1, 2} and {3, 4}.
/// let p = Partition::from_assignment(vec![0, 0, 0, 1, 1])?;
/// assert_eq!(p.num_communities(), 2);
/// assert_eq!(p.community_of(4), Some(1));
/// assert_eq!(p.members(0), &[0, 1, 2]);
/// # Ok::<(), cdrw_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    assignment: Vec<CommunityId>,
    members: Vec<Vec<VertexId>>,
}

impl Partition {
    /// Builds a partition from a per-vertex community assignment.
    ///
    /// Community labels may be arbitrary `usize` values; they are re-indexed
    /// to contiguous ids `0..k` in order of first appearance.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if the assignment is empty.
    pub fn from_assignment(raw: Vec<usize>) -> Result<Self, GraphError> {
        if raw.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let mut relabel: BTreeMap<usize, CommunityId> = BTreeMap::new();
        let mut assignment = Vec::with_capacity(raw.len());
        for &label in &raw {
            let next = relabel.len();
            let id = *relabel.entry(label).or_insert(next);
            assignment.push(id);
        }
        let mut members = vec![Vec::new(); relabel.len()];
        for (v, &c) in assignment.iter().enumerate() {
            members[c].push(v);
        }
        Ok(Partition {
            assignment,
            members,
        })
    }

    /// Builds a partition from explicit community member lists.
    ///
    /// The lists must cover every vertex of `0..num_vertices` exactly once.
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if a member is `>= num_vertices`.
    /// * [`GraphError::InvalidParameter`] if a vertex is missing or repeated.
    pub fn from_communities(
        num_vertices: usize,
        communities: &[Vec<VertexId>],
    ) -> Result<Self, GraphError> {
        let mut assignment = vec![usize::MAX; num_vertices];
        for (c, community) in communities.iter().enumerate() {
            for &v in community {
                if v >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: v,
                        num_vertices,
                    });
                }
                if assignment[v] != usize::MAX {
                    return Err(GraphError::InvalidParameter {
                        name: "communities",
                        reason: format!("vertex {v} appears in more than one community"),
                    });
                }
                assignment[v] = c;
            }
        }
        if let Some(missing) = assignment.iter().position(|&c| c == usize::MAX) {
            return Err(GraphError::InvalidParameter {
                name: "communities",
                reason: format!("vertex {missing} is not assigned to any community"),
            });
        }
        Partition::from_assignment(assignment)
    }

    /// A single community containing every vertex.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] when `num_vertices == 0`.
    pub fn single_community(num_vertices: usize) -> Result<Self, GraphError> {
        Partition::from_assignment(vec![0; num_vertices])
    }

    /// Number of vertices covered by the partition.
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// Number of communities `k`.
    pub fn num_communities(&self) -> usize {
        self.members.len()
    }

    /// Community id of vertex `v`, if `v` is covered.
    pub fn community_of(&self, v: VertexId) -> Option<CommunityId> {
        self.assignment.get(v).copied()
    }

    /// Sorted members of community `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= num_communities()`.
    pub fn members(&self, c: CommunityId) -> &[VertexId] {
        &self.members[c]
    }

    /// Iterator over `(community_id, members)` pairs.
    pub fn communities(&self) -> impl Iterator<Item = (CommunityId, &[VertexId])> {
        self.members
            .iter()
            .enumerate()
            .map(|(c, m)| (c, m.as_slice()))
    }

    /// The per-vertex assignment slice.
    pub fn assignment(&self) -> &[CommunityId] {
        &self.assignment
    }

    /// Size of the largest community.
    pub fn max_community_size(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Size of the smallest community.
    pub fn min_community_size(&self) -> usize {
        self.members.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Whether two vertices belong to the same community.
    ///
    /// Out-of-range vertices are never in the same community.
    pub fn same_community(&self, u: VertexId, v: VertexId) -> bool {
        match (self.community_of(u), self.community_of(v)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// The sizes of all communities, indexed by community id.
    pub fn community_sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_assignment_relabels_contiguously() {
        let p = Partition::from_assignment(vec![7, 7, 3, 9, 3]).unwrap();
        assert_eq!(p.num_communities(), 3);
        assert_eq!(p.community_of(0), p.community_of(1));
        assert_eq!(p.community_of(2), p.community_of(4));
        assert_ne!(p.community_of(0), p.community_of(3));
        // First appearance order: 7 → 0, 3 → 1, 9 → 2.
        assert_eq!(p.assignment(), &[0, 0, 1, 2, 1]);
    }

    #[test]
    fn empty_assignment_is_rejected() {
        assert!(Partition::from_assignment(vec![]).is_err());
        assert!(Partition::single_community(0).is_err());
    }

    #[test]
    fn from_communities_roundtrip() {
        let p = Partition::from_communities(5, &[vec![0, 2, 4], vec![1, 3]]).unwrap();
        assert_eq!(p.members(0), &[0, 2, 4]);
        assert_eq!(p.members(1), &[1, 3]);
        assert_eq!(p.num_vertices(), 5);
        assert!(p.same_community(0, 4));
        assert!(!p.same_community(0, 1));
    }

    #[test]
    fn from_communities_detects_missing_vertex() {
        let err = Partition::from_communities(4, &[vec![0, 1], vec![3]]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
    }

    #[test]
    fn from_communities_detects_duplicates() {
        let err = Partition::from_communities(3, &[vec![0, 1], vec![1, 2]]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
    }

    #[test]
    fn from_communities_detects_out_of_range() {
        let err = Partition::from_communities(3, &[vec![0, 1, 2, 3]]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn single_community_covers_everything() {
        let p = Partition::single_community(8).unwrap();
        assert_eq!(p.num_communities(), 1);
        assert_eq!(p.members(0).len(), 8);
        assert_eq!(p.max_community_size(), 8);
        assert_eq!(p.min_community_size(), 8);
    }

    #[test]
    fn out_of_range_queries_are_none_or_false() {
        let p = Partition::single_community(3).unwrap();
        assert_eq!(p.community_of(5), None);
        assert!(!p.same_community(0, 5));
    }

    #[test]
    fn community_sizes_sum_to_vertex_count() {
        let p = Partition::from_assignment(vec![0, 1, 1, 2, 2, 2]).unwrap();
        assert_eq!(p.community_sizes(), vec![1, 2, 3]);
        assert_eq!(p.community_sizes().iter().sum::<usize>(), p.num_vertices());
    }

    proptest! {
        /// Round-trip: building from an assignment and reading the assignment
        /// back preserves the "same community" relation.
        #[test]
        fn same_community_relation_is_preserved(raw in proptest::collection::vec(0usize..5, 1..60)) {
            let p = Partition::from_assignment(raw.clone()).unwrap();
            for i in 0..raw.len() {
                for j in 0..raw.len() {
                    prop_assert_eq!(p.same_community(i, j), raw[i] == raw[j]);
                }
            }
        }

        /// Members lists are disjoint, sorted and cover all vertices.
        #[test]
        fn members_form_a_partition(raw in proptest::collection::vec(0usize..7, 1..80)) {
            let p = Partition::from_assignment(raw.clone()).unwrap();
            let mut seen = vec![false; raw.len()];
            for (_, members) in p.communities() {
                let mut previous: Option<usize> = None;
                for &v in members {
                    prop_assert!(!seen[v]);
                    seen[v] = true;
                    if let Some(prev) = previous {
                        prop_assert!(prev < v);
                    }
                    previous = Some(v);
                }
            }
            prop_assert!(seen.into_iter().all(|b| b));
        }
    }
}
