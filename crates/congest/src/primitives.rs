//! Cost formulas for the distributed primitives CDRW is composed of.
//!
//! The formulas below are the textbook CONGEST costs of each primitive; the
//! BFS flooding cost is additionally validated against the real node-program
//! simulation in [`crate::network`] (see the `costs_agree_with_simulation`
//! test). The CDRW runner charges these costs while executing the same
//! decision logic as the sequential algorithm, which keeps the detected
//! communities bit-identical to `cdrw-core` while producing the round and
//! message counts of the distributed execution.

use cdrw_graph::{traversal::BfsTree, Graph, VertexId};
use cdrw_walk::{WalkDistribution, WalkWorkspace};

use crate::CostAccount;

/// Cost of building a BFS tree of depth `≤ max_depth` from `root` by
/// flooding: `depth` rounds, and one message over every edge incident to a
/// reached vertex (each reached vertex announces once to all neighbours).
///
/// Returns the tree (for later aggregation costs) together with the cost.
///
/// # Errors
///
/// Propagates [`cdrw_graph::GraphError`] for an out-of-range root.
pub fn bfs_tree_cost(
    graph: &Graph,
    root: VertexId,
    max_depth: usize,
) -> Result<(BfsTree, CostAccount), cdrw_graph::GraphError> {
    let tree = BfsTree::build(graph, root, max_depth)?;
    let messages: u64 = graph
        .vertices()
        .filter(|&v| tree.contains(v))
        .map(|v| graph.degree(v) as u64)
        .sum();
    let cost = CostAccount {
        rounds: tree.depth() as u64,
        messages,
    };
    Ok((tree, cost))
}

/// Cost of one probability-flooding walk step (Algorithm 1, lines 9–11):
/// one round; every vertex currently holding probability mass sends to all of
/// its neighbours.
pub fn walk_step_cost(graph: &Graph, distribution: &WalkDistribution) -> CostAccount {
    let messages: u64 = graph
        .vertices()
        .filter(|&u| distribution.probability(u) > 0.0)
        .map(|u| graph.degree(u) as u64)
        .sum();
    CostAccount {
        rounds: 1,
        messages,
    }
}

/// Sparse-engine variant of [`walk_step_cost`]: reads the support directly
/// from a [`WalkWorkspace`] instead of scanning all `n` vertices, costing
/// `O(|support|)`. Charges the same messages (the degrees of the vertices
/// currently holding probability mass).
///
/// Support membership in the walk layer is maintained by the bit-packed
/// [`cdrw_walk::mask::BitMask`] (one bit per vertex); the support list this
/// reads is exactly the set of mask-set vertices, which a debug assertion
/// checks. The charged cost is layout-independent — the same vertices send
/// over the same edges whether membership is tracked in bits or in 8-byte
/// epoch stamps — so the CONGEST cost model is untouched by the bit-packed
/// rewrite (see PAPER_MAP deviation 12).
pub fn sparse_walk_step_cost(graph: &Graph, workspace: &WalkWorkspace) -> CostAccount {
    debug_assert_eq!(
        workspace.support_mask().count_ones(),
        workspace.support().len(),
        "support mask and support list diverged"
    );
    let mass = workspace.as_slice();
    let messages: u64 = workspace
        .support()
        .iter()
        .filter(|&&u| mass[u] > 0.0)
        .map(|&u| graph.degree(u) as u64)
        .sum();
    CostAccount {
        rounds: 1,
        messages,
    }
}

/// Cost of one broadcast from the root down the BFS tree (or one convergecast
/// from the leaves up): `depth` rounds, one message per tree edge.
pub fn tree_wave_cost(tree: &BfsTree) -> CostAccount {
    CostAccount {
        rounds: tree.depth() as u64,
        messages: tree.num_tree_vertices().saturating_sub(1) as u64,
    }
}

/// Cost of the binary-search aggregation that the source uses to obtain the
/// sum of the `|S|` smallest `x_u` values (Section III, "a better approach"):
/// the root repeatedly broadcasts a pivot and convergecasts the count of
/// nodes below it, needing `O(log n)` iterations; each iteration is one
/// broadcast plus one convergecast.
///
/// `iterations` is the number of pivot refinements actually performed; the
/// runner uses `⌈log₂ n⌉ + 1` which is what the real-valued binary search
/// over `n` distinct scores needs.
pub fn binary_search_cost(tree: &BfsTree, iterations: u64) -> CostAccount {
    let per_iteration = tree_wave_cost(tree) + tree_wave_cost(tree);
    CostAccount {
        rounds: per_iteration.rounds * iterations,
        messages: per_iteration.messages * iterations,
    }
}

/// Number of binary-search iterations charged for a graph of `n` vertices.
pub fn binary_search_iterations(n: usize) -> u64 {
    (n.max(2) as f64).log2().ceil() as u64 + 1
}

/// Cost of announcing the final membership of the detected community (one
/// broadcast of the indicator down the tree, Algorithm 1, line 17).
pub fn membership_broadcast_cost(tree: &BfsTree) -> CostAccount {
    tree_wave_cost(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{prepare_bfs_programs, Simulator};
    use cdrw_graph::GraphBuilder;
    use cdrw_walk::WalkOperator;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_cost_matches_tree_shape() {
        let g = path(8);
        let (tree, cost) = bfs_tree_cost(&g, 0, usize::MAX).unwrap();
        assert_eq!(tree.depth(), 7);
        assert_eq!(cost.rounds, 7);
        // Every vertex is reached, so messages = 2m = 14.
        assert_eq!(cost.messages, 14);
    }

    #[test]
    fn bfs_cost_respects_depth_cap() {
        let g = path(10);
        let (tree, cost) = bfs_tree_cost(&g, 0, 3).unwrap();
        assert_eq!(tree.depth(), 3);
        assert_eq!(cost.rounds, 3);
        // Reached vertices are 0..=3 with degrees 1,2,2,2.
        assert_eq!(cost.messages, 7);
    }

    #[test]
    fn costs_agree_with_simulation() {
        // The analytic flooding cost must equal the message count measured by
        // the real node-program simulation (on a connected graph where the
        // whole graph is reached).
        let g = cdrw_gen::generate_gnp(&cdrw_gen::GnpParams::new(60, 0.12).unwrap(), 9).unwrap();
        let (tree, cost) = bfs_tree_cost(&g, 0, usize::MAX).unwrap();
        let mut programs = prepare_bfs_programs(&g, 0);
        let outcome = Simulator::new(&g).run(&mut programs, 500).unwrap();
        assert!(outcome.quiescent);
        assert_eq!(cost.messages, outcome.messages);
        // The simulation needs up to two extra rounds for the final
        // deliveries to quiesce; the analytic count is the tree depth.
        assert!(outcome.rounds >= tree.depth() as u64);
        assert!(outcome.rounds <= tree.depth() as u64 + 2);
    }

    #[test]
    fn walk_step_cost_counts_only_support_degrees() {
        let g = path(6);
        let p0 = WalkDistribution::point_mass(6, 0).unwrap();
        let cost0 = walk_step_cost(&g, &p0);
        assert_eq!(cost0.rounds, 1);
        assert_eq!(cost0.messages, 1); // vertex 0 has degree 1
        let p1 = WalkOperator::new(&g).step(&p0);
        let cost1 = walk_step_cost(&g, &p1);
        assert_eq!(cost1.messages, 2); // vertex 1 has degree 2
    }

    #[test]
    fn tree_wave_and_binary_search_costs() {
        let g = path(9);
        let (tree, _) = bfs_tree_cost(&g, 0, usize::MAX).unwrap();
        let wave = tree_wave_cost(&tree);
        assert_eq!(wave.rounds, 8);
        assert_eq!(wave.messages, 8);
        let bs = binary_search_cost(&tree, 4);
        assert_eq!(bs.rounds, 4 * 16);
        assert_eq!(bs.messages, 4 * 16);
        assert_eq!(membership_broadcast_cost(&tree), wave);
    }

    #[test]
    fn binary_search_iterations_grow_logarithmically() {
        assert_eq!(binary_search_iterations(2), 2);
        assert_eq!(binary_search_iterations(1024), 11);
        let small = binary_search_iterations(1 << 8);
        let large = binary_search_iterations(1 << 16);
        assert_eq!(large - small, 8);
    }
}
