//! Round and message accounting.

use serde::{Deserialize, Serialize};

/// Accumulated cost of a CONGEST execution (or a fragment of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostAccount {
    /// Number of synchronous rounds.
    pub rounds: u64,
    /// Total number of `O(log n)`-bit messages sent.
    pub messages: u64,
}

impl CostAccount {
    /// A zeroed account.
    pub fn new() -> Self {
        CostAccount::default()
    }

    /// Charges `rounds` rounds and `messages` messages.
    pub fn charge(&mut self, rounds: u64, messages: u64) {
        self.rounds += rounds;
        self.messages += messages;
    }

    /// Adds another account onto this one (sequential composition).
    pub fn absorb(&mut self, other: CostAccount) {
        self.rounds += other.rounds;
        self.messages += other.messages;
    }

    /// The cost of running `self` and `other` concurrently: rounds take the
    /// maximum, messages add up (parallel composition).
    pub fn parallel_with(self, other: CostAccount) -> CostAccount {
        CostAccount {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
        }
    }
}

impl std::ops::Add for CostAccount {
    type Output = CostAccount;

    fn add(self, rhs: CostAccount) -> CostAccount {
        CostAccount {
            rounds: self.rounds + rhs.rounds,
            messages: self.messages + rhs.messages,
        }
    }
}

impl std::iter::Sum for CostAccount {
    fn sum<I: Iterator<Item = CostAccount>>(iter: I) -> Self {
        iter.fold(CostAccount::new(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_absorb_accumulate() {
        let mut account = CostAccount::new();
        account.charge(3, 10);
        account.charge(2, 5);
        assert_eq!(account.rounds, 5);
        assert_eq!(account.messages, 15);
        let mut other = CostAccount::new();
        other.charge(1, 1);
        other.absorb(account);
        assert_eq!(other.rounds, 6);
        assert_eq!(other.messages, 16);
    }

    #[test]
    fn add_and_sum() {
        let a = CostAccount {
            rounds: 2,
            messages: 7,
        };
        let b = CostAccount {
            rounds: 3,
            messages: 1,
        };
        assert_eq!(
            a + b,
            CostAccount {
                rounds: 5,
                messages: 8
            }
        );
        let total: CostAccount = [a, b, a].into_iter().sum();
        assert_eq!(
            total,
            CostAccount {
                rounds: 7,
                messages: 15
            }
        );
    }

    #[test]
    fn parallel_composition_takes_max_rounds() {
        let a = CostAccount {
            rounds: 10,
            messages: 100,
        };
        let b = CostAccount {
            rounds: 4,
            messages: 50,
        };
        let c = a.parallel_with(b);
        assert_eq!(c.rounds, 10);
        assert_eq!(c.messages, 150);
    }
}
