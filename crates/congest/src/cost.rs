//! Round and message accounting — the CONGEST cost model.
//!
//! ## What counts as a round, and what counts as a message
//!
//! In the CONGEST model the input graph *is* the communication network.
//! Computation proceeds in synchronous rounds; in one round every vertex may
//! send one message of `O(log n)` bits to each of its neighbours. Two costs
//! are tracked ([`CostAccount`]):
//!
//! * **rounds** — the time complexity: how many synchronous rounds elapse.
//!   Independent vertices acting in the same round cost *one* round.
//! * **messages** — the communication complexity: every (sender, edge,
//!   round) triple is one message, regardless of content, as long as the
//!   payload fits in `O(log n)` bits. A vertex flooding its state to `d(u)`
//!   neighbours therefore costs `d(u)` messages in that round. Values that
//!   need more bits (e.g. a probability) are assumed to be truncated to
//!   `O(log n)`-bit precision, as the paper does.
//!
//! The per-primitive formulas live in [`crate::primitives`]; they are the
//! textbook costs, and the BFS/broadcast ones are cross-checked against the
//! real message-passing simulator in [`crate::network`]
//! (`costs_agree_with_simulation`).
//!
//! ## Why costs are read off the sparse support
//!
//! The dominant cost of CDRW is the walk step (Algorithm 1, lines 9–11):
//! each vertex `u` holding probability mass `p(u) > 0` splits it among its
//! neighbours, which is one round and `Σ_{u : p(u) > 0} d(u)` messages — a
//! vertex with no mass has nothing to send and is silent. That set of
//! mass-holding vertices is *exactly* the walk engine's support
//! (`cdrw_walk::WalkWorkspace::support`), which the sparse engine maintains
//! as an explicit sorted list. So the runner charges
//! [`crate::primitives::sparse_walk_step_cost`] by summing degrees over the
//! support in `O(|support|)` — no `O(n)` scan, and the same number the dense
//! formula ([`crate::primitives::walk_step_cost`]) produces. This mirrors
//! the analysis: the paper's `Õ(m)`-messages bound comes precisely from the
//! support staying inside the community for the first `O(log n)` steps.
//!
//! ## Criterion-dependent costs
//!
//! The mixing criterion (`cdrw_core::CdrwConfig::criterion`) changes what a
//! size check costs. Every criterion needs one binary-search aggregation
//! through the BFS tree per candidate size (locate + sum the `|S|` selected
//! scores, [`crate::primitives::binary_search_cost`]). Criteria that
//! calibrate against the retained mass `p(S)` — renormalised and adaptive —
//! need one extra broadcast (the candidate indicator) plus one convergecast
//! (the mass sum) per check: two [`crate::primitives::tree_wave_cost`]s.
//! The lazy criterion instead stretches the number of walk steps (its walk
//! mixes `1/(1−α)` times slower) without changing the per-step cost; the
//! mass a lazy vertex keeps for itself travels over no edge and costs no
//! message. `cdrw_walk::MixingCriterion::aggregations_per_size_check`
//! records the aggregation count per criterion, and the
//! `mass_calibrated_criteria_charge_the_extra_convergecast` test pins the
//! exact deltas.
//!
//! ## Ensemble costs
//!
//! Under `cdrw_core::EnsemblePolicy::Ensemble`, each detection runs extra
//! follow-up walks on the *same* BFS tree (they start at members of the
//! base detection, which lie within the tree's `O(log n)` depth). The
//! charging is walk-count-scaled: every walk pays its own flooding steps
//! and sweep aggregations plus one membership broadcast — the vote round
//! after which every vertex knows its own tally locally. Selecting the
//! follow-up seeds costs one affinity convergecast plus one broadcast, and
//! announcing the effective quorum one more broadcast; membership in the
//! consensus is then a local decision, so the consensus itself is free.
//! The `ensemble_cost_delta_is_exact_and_walk_count_scaled` test pins
//! these deltas exactly.

use serde::{Deserialize, Serialize};

/// Accumulated cost of a CONGEST execution (or a fragment of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostAccount {
    /// Number of synchronous rounds.
    pub rounds: u64,
    /// Total number of `O(log n)`-bit messages sent.
    pub messages: u64,
}

impl CostAccount {
    /// A zeroed account.
    pub fn new() -> Self {
        CostAccount::default()
    }

    /// Charges `rounds` rounds and `messages` messages.
    pub fn charge(&mut self, rounds: u64, messages: u64) {
        self.rounds += rounds;
        self.messages += messages;
    }

    /// Adds another account onto this one (sequential composition).
    pub fn absorb(&mut self, other: CostAccount) {
        self.rounds += other.rounds;
        self.messages += other.messages;
    }

    /// The cost of running `self` and `other` concurrently: rounds take the
    /// maximum, messages add up (parallel composition).
    pub fn parallel_with(self, other: CostAccount) -> CostAccount {
        CostAccount {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
        }
    }
}

impl std::ops::Add for CostAccount {
    type Output = CostAccount;

    fn add(self, rhs: CostAccount) -> CostAccount {
        CostAccount {
            rounds: self.rounds + rhs.rounds,
            messages: self.messages + rhs.messages,
        }
    }
}

impl std::iter::Sum for CostAccount {
    fn sum<I: Iterator<Item = CostAccount>>(iter: I) -> Self {
        iter.fold(CostAccount::new(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_absorb_accumulate() {
        let mut account = CostAccount::new();
        account.charge(3, 10);
        account.charge(2, 5);
        assert_eq!(account.rounds, 5);
        assert_eq!(account.messages, 15);
        let mut other = CostAccount::new();
        other.charge(1, 1);
        other.absorb(account);
        assert_eq!(other.rounds, 6);
        assert_eq!(other.messages, 16);
    }

    #[test]
    fn add_and_sum() {
        let a = CostAccount {
            rounds: 2,
            messages: 7,
        };
        let b = CostAccount {
            rounds: 3,
            messages: 1,
        };
        assert_eq!(
            a + b,
            CostAccount {
                rounds: 5,
                messages: 8
            }
        );
        let total: CostAccount = [a, b, a].into_iter().sum();
        assert_eq!(
            total,
            CostAccount {
                rounds: 7,
                messages: 15
            }
        );
    }

    #[test]
    fn parallel_composition_takes_max_rounds() {
        let a = CostAccount {
            rounds: 10,
            messages: 100,
        };
        let b = CostAccount {
            rounds: 4,
            messages: 50,
        };
        let c = a.parallel_with(b);
        assert_eq!(c.rounds, 10);
        assert_eq!(c.messages, 150);
    }
}
