//! # cdrw-congest
//!
//! CONGEST-model simulation of CDRW with round and message accounting,
//! reproducing the complexity analysis of Section III (Theorems 5 and 6) of
//! *Efficient Distributed Community Detection in the Stochastic Block Model*
//! (ICDCS 2019).
//!
//! The CONGEST model: the graph *is* the network; nodes compute in
//! synchronous rounds and may send one `O(log n)`-bit message to each
//! neighbour per round. The cost of an algorithm is its number of rounds
//! (time complexity) and the total number of messages (message complexity).
//!
//! This crate has two layers:
//!
//! * [`network`] — a genuine synchronous message-passing simulator
//!   ([`network::Simulator`]) where each vertex runs a [`network::NodeProgram`]
//!   state machine. The distributed primitives CDRW is built from — flooding
//!   BFS-tree construction, broadcast and convergecast over the tree — are
//!   implemented as node programs and verified (rounds = tree depth,
//!   messages = what the textbook analysis predicts).
//! * the runner ([`CongestCdrw`]) — the distributed CDRW driver. It executes the same decision
//!   logic as `cdrw-core` (so the detected communities are *identical* to the
//!   sequential algorithm — an integration test asserts this) while charging
//!   every operation the cost the CONGEST execution would incur, using the
//!   cost model validated by the `network` layer:
//!
//!   | operation | rounds | messages |
//!   |---|---|---|
//!   | BFS tree of depth `D` | `D` | `Σ_{v∈tree} d(v)` |
//!   | one walk step (flood `p_{ℓ−1}/d`) | 1 | `Σ_{u: p(u)>0} d(u)` |
//!   | broadcast / convergecast on the tree | `D` | `#tree nodes − 1` |
//!   | binary-search aggregation of the `|S|` smallest `x_u` | `O(D·log n)` | `O((#tree nodes)·log n)` |
//!
//! The resulting round counts reproduce the `O(log⁴ n)` shape of Theorem 5
//! and the message counts the `Õ(n²(p + q(r−1))/r)` shape — the
//! `congest_complexity` bench sweeps `n` and prints both next to the
//! theoretical curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
pub mod network;
pub mod primitives;
mod runner;

pub use cost::CostAccount;
pub use runner::{CommunityCost, CongestCdrw, CongestConfig, CongestReport};
