//! The distributed CDRW runner: sequential decisions, CONGEST costs.

use cdrw_core::assembly::AssemblyReport;
use cdrw_core::DetectionResult;
use cdrw_core::{
    assembly, shuffled_seed_pool, AssemblyPolicy, Cdrw, CdrwConfig, CdrwError, CommunityDetection,
    GrowthTracker,
};
use cdrw_graph::traversal::BfsTree;
use cdrw_graph::{Graph, VertexId};
use cdrw_walk::evidence::{community_scale_vote, select_interior_seeds, WalkEvidence};
use cdrw_walk::{WalkBatch, WalkEngine, WalkWorkspace};
use serde::{Deserialize, Serialize};

use crate::primitives::{
    bfs_tree_cost, binary_search_cost, binary_search_iterations, membership_broadcast_cost,
    sparse_walk_step_cost, tree_wave_cost,
};
use crate::CostAccount;

/// Configuration of the CONGEST execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestConfig {
    /// The CDRW algorithm configuration (identical to the sequential one).
    pub algorithm: CdrwConfig,
    /// Depth cap of the BFS tree built from each seed, as a multiple of
    /// `ln n` (Algorithm 1 builds a tree of depth `O(log n)`).
    pub bfs_depth_factor: f64,
    /// Per-message bandwidth in bits (the `O(log n)` of the model); only used
    /// to report total communication volume in bits.
    pub bandwidth_bits: u32,
}

impl CongestConfig {
    /// Paper-faithful defaults on top of a given algorithm configuration.
    pub fn new(algorithm: CdrwConfig) -> Self {
        CongestConfig {
            algorithm,
            bfs_depth_factor: 3.0,
            bandwidth_bits: 32,
        }
    }

    fn bfs_depth(&self, n: usize) -> usize {
        ((self.bfs_depth_factor * (n.max(2) as f64).ln()).ceil() as usize).max(2)
    }
}

impl Default for CongestConfig {
    fn default() -> Self {
        CongestConfig::new(CdrwConfig::default())
    }
}

/// Cost of detecting a single community in the CONGEST model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityCost {
    /// The seed node of this detection.
    pub seed: VertexId,
    /// Size of the detected community.
    pub community_size: usize,
    /// Number of walks this detection ran (1 for
    /// [`cdrw_core::EnsemblePolicy::Single`], the ensemble walk count
    /// otherwise — rounds and messages scale with it).
    pub walks: usize,
    /// Number of walk steps performed (summed over all walks).
    pub walk_steps: usize,
    /// Number of candidate-size checks across all steps of all walks.
    pub size_checks: usize,
    /// Rounds and messages charged to this detection.
    pub cost: CostAccount,
    /// The probability-flooding share of [`CommunityCost::cost`]: one round
    /// per walk step, `Σ_{u ∈ support, p(u) > 0} d(u)` messages per step
    /// ([`sparse_walk_step_cost`]). This is the part of the model a real
    /// sharded execution sends as actual messages — the k-machine engine's
    /// measured per-round counts are conformance-checked against exactly
    /// this account, per detection (coordination waves stay modelled-only).
    pub flood: CostAccount,
}

/// Cost of the global assembly phase
/// ([`cdrw_core::AssemblyPolicy::Pooled`]): the claim convergecasts, the
/// coordination waves of the reconciliation, the cross-detection re-seed
/// walks and the absorption rounds, all charged on one global BFS tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssemblyCost {
    /// What the assembly did (groups, re-seed walks, contested votes,
    /// absorption) — identical to the sequential driver's report.
    pub report: AssemblyReport,
    /// Walk steps performed by the cross-detection re-seed walks.
    pub walk_steps: usize,
    /// Candidate-size checks performed by the re-seed walks.
    pub size_checks: usize,
    /// Rounds and messages charged to the assembly phase.
    pub cost: CostAccount,
    /// The probability-flooding share of [`AssemblyCost::cost`] (the re-seed
    /// walks' steps), separated out for the same conformance diffing as
    /// [`CommunityCost::flood`].
    pub flood: CostAccount,
}

/// Full report of a CONGEST CDRW execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestReport {
    /// Per-community costs, in detection order.
    pub per_community: Vec<CommunityCost>,
    /// Cost of the global assembly phase, present only under
    /// [`cdrw_core::AssemblyPolicy::Pooled`].
    pub assembly: Option<AssemblyCost>,
    /// Total cost (sequential composition across communities plus the
    /// assembly phase, as in Theorem 6's `O(r log⁴ n)` statement).
    pub total: CostAccount,
    /// Total communication volume in bits (`messages · bandwidth_bits`).
    pub total_bits: u64,
    /// The detection result (identical to what the sequential algorithm
    /// produces for the same configuration and seed).
    pub result: DetectionResult,
}

impl CongestReport {
    /// Average rounds per detected community.
    pub fn rounds_per_community(&self) -> f64 {
        if self.per_community.is_empty() {
            0.0
        } else {
            self.total.rounds as f64 / self.per_community.len() as f64
        }
    }

    /// Average messages per detected community.
    pub fn messages_per_community(&self) -> f64 {
        if self.per_community.is_empty() {
            0.0
        } else {
            self.total.messages as f64 / self.per_community.len() as f64
        }
    }
}

/// A charged walk's outcome: the detected members, the mixing margin of the
/// returned set, and — when tracking was requested — the last
/// community-scale mixing set the walk passed through.
type ChargedWalkOutcome = (Vec<VertexId>, f64, Option<(Vec<VertexId>, f64)>);

/// Distributed CDRW in the CONGEST model.
///
/// Executes exactly the decision logic of [`cdrw_core::Cdrw`] (the detected
/// communities are identical for the same configuration) and charges the
/// CONGEST cost of every step using the primitives of [`crate::primitives`].
#[derive(Debug, Clone)]
pub struct CongestCdrw {
    config: CongestConfig,
}

impl CongestCdrw {
    /// Creates a runner with the given configuration.
    pub fn new(config: CongestConfig) -> Self {
        CongestCdrw { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CongestConfig {
        &self.config
    }

    /// Detects the community of a single seed, returning the detection and
    /// its CONGEST cost.
    ///
    /// # Errors
    ///
    /// Same conditions as [`cdrw_core::Cdrw::detect_community`].
    pub fn detect_community(
        &self,
        graph: &Graph,
        seed: VertexId,
    ) -> Result<(CommunityDetection, CommunityCost), CdrwError> {
        let algorithm = &self.config.algorithm;
        algorithm.validate()?;
        if graph.num_vertices() == 0 {
            return Err(CdrwError::EmptyGraph);
        }
        if graph.num_edges() == 0 {
            return Err(CdrwError::NoEdges);
        }
        graph.check_vertex(seed)?;
        let delta = algorithm.resolve_delta(graph)?;
        let engine = WalkEngine::lazy(graph, algorithm.criterion.laziness());
        let mut workspace = engine.workspace();
        let mut batch = WalkBatch::for_graph(graph);
        let mut evidence = WalkEvidence::for_graph_if(algorithm.ensemble.is_ensemble(), graph);
        self.detect_with_delta(
            &engine,
            &mut workspace,
            &mut batch,
            &mut evidence,
            seed,
            delta,
            false,
        )
    }

    /// One walk of Algorithm 1's inner loop with CONGEST charging: flooding
    /// rounds per step, one binary-search aggregation per size check (plus
    /// the mass convergecast pair for calibrated criteria). The stopping
    /// decisions run through the same [`GrowthTracker`] as the sequential
    /// `Cdrw`, including the `stop_floor` the ensemble path raises for
    /// follow-up walks and the `bounded_cap` tracking of the last
    /// community-scale mixing set, so the detected sets stay identical.
    #[allow(clippy::too_many_arguments)]
    fn charged_walk(
        &self,
        engine: &WalkEngine<'_>,
        workspace: &mut WalkWorkspace,
        tree: &BfsTree,
        seed: VertexId,
        delta: f64,
        stop_floor: usize,
        bounded_cap: Option<usize>,
        cost: &mut CostAccount,
        flood: &mut CostAccount,
        walk_steps: &mut usize,
        size_checks: &mut usize,
    ) -> Result<ChargedWalkOutcome, CdrwError> {
        let algorithm = &self.config.algorithm;
        let graph = engine.graph();
        let n = graph.num_vertices();
        let mixing_config = algorithm.local_mixing_config(n);
        let max_length = algorithm.max_walk_length(n);
        let bs_iterations = binary_search_iterations(n);
        // The renormalised and adaptive criteria need an extra convergecast
        // per size check (the retained mass p(S) the scores are calibrated
        // with); strict and lazy need only the score aggregation itself.
        let aggregations_per_check = algorithm.criterion.aggregations_per_size_check();

        workspace.load_point_mass(seed)?;
        let mut tracker = GrowthTracker::new(stop_floor, delta, bounded_cap);
        for _ in 1..=max_length {
            // Lines 9–11: one round of probability flooding. The message
            // count reads the support straight off the workspace.
            let step_cost = sparse_walk_step_cost(graph, workspace);
            cost.absorb(step_cost);
            flood.absorb(step_cost);
            engine.step(workspace);
            *walk_steps += 1;

            // Lines 12–17: the candidate-size sweep. Each size requires one
            // binary-search aggregation through the BFS tree; criteria that
            // calibrate against the retained mass p(S) additionally need one
            // broadcast (the candidate indicator) plus one convergecast (the
            // mass sum) per check.
            let outcome = engine.sweep(workspace, &mixing_config)?;
            *size_checks += outcome.sizes_checked();
            for _ in 0..outcome.sizes_checked() {
                cost.absorb(binary_search_cost(tree, bs_iterations));
                for _ in 1..aggregations_per_check {
                    cost.absorb(tree_wave_cost(tree));
                    cost.absorb(tree_wave_cost(tree));
                }
            }
            if tracker.observe_outcome(graph, seed, outcome, mixing_config.threshold) {
                break;
            }
        }
        Ok(tracker.conclude(graph, seed))
    }

    /// The batched counterpart of [`CongestCdrw::charged_walk`]: one walk per
    /// seed, stepped in lockstep through the [`WalkBatch`] so the CSR is
    /// traversed once per step for all of them. Every charge a solo walk
    /// would absorb is absorbed per lane — the per-step flooding cost reads
    /// each lane's own support before the step, sweeps are charged per lane,
    /// and a stopped lane charges nothing further — so the totals are
    /// identical to walking the seeds one at a time (batching is a
    /// physical-machine optimisation, not a message-complexity change).
    #[allow(clippy::too_many_arguments)]
    fn charged_walks_batched(
        &self,
        engine: &WalkEngine<'_>,
        batch: &mut WalkBatch,
        tree: &BfsTree,
        seeds: &[VertexId],
        delta: f64,
        stop_floor: usize,
        bounded_cap: usize,
        cost: &mut CostAccount,
        flood: &mut CostAccount,
        walk_steps: &mut usize,
        size_checks: &mut usize,
    ) -> Result<Vec<ChargedWalkOutcome>, CdrwError> {
        let algorithm = &self.config.algorithm;
        let graph = engine.graph();
        let n = graph.num_vertices();
        let mixing_config = algorithm.local_mixing_config(n);
        let max_length = algorithm.max_walk_length(n);
        let bs_iterations = binary_search_iterations(n);
        let aggregations_per_check = algorithm.criterion.aggregations_per_size_check();

        batch.load_point_masses(seeds)?;
        let mut trackers: Vec<GrowthTracker> = seeds
            .iter()
            .map(|_| GrowthTracker::new(stop_floor, delta, Some(bounded_cap)))
            .collect();
        for _ in 1..=max_length {
            if batch.active_lanes() == 0 {
                break;
            }
            // Each active lane's flooding round is charged off its own
            // support, exactly as its solo walk would be.
            for lane in 0..seeds.len() {
                if batch.is_active(lane) {
                    let step_cost = sparse_walk_step_cost(graph, batch.lane(lane));
                    cost.absorb(step_cost);
                    flood.absorb(step_cost);
                    *walk_steps += 1;
                }
            }
            engine.step_batch(batch);
            for (lane, &walk_seed) in seeds.iter().enumerate() {
                if !batch.is_active(lane) {
                    continue;
                }
                let outcome = engine.sweep(batch.lane_mut(lane), &mixing_config)?;
                *size_checks += outcome.sizes_checked();
                for _ in 0..outcome.sizes_checked() {
                    cost.absorb(binary_search_cost(tree, bs_iterations));
                    for _ in 1..aggregations_per_check {
                        cost.absorb(tree_wave_cost(tree));
                        cost.absorb(tree_wave_cost(tree));
                    }
                }
                if trackers[lane].observe_outcome(
                    graph,
                    walk_seed,
                    outcome,
                    mixing_config.threshold,
                ) {
                    batch.set_active(lane, false);
                }
            }
        }
        Ok(trackers
            .into_iter()
            .zip(seeds)
            .map(|(tracker, &walk_seed)| tracker.conclude(graph, walk_seed))
            .collect())
    }

    #[allow(clippy::too_many_arguments)]
    fn detect_with_delta(
        &self,
        engine: &WalkEngine<'_>,
        workspace: &mut WalkWorkspace,
        batch: &mut WalkBatch,
        evidence: &mut WalkEvidence,
        seed: VertexId,
        delta: f64,
        record_claims: bool,
    ) -> Result<(CommunityDetection, CommunityCost), CdrwError> {
        let algorithm = &self.config.algorithm;
        let graph = engine.graph();
        let n = graph.num_vertices();
        let mut cost = CostAccount::new();
        let mut flood = CostAccount::new();
        let mut walk_steps = 0usize;
        let mut size_checks = 0usize;

        // A zero-degree seed is its own community and needs no communication
        // at all — mirrors `cdrw_core::Cdrw`'s short-circuit exactly.
        if graph.degree(seed) == 0 {
            let detection = CommunityDetection {
                seed,
                members: vec![seed],
                trace: Default::default(),
            };
            if record_claims {
                evidence.begin();
                evidence.record_walk(&detection.members, 0.0)?;
            }
            let community_cost = CommunityCost {
                seed,
                community_size: 1,
                walks: 1,
                walk_steps: 0,
                size_checks: 0,
                cost,
                flood,
            };
            return Ok((detection, community_cost));
        }

        // Algorithm 1, line 5: BFS tree of depth O(log n) from the seed.
        let (tree, bfs_cost) = bfs_tree_cost(graph, seed, self.config.bfs_depth(n))?;
        cost.absorb(bfs_cost);

        let base_floor = algorithm.min_stop_size(n);
        let (mut members, base_margin, _) = self.charged_walk(
            engine,
            workspace,
            &tree,
            seed,
            delta,
            base_floor,
            None,
            &mut cost,
            &mut flood,
            &mut walk_steps,
            &mut size_checks,
        )?;
        // Line 17: announce membership of the final community (for an
        // ensemble, of the base walk's set — the first round of votes).
        cost.absorb(membership_broadcast_cost(&tree));
        let mut walks = 1usize;

        if record_claims || algorithm.ensemble.is_ensemble() {
            // The base walk's claim opens the accumulator epoch — for the
            // ensemble's vote tally, for the pooled assembly's claims, or
            // both. No extra communication: the membership broadcast above
            // already carried the set.
            evidence.begin();
            evidence.record_walk(&members, base_margin)?;
        }
        if algorithm.ensemble.is_ensemble() {
            // Section V's parallel extension, turned inward: the follow-up
            // walks are extra CDRW walks on the same BFS tree, run in
            // lockstep through the walk batch (identical decisions and
            // charges to walking them one at a time). Selecting their seeds
            // costs one affinity convergecast up the tree plus one broadcast
            // announcing the picks.
            cost.absorb(tree_wave_cost(&tree));
            cost.absorb(tree_wave_cost(&tree));
            let followups = select_interior_seeds(
                graph,
                workspace,
                &members,
                seed,
                algorithm.ensemble.walks() - 1,
            );
            let escalated_floor = base_floor.max(members.len() + 1);
            let answers = self.charged_walks_batched(
                engine,
                batch,
                &tree,
                &followups,
                delta,
                escalated_floor,
                n / 2,
                &mut cost,
                &mut flood,
                &mut walk_steps,
                &mut size_checks,
            )?;
            for (set, margin, bounded) in answers {
                // Each follow-up walk announces its voted set over the tree —
                // the vote round that lets every vertex tally its own count
                // locally.
                cost.absorb(membership_broadcast_cost(&tree));
                // The voting rule is shared with the sequential ensemble
                // (`community_scale_vote`), so the two drivers cannot drift.
                if let Some((set, margin)) = community_scale_vote(set, margin, bounded, n / 2) {
                    evidence.record_walk(&set, margin)?;
                }
                walks += 1;
            }
            // The effective quorum is announced down the tree; each vertex
            // then decides membership from its local tally, so the consensus
            // itself costs no further communication.
            cost.absorb(tree_wave_cost(&tree));
            let quorum = algorithm.ensemble.quorum().min(evidence.walks_recorded());
            members = evidence.consensus_with(quorum as u32, &members);
        }

        let detection = CommunityDetection {
            seed,
            members,
            trace: Default::default(),
        };
        let community_cost = CommunityCost {
            seed,
            community_size: detection.members.len(),
            walks,
            walk_steps,
            size_checks,
            cost,
            flood,
        };
        Ok((detection, community_cost))
    }

    /// Detects all communities (the pool loop) and reports aggregate CONGEST
    /// costs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`cdrw_core::Cdrw::detect_all`].
    pub fn detect_all(&self, graph: &Graph) -> Result<CongestReport, CdrwError> {
        let algorithm = &self.config.algorithm;
        algorithm.validate()?;
        if graph.num_vertices() == 0 {
            return Err(CdrwError::EmptyGraph);
        }
        if graph.num_edges() == 0 {
            return Err(CdrwError::NoEdges);
        }
        let delta = algorithm.resolve_delta(graph)?;
        let n = graph.num_vertices();
        let pool = shuffled_seed_pool(n, algorithm.seed);
        let mut in_pool = vec![true; n];

        // Same reuse discipline as the sequential `Cdrw::detect_all`: one
        // engine, one workspace, one walk batch and one evidence accumulator
        // for every seed.
        let pooling = algorithm.assembly.is_pooled();
        let engine = WalkEngine::lazy(graph, algorithm.criterion.laziness());
        let mut workspace = engine.workspace();
        let mut batch = WalkBatch::for_graph(graph);
        let mut evidence =
            WalkEvidence::for_graph_if(algorithm.ensemble.is_ensemble() || pooling, graph);

        let mut detections: Vec<CommunityDetection> = Vec::new();
        let mut per_community = Vec::new();
        let mut total = CostAccount::new();
        for &seed in &pool {
            if !in_pool[seed] {
                continue;
            }
            let (detection, community_cost) = self.detect_with_delta(
                &engine,
                &mut workspace,
                &mut batch,
                &mut evidence,
                seed,
                delta,
                pooling,
            )?;
            if pooling {
                evidence.pool_epoch(detections.len() as u32);
            }
            for &v in &detection.members {
                in_pool[v] = false;
            }
            in_pool[seed] = false;
            total.absorb(community_cost.cost);
            per_community.push(community_cost);
            detections.push(detection);
        }

        let (result, assembly_cost) =
            if let AssemblyPolicy::Pooled { reseed, quorum } = algorithm.assembly {
                let (result, assembly_cost) = self.assemble_with_costs(
                    &engine,
                    &mut batch,
                    &mut evidence,
                    detections,
                    delta,
                    reseed,
                    quorum,
                )?;
                total.absorb(assembly_cost.cost);
                (result, Some(assembly_cost))
            } else {
                (DetectionResult::new(n, detections, delta), None)
            };
        let total_bits = total.messages * u64::from(self.config.bandwidth_bits);
        Ok(CongestReport {
            per_community,
            assembly: assembly_cost,
            total,
            total_bits,
            result,
        })
    }

    /// The global assembly phase with CONGEST charging. All coordination is
    /// charged on one BFS tree rooted at the first detection's seed:
    ///
    /// * one convergecast per detection (its pooled claims travel to the
    ///   root, which computes the evidence groups locally),
    /// * one broadcast announcing the groups,
    /// * per re-seed walk: the walk itself (flooding steps plus sweep
    ///   aggregations, exactly like a base walk; each group's walks run in
    ///   lockstep through the walk batch, charged per lane) and one vote
    ///   broadcast,
    /// * three waves per re-seeded group (seed announce, quorum announce,
    ///   refined-membership broadcast),
    /// * two waves for the reconciliation (margin announce, final
    ///   assignment broadcast),
    /// * one round per absorption wave, with one message per edge incident
    ///   to a still-unassigned vertex (each polls its neighbourhood).
    ///
    /// The decisions are shared with the sequential driver through
    /// [`cdrw_core::assembly::assemble_run`], so the assembled result is
    /// identical bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn assemble_with_costs(
        &self,
        engine: &WalkEngine<'_>,
        batch: &mut WalkBatch,
        evidence: &mut WalkEvidence,
        mut detections: Vec<CommunityDetection>,
        delta: f64,
        reseed: usize,
        quorum: usize,
    ) -> Result<(DetectionResult, AssemblyCost), CdrwError> {
        let graph = engine.graph();
        let n = graph.num_vertices();
        let cap = n / 2;
        let mut cost = CostAccount::new();
        let mut flood = CostAccount::new();
        let mut walk_steps = 0usize;
        let mut size_checks = 0usize;

        let root = detections.first().map(|d| d.seed).unwrap_or(0);
        let (tree, bfs_cost) = bfs_tree_cost(graph, root, self.config.bfs_depth(n))?;
        cost.absorb(bfs_cost);
        // Claim convergecasts (one per detection) plus the group broadcast.
        for _ in 0..detections.len() {
            cost.absorb(tree_wave_cost(&tree));
        }
        cost.absorb(tree_wave_cost(&tree));

        let member_sets: Vec<Vec<VertexId>> =
            detections.iter().map(|d| d.members.clone()).collect();
        let seeds: Vec<VertexId> = detections.iter().map(|d| d.seed).collect();
        let outcome = assembly::assemble_run(
            graph,
            reseed,
            quorum,
            &member_sets,
            &seeds,
            evidence,
            |walk_seeds, floor| {
                let answers = self.charged_walks_batched(
                    engine,
                    batch,
                    &tree,
                    walk_seeds,
                    delta,
                    floor,
                    cap,
                    &mut cost,
                    &mut flood,
                    &mut walk_steps,
                    &mut size_checks,
                )?;
                Ok(answers
                    .into_iter()
                    .map(|(set, margin, bounded)| {
                        cost.absorb(membership_broadcast_cost(&tree));
                        community_scale_vote(set, margin, bounded, cap)
                    })
                    .collect())
            },
        )?;
        for _ in 0..outcome.report.reseeded_groups {
            cost.absorb(tree_wave_cost(&tree));
            cost.absorb(tree_wave_cost(&tree));
            cost.absorb(tree_wave_cost(&tree));
        }
        // Reconciliation: margin announce + final assignment broadcast.
        cost.absorb(tree_wave_cost(&tree));
        cost.absorb(tree_wave_cost(&tree));
        // Absorption: one round per wave, each unassigned vertex polls its
        // neighbourhood.
        for &volume in &outcome.absorption_volumes {
            cost.absorb(CostAccount {
                rounds: 1,
                messages: volume,
            });
        }

        for (detection, refined) in detections.iter_mut().zip(outcome.refined) {
            detection.members = refined;
        }
        let result = DetectionResult::assembled(
            n,
            detections,
            outcome.partition,
            outcome.report.clone(),
            delta,
        );
        let assembly_cost = AssemblyCost {
            report: outcome.report,
            walk_steps,
            size_checks,
            cost,
            flood,
        };
        Ok((result, assembly_cost))
    }

    /// Convenience: runs the purely sequential algorithm with the same
    /// configuration (used by the equivalence tests).
    pub fn sequential(&self) -> Cdrw {
        Cdrw::new(self.config.algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrw_gen::{generate_ppm, special, PpmParams};
    use cdrw_metrics::f_score;

    fn ppm_setup(n: usize, r: usize, seed: u64) -> (Graph, cdrw_graph::Partition, f64) {
        let p = 12.0 * (n as f64).ln() / n as f64;
        let q = p / (20.0 * r as f64);
        let params = PpmParams::new(n, r, p.min(1.0), q.min(1.0)).unwrap();
        let (graph, truth) = generate_ppm(&params, seed).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        (graph, truth, delta)
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let runner = CongestCdrw::new(CongestConfig::default());
        assert!(runner.detect_all(&Graph::empty(0)).is_err());
        assert!(runner.detect_all(&Graph::empty(3)).is_err());
        let (g, _) = special::complete(5).unwrap();
        assert!(runner.detect_community(&g, 99).is_err());
    }

    #[test]
    fn detected_communities_match_the_sequential_algorithm() {
        let (graph, _, delta) = ppm_setup(256, 2, 7);
        let algorithm = CdrwConfig::builder().seed(5).delta(delta).build();
        let runner = CongestCdrw::new(CongestConfig::new(algorithm));
        let congest = runner.detect_all(&graph).unwrap();
        let sequential = runner.sequential().detect_all(&graph).unwrap();
        assert_eq!(
            congest.result.partition(),
            sequential.partition(),
            "CONGEST and sequential detections must be identical"
        );
        assert_eq!(congest.result.seeds(), sequential.seeds());
    }

    #[test]
    fn report_costs_are_positive_and_consistent() {
        let (graph, truth, delta) = ppm_setup(256, 2, 9);
        let algorithm = CdrwConfig::builder().seed(2).delta(delta).build();
        let runner = CongestCdrw::new(CongestConfig::new(algorithm));
        let report = runner.detect_all(&graph).unwrap();
        assert!(report.total.rounds > 0);
        assert!(report.total.messages > 0);
        assert_eq!(
            report.total,
            report.per_community.iter().map(|c| c.cost).sum()
        );
        assert_eq!(
            report.total_bits,
            report.total.messages * u64::from(runner.config().bandwidth_bits)
        );
        assert!(report.rounds_per_community() > 0.0);
        assert!(report.messages_per_community() > 0.0);
        // The flood share is the executable part of the model: one round per
        // walk step, never more than the full charge.
        for c in &report.per_community {
            assert_eq!(c.flood.rounds, c.walk_steps as u64);
            assert!(c.flood.messages > 0);
            assert!(c.flood.rounds <= c.cost.rounds);
            assert!(c.flood.messages <= c.cost.messages);
        }
        // The detection itself is still accurate.
        let score = f_score(report.result.partition(), &truth);
        assert!(score.f_score > 0.8, "F = {}", score.f_score);
    }

    #[test]
    fn rounds_grow_polylogarithmically_with_n() {
        // Theorem 5: rounds per community are O(log⁴ n) — in particular the
        // per-community round count must grow far slower than n.
        let mut per_community_rounds = Vec::new();
        for &n in &[128usize, 512] {
            let (graph, _, delta) = ppm_setup(n, 2, 3);
            let algorithm = CdrwConfig::builder().seed(1).delta(delta).build();
            let runner = CongestCdrw::new(CongestConfig::new(algorithm));
            let report = runner.detect_all(&graph).unwrap();
            per_community_rounds.push(report.rounds_per_community());
        }
        let growth = per_community_rounds[1] / per_community_rounds[0];
        // n grew by 4×; polylog growth should stay well under that.
        assert!(
            growth < 3.0,
            "rounds grew by {growth}× for a 4× larger graph: {per_community_rounds:?}"
        );
    }

    #[test]
    fn messages_scale_with_edge_count() {
        // Theorem 5: messages ≈ Õ(n²/r (p + q(r−1))) = Õ(m) per community.
        let (small_graph, _, delta_small) = ppm_setup(128, 2, 5);
        let (large_graph, _, delta_large) = ppm_setup(512, 2, 5);
        let small = CongestCdrw::new(CongestConfig::new(
            CdrwConfig::builder().seed(1).delta(delta_small).build(),
        ))
        .detect_all(&small_graph)
        .unwrap();
        let large = CongestCdrw::new(CongestConfig::new(
            CdrwConfig::builder().seed(1).delta(delta_large).build(),
        ))
        .detect_all(&large_graph)
        .unwrap();
        let edge_ratio = large_graph.num_edges() as f64 / small_graph.num_edges() as f64;
        let message_ratio = large.messages_per_community() / small.messages_per_community();
        // Messages grow at least linearly in m and at most by polylog extra.
        assert!(
            message_ratio > 0.5 * edge_ratio && message_ratio < 10.0 * edge_ratio,
            "message ratio {message_ratio}, edge ratio {edge_ratio}"
        );
    }

    #[test]
    fn mass_calibrated_criteria_charge_the_extra_convergecast() {
        use cdrw_core::MixingCriterion;
        // On a complete graph the strict and renormalised criteria make
        // identical decisions, so the cost difference is exactly the extra
        // broadcast + convergecast pair per size check. The BFS tree from any
        // seed has depth 1, so each tree wave is 1 round and n−1 messages.
        let n = 32usize;
        let (g, _) = special::complete(n).unwrap();
        let run = |criterion: MixingCriterion| {
            let algorithm = CdrwConfig::builder()
                .seed(3)
                .delta(0.2)
                .criterion(criterion)
                .build();
            CongestCdrw::new(CongestConfig::new(algorithm))
                .detect_community(&g, 0)
                .unwrap()
        };
        let (strict_detection, strict) = run(MixingCriterion::Strict);
        let (renorm_detection, renorm) = run(MixingCriterion::Renormalized);
        assert_eq!(strict_detection.members, renorm_detection.members);
        assert_eq!(strict.size_checks, renorm.size_checks);
        let checks = strict.size_checks as u64;
        assert_eq!(renorm.cost.rounds - strict.cost.rounds, 2 * checks);
        assert_eq!(
            renorm.cost.messages - strict.cost.messages,
            2 * checks * (n as u64 - 1)
        );
        // The lazy criterion stretches the walk budget instead: same cost per
        // step, roughly twice the steps.
        let (_, lazy) = run(MixingCriterion::lazy());
        assert_eq!(lazy.walk_steps, 2 * strict.walk_steps);
    }

    #[test]
    fn ensemble_detections_match_the_sequential_ensemble_exactly() {
        use cdrw_core::EnsemblePolicy;
        // The CONGEST ensemble shares the walk code, the follow-up seed
        // selection and the consensus rule with the sequential ensemble, so
        // every detection must be identical member for member.
        for (n, r, graph_seed) in [(256usize, 2usize, 13u64), (256, 4, 7)] {
            let p = (8.0 * (n as f64).ln() / n as f64).min(1.0);
            let q = p / (4.0 * r as f64);
            let params = PpmParams::new(n, r, p, q).unwrap();
            let (graph, _) = generate_ppm(&params, graph_seed).unwrap();
            let delta = params.expected_block_conductance().clamp(0.01, 1.0);
            let algorithm = CdrwConfig::builder()
                .seed(5)
                .delta(delta)
                .ensemble_policy(EnsemblePolicy::Ensemble {
                    walks: 4,
                    quorum: 2,
                })
                .build();
            let runner = CongestCdrw::new(CongestConfig::new(algorithm));
            let congest = runner.detect_all(&graph).unwrap();
            let sequential = runner.sequential().detect_all(&graph).unwrap();
            assert_eq!(congest.result.seeds(), sequential.seeds());
            for (c, s) in congest
                .result
                .detections()
                .iter()
                .zip(sequential.detections())
            {
                assert_eq!(c.seed, s.seed);
                assert_eq!(c.members, s.members, "seed {} diverged", c.seed);
            }
            assert_eq!(congest.result.partition(), sequential.partition());
            for cost in &congest.per_community {
                assert!(cost.walks >= 1 && cost.walks <= 4);
            }
        }
    }

    #[test]
    fn ensemble_cost_delta_is_exact_and_walk_count_scaled() {
        use cdrw_core::EnsemblePolicy;
        // On a complete graph every follow-up walk is identical by symmetry
        // (same decisions, same support, run to the same cap), so the cost of
        // adding one more walk is an exact constant: one walk plus its
        // membership (vote) broadcast. The fixed ensemble overhead on top —
        // seed-selection convergecast + follow-up-seed broadcast + quorum
        // announce — is exactly three tree waves, each 1 round and n − 1
        // messages on the depth-1 BFS tree of a complete graph.
        let n = 24usize;
        let (g, _) = special::complete(n).unwrap();
        let run = |policy: EnsemblePolicy| {
            let algorithm = CdrwConfig::builder()
                .seed(3)
                .delta(0.2)
                .ensemble_policy(policy)
                .build();
            CongestCdrw::new(CongestConfig::new(algorithm))
                .detect_community(&g, 0)
                .unwrap()
        };
        let (single_detection, single) = run(EnsemblePolicy::Single);
        let ensembles: Vec<_> = (2usize..=4)
            .map(|walks| run(EnsemblePolicy::Ensemble { walks, quorum: 1 }))
            .collect();
        // Decisions: on a complete graph the consensus stays the whole graph
        // (follow-ups mix globally and abstain; the base set is always kept).
        for (detection, _) in &ensembles {
            assert_eq!(detection.members, single_detection.members);
        }
        assert_eq!(ensembles[0].1.walks, 2);
        assert_eq!(ensembles[2].1.walks, 4);
        // Per-walk delta: rounds and messages added by the 3rd and 4th walks
        // are identical (one follow-up walk + one membership broadcast).
        let d32 = (
            ensembles[1].1.cost.rounds - ensembles[0].1.cost.rounds,
            ensembles[1].1.cost.messages - ensembles[0].1.cost.messages,
        );
        let d43 = (
            ensembles[2].1.cost.rounds - ensembles[1].1.cost.rounds,
            ensembles[2].1.cost.messages - ensembles[1].1.cost.messages,
        );
        assert_eq!(d32, d43, "ensemble cost must scale linearly in walks");
        assert!(d32.0 > 0 && d32.1 > 0);
        // Fixed overhead: Δ(2 walks vs single) minus one per-walk delta is
        // exactly the three coordination tree waves.
        let d21 = (
            ensembles[0].1.cost.rounds - single.cost.rounds,
            ensembles[0].1.cost.messages - single.cost.messages,
        );
        assert_eq!(d21.0 - d32.0, 3);
        assert_eq!(d21.1 - d32.1, 3 * (n as u64 - 1));
        // Walk-step accounting also scales: every extra walk contributes the
        // same number of steps.
        let s32 = ensembles[1].1.walk_steps - ensembles[0].1.walk_steps;
        let s43 = ensembles[2].1.walk_steps - ensembles[1].1.walk_steps;
        assert_eq!(s32, s43);
    }

    #[test]
    fn assembly_reconciliation_cost_delta_is_exact() {
        use cdrw_core::AssemblyPolicy;
        // On a complete graph the pool loop emits one whole-graph detection,
        // so the pooled assembly runs no re-seed walks, contests nothing and
        // absorbs nothing: the cost delta against `Raw` is exactly the fixed
        // reconciliation overhead — the global BFS tree (depth 1 on a
        // complete graph: 1 round, n(n−1) messages) plus four tree waves
        // (one claim convergecast for the single detection, the group
        // broadcast, the margin announce and the final assignment
        // broadcast), each 1 round and n − 1 messages.
        let n = 24usize;
        let (g, _) = special::complete(n).unwrap();
        let run = |policy: AssemblyPolicy| {
            let algorithm = CdrwConfig::builder()
                .seed(3)
                .delta(0.2)
                .assembly_policy(policy)
                .build();
            CongestCdrw::new(CongestConfig::new(algorithm))
                .detect_all(&g)
                .unwrap()
        };
        let raw = run(AssemblyPolicy::Raw);
        let pooled = run(AssemblyPolicy::reconcile_only());
        assert!(raw.assembly.is_none());
        let assembly = pooled.assembly.as_ref().expect("assembly cost present");
        assert_eq!(assembly.report.groups, 1);
        assert_eq!(assembly.report.reseed_walks, 0);
        assert_eq!(assembly.report.contested, 0);
        assert_eq!(assembly.report.absorbed, 0);
        assert_eq!(assembly.walk_steps, 0);
        let nn = n as u64;
        assert_eq!(assembly.cost.rounds, 1 + 4);
        assert_eq!(assembly.cost.messages, nn * (nn - 1) + 4 * (nn - 1));
        // The delta against Raw is exactly the assembly phase, and the total
        // decomposes into the per-community costs plus the assembly.
        assert_eq!(pooled.total.rounds - raw.total.rounds, assembly.cost.rounds);
        assert_eq!(
            pooled.total.messages - raw.total.messages,
            assembly.cost.messages
        );
        let per_community: CostAccount = pooled.per_community.iter().map(|c| c.cost).sum();
        assert_eq!(
            pooled.total,
            per_community + assembly.cost,
            "total = per-community + assembly"
        );
        // Decisions are untouched by the reconcile-only assembly here.
        assert_eq!(pooled.result.partition(), raw.result.partition());
    }

    #[test]
    fn assembly_cost_scales_with_the_claim_convergecasts() {
        use cdrw_core::AssemblyPolicy;
        // Two detections (ring of two cliques) charge two claim
        // convergecasts; the remaining fixed overhead is the BFS tree plus
        // three waves. Reconstructing the expected delta from the cost
        // primitives pins the charging formula exactly on a non-trivial
        // tree.
        let (g, _) = special::ring_of_cliques(2, 12).unwrap();
        let run = |policy: AssemblyPolicy| {
            let algorithm = CdrwConfig::builder()
                .seed(7)
                .delta(0.05)
                .assembly_policy(policy)
                .build();
            CongestCdrw::new(CongestConfig::new(algorithm))
                .detect_all(&g)
                .unwrap()
        };
        let raw = run(AssemblyPolicy::Raw);
        let pooled = run(AssemblyPolicy::reconcile_only());
        let detections = raw.result.detections().len();
        assert_eq!(detections, 2, "one detection per clique");
        let assembly = pooled.assembly.as_ref().unwrap();
        assert_eq!(assembly.report.reseed_walks, 0);
        assert_eq!(assembly.report.absorption_rounds, 0);
        let root = raw.result.detections()[0].seed;
        let config = CongestConfig::new(CdrwConfig::default());
        let (tree, bfs) = bfs_tree_cost(&g, root, config.bfs_depth(g.num_vertices())).unwrap();
        let wave = tree_wave_cost(&tree);
        let waves = (detections + 3) as u64;
        assert_eq!(assembly.cost.rounds, bfs.rounds + waves * wave.rounds);
        assert_eq!(assembly.cost.messages, bfs.messages + waves * wave.messages);
        assert_eq!(pooled.total.rounds - raw.total.rounds, assembly.cost.rounds);
    }

    #[test]
    fn pooled_assembly_decisions_match_sequential_on_a_sparse_ppm() {
        use cdrw_core::AssemblyPolicy;
        // A fig4a-shaped sparse instance where fragments actually merge and
        // re-seed walks run: the CONGEST driver must produce the identical
        // assembled result (refined detections, partition and report).
        let n = 512;
        let ln_n = (n as f64).ln();
        let p = 2.0 * ln_n * ln_n / n as f64;
        let q = p / (2f64.powf(0.6) * ln_n);
        let params = PpmParams::new(n, 4, p, q).unwrap();
        let (graph, _) = generate_ppm(&params, 41).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let algorithm = CdrwConfig::builder()
            .seed(41)
            .delta(delta)
            .assembly_policy(AssemblyPolicy::Pooled {
                reseed: 3,
                quorum: 2,
            })
            .build();
        let runner = CongestCdrw::new(CongestConfig::new(algorithm));
        let congest = runner.detect_all(&graph).unwrap();
        let sequential = runner.sequential().detect_all(&graph).unwrap();
        assert_eq!(congest.result.seeds(), sequential.seeds());
        for (c, s) in congest
            .result
            .detections()
            .iter()
            .zip(sequential.detections())
        {
            assert_eq!(c.members, s.members, "seed {} diverged", c.seed);
        }
        assert_eq!(congest.result.partition(), sequential.partition());
        let assembly = congest.assembly.as_ref().unwrap();
        assert_eq!(Some(&assembly.report), sequential.assembly());
        // The instance is fragmented enough for the cross-detection layer to
        // actually do something: fragments merged and re-seed walks ran.
        assert!(assembly.report.merged_detections >= 2);
        assert!(assembly.report.reseed_walks > 0);
        assert!(assembly.walk_steps > 0);
        let per_community: CostAccount = congest.per_community.iter().map(|c| c.cost).sum();
        assert_eq!(congest.total, per_community + assembly.cost);
    }

    proptest::proptest! {
        /// On arbitrary graphs and ensemble policies, the CONGEST runner's
        /// ensemble decisions (every detected member set and the induced
        /// partition) match the sequential ensemble exactly.
        #[test]
        fn congest_ensemble_decisions_match_sequential_on_arbitrary_graphs(
            edges in proptest::collection::vec((0usize..18, 0usize..18), 4..90),
            seed in 0u64..256,
            walks in 2usize..5,
            quorum in 1usize..3,
        ) {
            use cdrw_core::EnsemblePolicy;
            use proptest::{prop_assert_eq, prop_assume};

            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let graph = cdrw_graph::GraphBuilder::from_edges(18, clean).unwrap();
            let algorithm = CdrwConfig::builder()
                .seed(seed)
                .delta(0.2)
                .ensemble_policy(EnsemblePolicy::Ensemble {
                    walks,
                    quorum: quorum.min(walks),
                })
                .build();
            let runner = CongestCdrw::new(CongestConfig::new(algorithm));
            let congest = runner.detect_all(&graph).unwrap();
            let sequential = runner.sequential().detect_all(&graph).unwrap();
            prop_assert_eq!(congest.result.seeds(), sequential.seeds());
            for (c, s) in congest
                .result
                .detections()
                .iter()
                .zip(sequential.detections())
            {
                prop_assert_eq!(&c.members, &s.members, "seed {} diverged", c.seed);
            }
            prop_assert_eq!(congest.result.partition(), sequential.partition());
        }

        /// Under the pooled assembly — isolates, merges, re-seed walks and
        /// all — the CONGEST runner's assembled result equals the sequential
        /// driver's bit for bit on arbitrary graphs.
        #[test]
        fn congest_pooled_assembly_matches_sequential_on_arbitrary_graphs(
            edges in proptest::collection::vec((0usize..16, 0usize..16), 3..70),
            seed in 0u64..256,
            reseed in 0usize..4,
        ) {
            use cdrw_core::AssemblyPolicy;
            use proptest::{prop_assert_eq, prop_assume};

            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let graph = cdrw_graph::GraphBuilder::from_edges(16, clean).unwrap();
            let assembly = if reseed == 0 {
                AssemblyPolicy::reconcile_only()
            } else {
                AssemblyPolicy::Pooled { reseed, quorum: reseed.div_ceil(2) }
            };
            let algorithm = CdrwConfig::builder()
                .seed(seed)
                .delta(0.2)
                .assembly_policy(assembly)
                .build();
            let runner = CongestCdrw::new(CongestConfig::new(algorithm));
            let congest = runner.detect_all(&graph).unwrap();
            let sequential = runner.sequential().detect_all(&graph).unwrap();
            prop_assert_eq!(congest.result.seeds(), sequential.seeds());
            for (c, s) in congest
                .result
                .detections()
                .iter()
                .zip(sequential.detections())
            {
                prop_assert_eq!(&c.members, &s.members, "seed {} diverged", c.seed);
            }
            prop_assert_eq!(congest.result.partition(), sequential.partition());
            let assembly_cost = congest.assembly.as_ref().unwrap();
            prop_assert_eq!(Some(&assembly_cost.report), sequential.assembly());
            let per_community: CostAccount = congest.per_community.iter().map(|c| c.cost).sum();
            prop_assert_eq!(congest.total, per_community + assembly_cost.cost);
        }
    }

    #[test]
    fn single_community_detection_reports_costs() {
        let (graph, _, delta) = ppm_setup(128, 2, 11);
        let algorithm = CdrwConfig::builder().seed(3).delta(delta).build();
        let runner = CongestCdrw::new(CongestConfig::new(algorithm));
        let (detection, cost) = runner.detect_community(&graph, 0).unwrap();
        assert!(detection.contains(0));
        assert_eq!(cost.seed, 0);
        assert_eq!(cost.community_size, detection.members.len());
        assert!(cost.walk_steps > 0);
        assert!(cost.size_checks > 0);
        assert!(cost.cost.rounds > 0);
    }
}
