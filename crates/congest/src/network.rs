//! A synchronous message-passing simulator for the CONGEST model.
//!
//! Each vertex of the graph runs a [`NodeProgram`] state machine. In every
//! round the simulator collects the messages produced in the previous round,
//! delivers them, and invokes every node once with its inbox. A node may send
//! at most one message per incident edge per round (the CONGEST bandwidth
//! constraint); violations are reported as errors rather than silently
//! dropped.
//!
//! The distributed primitives CDRW relies on — flooding BFS-tree
//! construction, broadcast and convergecast aggregation over the tree — are
//! implemented as node programs in this module and their measured costs are
//! asserted in tests. The full CDRW driver (`crate::runner`) uses the cost
//! formulas these programs validate.

use std::collections::HashMap;

use cdrw_graph::{Graph, VertexId};

/// A message addressed to a neighbour. The payload is a small fixed struct,
/// standing in for the `O(log n)` bits the model allows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// The sending vertex.
    pub from: VertexId,
    /// The destination vertex (must be a neighbour of `from`).
    pub to: VertexId,
    /// An integer payload word.
    pub word: i64,
    /// A second payload word (still O(log n) bits in total).
    pub extra: i64,
}

/// The context handed to a node on every round.
#[derive(Debug)]
pub struct RoundContext<'a> {
    /// The current round number, starting at 1.
    pub round: u64,
    /// Messages delivered to this node at the start of the round.
    pub inbox: &'a [Envelope],
    outbox: Vec<(VertexId, i64, i64)>,
}

impl<'a> RoundContext<'a> {
    /// Queues a message to `neighbor` with the given payload words.
    pub fn send(&mut self, neighbor: VertexId, word: i64, extra: i64) {
        self.outbox.push((neighbor, word, extra));
    }
}

/// A per-vertex state machine.
pub trait NodeProgram {
    /// Runs one round. Returning `false` signals that this node is done and
    /// will not send any further messages (it still receives messages and
    /// can wake up again by returning `true` in a later round).
    fn on_round(&mut self, me: VertexId, ctx: &mut RoundContext<'_>) -> bool;
}

/// Error produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulationError {
    /// A node sent a message to a vertex that is not its neighbour.
    NotANeighbor {
        /// The sending vertex.
        from: VertexId,
        /// The intended destination.
        to: VertexId,
    },
    /// A node sent more than one message over the same edge in one round.
    BandwidthExceeded {
        /// The sending vertex.
        from: VertexId,
        /// The destination vertex.
        to: VertexId,
        /// The round in which it happened.
        round: u64,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::NotANeighbor { from, to } => {
                write!(f, "vertex {from} attempted to message non-neighbour {to}")
            }
            SimulationError::BandwidthExceeded { from, to, round } => write!(
                f,
                "vertex {from} sent more than one message to {to} in round {round}"
            ),
        }
    }
}

impl std::error::Error for SimulationError {}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationOutcome {
    /// Number of rounds executed (the round in which the network became
    /// quiescent, or the cap).
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Whether the network became quiescent (no node active, no message in
    /// flight) before the round cap.
    pub quiescent: bool,
}

/// The synchronous simulator.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over the given communication graph.
    pub fn new(graph: &'g Graph) -> Self {
        Simulator { graph }
    }

    /// Runs the node programs until the network is quiescent or `max_rounds`
    /// have elapsed.
    ///
    /// `programs` must contain exactly one program per vertex.
    ///
    /// # Errors
    ///
    /// Returns a [`SimulationError`] if a node violates the CONGEST
    /// constraints (messaging a non-neighbour, or more than one message per
    /// edge per round).
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the number of vertices.
    pub fn run<P: NodeProgram>(
        &self,
        programs: &mut [P],
        max_rounds: u64,
    ) -> Result<SimulationOutcome, SimulationError> {
        assert_eq!(
            programs.len(),
            self.graph.num_vertices(),
            "need exactly one program per vertex"
        );
        let n = self.graph.num_vertices();
        let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
        let mut total_messages = 0u64;
        let mut active = vec![true; n];

        for round in 1..=max_rounds {
            let any_active = active.iter().any(|&a| a);
            let any_mail = inboxes.iter().any(|inbox| !inbox.is_empty());
            if !any_active && !any_mail {
                return Ok(SimulationOutcome {
                    rounds: round - 1,
                    messages: total_messages,
                    quiescent: true,
                });
            }

            let mut next_inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
            for v in 0..n {
                if !active[v] && inboxes[v].is_empty() {
                    continue;
                }
                let mut ctx = RoundContext {
                    round,
                    inbox: &inboxes[v],
                    outbox: Vec::new(),
                };
                active[v] = programs[v].on_round(v, &mut ctx);
                let mut sent_to: HashMap<VertexId, ()> = HashMap::new();
                for (to, word, extra) in ctx.outbox {
                    if !self.graph.has_edge(v, to) {
                        return Err(SimulationError::NotANeighbor { from: v, to });
                    }
                    if sent_to.insert(to, ()).is_some() {
                        return Err(SimulationError::BandwidthExceeded { from: v, to, round });
                    }
                    total_messages += 1;
                    next_inboxes[to].push(Envelope {
                        from: v,
                        to,
                        word,
                        extra,
                    });
                }
            }
            inboxes = next_inboxes;
        }
        Ok(SimulationOutcome {
            rounds: max_rounds,
            messages: total_messages,
            quiescent: false,
        })
    }
}

/// Flooding BFS-tree construction (Algorithm 1, line 5): the root announces
/// itself; every node adopts the first announcer as its parent and floods the
/// announcement onward. Terminates after `depth + 1` rounds of activity.
///
/// In the CONGEST model every node knows the ids of its neighbours, so the
/// program carries its neighbour list (filled in by [`prepare_bfs_programs`]).
#[derive(Debug, Clone)]
pub struct BfsProgram {
    /// The root of the BFS tree.
    pub root: VertexId,
    /// The parent adopted by this node (`None` until reached; the root keeps
    /// `None`).
    pub parent: Option<VertexId>,
    /// The BFS depth at which this node was reached.
    pub depth: Option<u64>,
    neighbors: Vec<VertexId>,
    started: bool,
}

impl BfsProgram {
    /// Creates the per-vertex program for a BFS rooted at `root`, with the
    /// node's neighbour list.
    pub fn new(root: VertexId, neighbors: Vec<VertexId>) -> Self {
        BfsProgram {
            root,
            parent: None,
            depth: None,
            neighbors,
            started: false,
        }
    }

    fn flood(&self, ctx: &mut RoundContext<'_>) {
        let depth = self.depth.expect("flood is only called once reached") as i64;
        // Sending back toward already-reached neighbours is harmless and
        // keeps the program simple; the textbook message bound counts exactly
        // these d(v) messages per reached vertex.
        for &to in &self.neighbors {
            ctx.send(to, depth, 0);
        }
    }
}

impl NodeProgram for BfsProgram {
    fn on_round(&mut self, me: VertexId, ctx: &mut RoundContext<'_>) -> bool {
        if me == self.root && !self.started {
            self.started = true;
            self.depth = Some(0);
            self.flood(ctx);
            return false;
        }
        if self.depth.is_none() {
            if let Some(first) = ctx.inbox.first() {
                self.parent = Some(first.from);
                self.depth = Some(first.word as u64 + 1);
                self.flood(ctx);
                return false;
            }
            // Not yet reached: stay passive but alive so a later announcement
            // still wakes this node (the simulator wakes nodes with mail).
            return me == self.root;
        }
        false
    }
}

/// Builds one [`BfsProgram`] per vertex with neighbour lists filled in.
pub fn prepare_bfs_programs(graph: &Graph, root: VertexId) -> Vec<BfsProgram> {
    graph
        .vertices()
        .map(|v| BfsProgram::new(root, graph.neighbors(v).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrw_graph::{traversal, GraphBuilder};

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_program_builds_a_valid_tree_on_a_path() {
        let g = path(6);
        let mut programs = prepare_bfs_programs(&g, 0);
        let outcome = Simulator::new(&g).run(&mut programs, 100).unwrap();
        assert!(outcome.quiescent);
        // Depth of the path from vertex 0 is 5; flooding needs depth + 1
        // rounds of activity (the last round only quiesces).
        assert!(
            outcome.rounds >= 5 && outcome.rounds <= 7,
            "rounds = {}",
            outcome.rounds
        );
        for (v, program) in programs.iter().enumerate().take(6).skip(1) {
            assert_eq!(program.parent, Some(v - 1));
            assert_eq!(program.depth, Some(v as u64));
        }
        assert_eq!(programs[0].depth, Some(0));
    }

    #[test]
    fn bfs_program_matches_sequential_bfs_on_random_graph() {
        let g = cdrw_gen::generate_gnp(&cdrw_gen::GnpParams::new(80, 0.08).unwrap(), 3).unwrap();
        let mut programs = prepare_bfs_programs(&g, 0);
        let outcome = Simulator::new(&g).run(&mut programs, 200).unwrap();
        assert!(outcome.quiescent);
        let reference = traversal::bfs_distances(&g, 0).unwrap();
        for v in g.vertices() {
            let simulated = programs[v].depth.map(|d| d as usize);
            assert_eq!(simulated, reference.distance(v), "vertex {v}");
            if let Some(parent) = programs[v].parent {
                assert!(g.has_edge(v, parent));
            }
        }
    }

    #[test]
    fn message_count_of_flooding_is_sum_of_reached_degrees() {
        let g = path(5);
        let mut programs = prepare_bfs_programs(&g, 0);
        let outcome = Simulator::new(&g).run(&mut programs, 100).unwrap();
        // Every reached vertex floods to all of its neighbours exactly once.
        let expected: u64 = g.vertices().map(|v| g.degree(v) as u64).sum();
        assert_eq!(outcome.messages, expected);
    }

    #[test]
    fn disconnected_vertices_are_never_reached() {
        let g = GraphBuilder::from_edges(4, [(0, 1)]).unwrap();
        let mut programs = prepare_bfs_programs(&g, 0);
        let outcome = Simulator::new(&g).run(&mut programs, 50).unwrap();
        assert!(outcome.quiescent);
        assert_eq!(programs[2].depth, None);
        assert_eq!(programs[3].depth, None);
    }

    #[test]
    fn bandwidth_violation_is_detected() {
        struct Spammer;
        impl NodeProgram for Spammer {
            fn on_round(&mut self, me: VertexId, ctx: &mut RoundContext<'_>) -> bool {
                if me == 0 {
                    ctx.send(1, 1, 0);
                    ctx.send(1, 2, 0);
                }
                false
            }
        }
        let g = path(2);
        let mut programs = vec![Spammer, Spammer];
        let err = Simulator::new(&g).run(&mut programs, 10).unwrap_err();
        assert!(matches!(err, SimulationError::BandwidthExceeded { .. }));
    }

    #[test]
    fn messaging_a_non_neighbor_is_detected() {
        struct Wild;
        impl NodeProgram for Wild {
            fn on_round(&mut self, me: VertexId, ctx: &mut RoundContext<'_>) -> bool {
                if me == 0 {
                    ctx.send(3, 1, 0);
                }
                false
            }
        }
        let g = path(4);
        let mut programs = vec![Wild, Wild, Wild, Wild];
        let err = Simulator::new(&g).run(&mut programs, 10).unwrap_err();
        assert_eq!(err, SimulationError::NotANeighbor { from: 0, to: 3 });
    }

    #[test]
    fn round_cap_is_respected() {
        // A program that never stops: the simulator must cut it off.
        struct Chatter {
            neighbors: Vec<VertexId>,
        }
        impl NodeProgram for Chatter {
            fn on_round(&mut self, _me: VertexId, ctx: &mut RoundContext<'_>) -> bool {
                for &to in &self.neighbors {
                    ctx.send(to, 0, 0);
                }
                true
            }
        }
        let g = path(3);
        let mut programs: Vec<Chatter> = g
            .vertices()
            .map(|v| Chatter {
                neighbors: g.neighbors(v).collect(),
            })
            .collect();
        let outcome = Simulator::new(&g).run(&mut programs, 7).unwrap();
        assert_eq!(outcome.rounds, 7);
        assert!(!outcome.quiescent);
    }
}
