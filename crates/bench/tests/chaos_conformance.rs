//! Conformance gate for the chaos bench path: every cell of the default
//! plan matrix must match the sequential oracle, and a failing cell must
//! name its one-line repro command.
//!
//! CI's chaos-conformance job runs this in release mode next to the
//! kmachine chaos suite; the assertions go through the same
//! `chaos_resilience` entry point the `experiments` binary uses, so a CI
//! failure here is replayable verbatim with the printed
//! `--fault-plan '<json>'` invocation.

use cdrw_bench::experiments::chaos;
use cdrw_bench::{RunOptions, Scale};
use cdrw_kmachine::FaultPlan;

/// Extracts a named companion column from a data point.
fn extra(point: &cdrw_bench::DataPoint, name: &str) -> f64 {
    point
        .extras
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| *value)
        .unwrap_or_else(|| panic!("point {} lacks extra {name}", point.x_label))
}

#[test]
fn every_default_matrix_cell_conforms_to_the_sequential_oracle() {
    let figure = chaos::chaos_resilience(Scale::Quick, 3, RunOptions::default(), None, None);
    // 5 plans × k ∈ {2, 4}.
    assert_eq!(figure.points.len(), 10, "unexpected matrix shape");
    let matrix = chaos::plan_matrix(3);
    for point in &figure.points {
        let plan = &matrix
            .iter()
            .find(|(label, _)| *label == point.series)
            .expect("every series comes from the matrix")
            .1;
        let k: usize = point
            .x_label
            .trim_start_matches("k = ")
            .parse()
            .expect("x label is the shard count");
        assert_eq!(
            extra(point, "conforms"),
            1.0,
            "cell ({}, {}) diverged from the sequential oracle; repro: {}",
            point.series,
            point.x_label,
            chaos::repro_command(k, plan)
        );
    }
    // The crashing plans must actually have exercised recovery, and the
    // fault-free cells must have stayed clean.
    for point in &figure.points {
        if point.series.starts_with("crash") {
            assert!(
                extra(point, "recoveries") >= 1.0,
                "({}, {}) never recovered",
                point.series,
                point.x_label
            );
        }
        if point.series == "fault-free" {
            assert_eq!(extra(point, "timeouts"), 0.0, "{}", point.x_label);
            assert_eq!(extra(point, "retries"), 0.0, "{}", point.x_label);
        }
    }
}

#[test]
fn a_fault_plan_override_replays_a_single_cell() {
    // The repro path: one explicit plan, one shard count, one point — and
    // the plan survives the JSON round trip the command line performs.
    let plan = FaultPlan::seeded(91)
        .with_drop_rate(0.07)
        .with_delay(0.04, 3)
        .with_crash(1, 6);
    let line = chaos::plan_to_line(&plan);
    let parsed = chaos::plan_from_json(&cdrw_bench::json::Json::parse(&line).unwrap()).unwrap();
    assert_eq!(parsed, plan);
    let figure = chaos::chaos_resilience(
        Scale::Quick,
        3,
        RunOptions::default(),
        Some(2),
        Some(&parsed),
    );
    assert_eq!(figure.points.len(), 1);
    assert_eq!(
        extra(&figure.points[0], "conforms"),
        1.0,
        "repro: {}",
        chaos::repro_command(2, &plan)
    );
}
