//! Pinned starting point for the open Figure-2 full-scale anomaly.
//!
//! At full scale the `p = 5·ln n / n` series of Figure 2 collapses: the
//! F-score is ≈ 1.0 up to `n = 2048` and then falls off a cliff, landing
//! near 0.04 at `n = 16384` — while the sparser `2·ln n / n` and denser
//! `2·(ln n)² / n` series both stay high. See the "Open anomaly" section of
//! `EXPERIMENTS.md` for the recorded full-scale trajectory and the current
//! hypotheses.
//!
//! This test pins that trajectory so the dedicated investigation has a
//! committed, reproducible baseline: it *passes* while the anomaly exists
//! and fails once detection at `n = 16384` recovers — at which point the
//! expectations (and the EXPERIMENTS.md section) should be updated to the
//! fixed behaviour. `#[ignore]`d because the large cells take minutes in
//! release mode; run explicitly with
//! `cargo test --release -p cdrw-bench --test fig2_anomaly -- --ignored`.

use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, params, PpmParams};
use cdrw_metrics::f_score_for_detections;

/// One cell of the `p = 5·ln n / n` series: single trial, default variant,
/// the experiment driver's base seed — the same run `experiments fig2
/// --full` performs for that cell.
fn five_ln_n_cell(n: usize) -> f64 {
    let p = params::log_n_over_n(n, 5.0);
    let ppm = PpmParams::new(n, 1, p, 0.0).expect("r = 1 always divides n");
    let (graph, truth) = generate_ppm(&ppm, 20190416).expect("validated parameters");
    let config = CdrwConfig::builder()
        .seed(20190416)
        .delta(ppm.expected_block_conductance().clamp(0.01, 1.0))
        .build();
    let result = Cdrw::new(config)
        .detect_all(&graph)
        .expect("non-degenerate instance");
    f_score_for_detections(
        result
            .detections()
            .iter()
            .map(|d| (d.members.as_slice(), d.seed)),
        &truth,
    )
    .f_score
}

#[test]
#[ignore = "full-scale cells take minutes — run with -- --ignored to reproduce the anomaly"]
fn five_ln_n_series_still_collapses_past_n_2048() {
    // The healthy region: essentially perfect detection through n = 2048.
    for n in [1024usize, 2048] {
        let f = five_ln_n_cell(n);
        assert!(
            f > 0.95,
            "p = 5·ln n/n at n = {n}: F = {f}, expected ≈ 1.0 (healthy region)"
        );
    }
    // The collapsed region: the anomaly under investigation. If this
    // assertion fails because F recovered, the anomaly is fixed — update
    // this test and the EXPERIMENTS.md section rather than reverting.
    let f = five_ln_n_cell(16_384);
    assert!(
        f < 0.2,
        "p = 5·ln n/n at n = 16384: F = {f} — the recorded anomaly (F ≈ 0.04) \
         no longer reproduces; update the pinned trajectory"
    );
}
