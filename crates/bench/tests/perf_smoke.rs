//! Perf-smoke acceptance tests for the hot-loop work.
//!
//! These pin the *shape* of the speedups, not wall-clock absolutes: the
//! prefix-scan sweep must beat the per-size reference by a wide margin on a
//! fig4a-sized instance (the acceptance bar is ≥ 5×; the measured ratio is
//! typically well above 15× in release mode), batched stepping must not
//! lose to sequential stepping on overlapping walks, the work-stealing
//! parallel driver must scale on a multi-core runner, the bit-packed
//! walk state must not lose to the epoch-stamped reference layout it
//! replaced, the weight-lane dispatch must cost ≤ 1.1× on the
//! unweighted step path against the preserved pre-weight-lane kernel, and
//! the fault-free chaos wrapper must cost ≤ 1.1× of the bare sharded run
//! (the zero plan short-circuits to the inner transport). All
//! measurements are best-of-samples, so scheduler noise shifts the ratio,
//! not the verdict.

use cdrw_bench::perf;
use cdrw_congest::CongestConfig;
use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_kmachine::{FaultPlan, KMachineConfig, KMachineEngine};
use cdrw_walk::{stamp_reference, WalkBatch, WalkEngine};
use std::time::Instant;

// Both tests are #[ignore]d so the accuracy job and plain `cargo test` stay
// timing-deterministic; the CI perf-smoke job runs them explicitly with
// `-- --ignored` in release mode.
#[test]
#[ignore = "timing assertion — run by the CI perf-smoke job with -- --ignored"]
fn prefix_scan_sweep_is_at_least_5x_faster_on_a_fig4a_instance() {
    let measured = perf::measure_sweep_speedup();
    assert_eq!(measured.n, 2048, "quick-scale fig4a size");
    assert!(
        measured.support > measured.n / 2,
        "the walk state must exercise long candidate prefixes, support = {}",
        measured.support
    );
    assert!(
        measured.speedup() >= 5.0,
        "prefix-scan sweep speedup {:.1}x below the 5x acceptance bar \
         (per-size {:.0} ns, prefix {:.0} ns)",
        measured.speedup(),
        measured.per_size_ns,
        measured.prefix_ns
    );
}

#[test]
#[ignore = "timing assertion — run by the CI perf-smoke job with -- --ignored"]
fn unweighted_step_path_costs_at_most_1_1x_of_the_pre_weight_lane_kernel() {
    // The weight lane must cost nothing when absent: on an unweighted graph
    // the current kernel takes the weightless branch, whose instructions are
    // the pre-weight-lane kernel's plus one per-vertex dispatch on the absent
    // weight slice. Both sides are bit-identical and measured best-of-samples
    // at steady-state support on the same fig4a-sized instance.
    let measured = perf::measure_step_overhead();
    assert_eq!(measured.n, 2048, "quick-scale fig4a size");
    assert!(
        measured.support > measured.n / 2,
        "the timed state must be spread to steady-state support, support = {}",
        measured.support
    );
    assert!(
        measured.ratio() <= 1.1,
        "unweighted step path at {:.3}x of the pre-weight-lane kernel, above \
         the 1.1x acceptance bar (step {:.0} ns, reference {:.0} ns)",
        measured.ratio(),
        measured.step_ns,
        measured.reference_ns
    );
}

#[test]
#[ignore = "timing assertion — run by the CI perf-smoke job with -- --ignored"]
fn fault_free_chaos_wrapper_costs_at_most_1_1x_of_the_bare_sharded_run() {
    // The fault-tolerance acceptance bar: wrapping every shard transport in
    // `ChaosTransport` under the zero plan must be (near) free, because the
    // fault-free plan short-circuits straight to the inner transport — no
    // hashing, no delay queues, no locks on the hot path. Both sides run
    // the identical sharded pipeline on the same graph; the wrapped side
    // merely routes through the inert wrapper.
    let n = 256usize;
    let p = (12.0 * (n as f64).ln() / n as f64).min(1.0);
    let params = PpmParams::new(n, 2, p, (p / 40.0).min(1.0)).unwrap();
    let (graph, _) = generate_ppm(&params, 20190416).unwrap();
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    let algorithm = CdrwConfig::builder().seed(20190416).delta(delta).build();
    let config = KMachineConfig::new(2)
        .with_congest(CongestConfig::new(algorithm))
        .with_partition_seed(20190416);
    let bare = KMachineEngine::new(config).unwrap();
    let wrapped = KMachineEngine::new(config)
        .unwrap()
        .with_fault_plan(FaultPlan::fault_free());

    let best_of = |engine: &KMachineEngine| {
        let mut best = f64::INFINITY;
        for _ in 0..6 {
            let start = Instant::now();
            let report = engine.run(&graph).unwrap();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            assert!(report.fault_log.is_clean());
        }
        best
    };
    let bare_ms = best_of(&bare);
    let wrapped_ms = best_of(&wrapped);
    assert!(
        wrapped_ms <= bare_ms * 1.1,
        "fault-free chaos wrapper at {:.3}x of the bare sharded run, above \
         the 1.1x acceptance bar (wrapped {wrapped_ms:.1} ms, bare {bare_ms:.1} ms)",
        wrapped_ms / bare_ms
    );
}

#[test]
#[ignore = "timing assertion — run by the CI perf-smoke job with -- --ignored"]
fn batched_stepping_does_not_lose_to_sequential_stepping() {
    // Four overlapping walks inside one block of a fig4a instance — the
    // ensemble's follow-up shape. Batching reads the CSR once per step for
    // all four lanes; it must be at least par with four solo traversals
    // (the win grows with graph size as the CSR stops fitting in cache).
    let n = 4096usize;
    let ln_n = (n as f64).ln();
    let p = 2.0 * ln_n * ln_n / n as f64;
    let q = p / (2f64.powf(0.6) * ln_n);
    let params = PpmParams::new(n, 8, p, q).unwrap();
    let (graph, _) = generate_ppm(&params, 20190416).unwrap();
    let engine = WalkEngine::new(&graph);
    let seeds: Vec<usize> = (0..4).collect();
    const STEPS: usize = 6;

    let mut batch = WalkBatch::for_graph(&graph);
    let mut workspace = engine.workspace();
    let best_of = |routine: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..6 {
            let start = Instant::now();
            for _ in 0..4 {
                routine();
            }
            best = best.min(start.elapsed().as_nanos() as f64 / 4.0);
        }
        best
    };
    let batched_ns = best_of(&mut || {
        batch.load_point_masses(&seeds).unwrap();
        for _ in 0..STEPS {
            engine.step_batch(&mut batch);
        }
    });
    let sequential_ns = best_of(&mut || {
        for &seed in &seeds {
            workspace.load_point_mass(seed).unwrap();
            for _ in 0..STEPS {
                engine.step(&mut workspace);
            }
        }
    });
    // Generous slack: the claim is "batching is not a pessimisation" — its
    // real win is DRAM traffic on large graphs, which a CI container's
    // cache hierarchy may hide entirely.
    assert!(
        batched_ns <= sequential_ns * 1.5,
        "batched stepping {batched_ns:.0} ns much slower than sequential {sequential_ns:.0} ns"
    );
}

#[test]
#[ignore = "timing assertion — run by the CI perf-smoke job with -- --ignored"]
fn work_stealing_scales_with_four_workers() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping work-stealing scaling check: only {cores} core(s) available");
        return;
    }
    // A fig4a-shaped 8-block instance with enough seeds that the atomic
    // cursor gets exercised (claims are chunked, so a seed count well above
    // workers × chunk matters). Per-seed detection cost varies with how far
    // each walk's candidate sequence runs, which is exactly the skew
    // work stealing absorbs and static striping cannot.
    let n = 4096usize;
    let ln_n = (n as f64).ln();
    let p = 2.0 * ln_n * ln_n / n as f64;
    let q = p / (2f64.powf(0.6) * ln_n);
    let params = PpmParams::new(n, 8, p, q).unwrap();
    let (graph, _) = generate_ppm(&params, 20190416).unwrap();
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    let cdrw = Cdrw::new(CdrwConfig::builder().seed(20190416).delta(delta).build());
    let num_seeds = 48usize;

    let best_of = |workers: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let result = cdrw
                .detect_parallel_with_workers(&graph, num_seeds, workers)
                .unwrap();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            assert!(!result.detections().is_empty());
        }
        best
    };
    let single_ms = best_of(1);
    let parallel_ms = best_of(4);
    assert!(
        parallel_ms * 1.5 <= single_ms,
        "work-stealing with 4 workers is {parallel_ms:.0} ms vs {single_ms:.0} ms \
         single-worker: speedup {:.2}x below the 1.5x acceptance bar",
        single_ms / parallel_ms
    );
}

#[test]
#[ignore = "timing assertion — run by the CI perf-smoke job with -- --ignored"]
fn bit_packed_batch_stepping_does_not_lose_to_the_stamped_layout() {
    // Same shape as the batched-vs-sequential check, but against the
    // preserved pre-change layout: the bit-packed mask + compact live-lane
    // scratch must be at least on par with the 8-bytes-per-vertex epoch
    // stamps it replaced. The memory win (64× less bookkeeping state) is the
    // point of the rewrite; this guards the "and no slower" half of the
    // claim.
    let n = 8192usize;
    let ln_n = (n as f64).ln();
    let p = 2.0 * ln_n * ln_n / n as f64;
    let q = p / (2f64.powf(0.6) * ln_n);
    let params = PpmParams::new(n, 8, p, q).unwrap();
    let (graph, _) = generate_ppm(&params, 20190416).unwrap();
    let engine = WalkEngine::new(&graph);
    let seeds: Vec<usize> = (0..6).collect();
    const STEPS: usize = 8;

    let mut masked = WalkBatch::for_graph(&graph);
    let mut stamped = stamp_reference::StampBatch::for_graph(&graph);
    let best_of = |routine: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..6 {
            let start = Instant::now();
            for _ in 0..4 {
                routine();
            }
            best = best.min(start.elapsed().as_nanos() as f64 / 4.0);
        }
        best
    };
    let masked_ns = best_of(&mut || {
        masked.load_point_masses(&seeds).unwrap();
        for _ in 0..STEPS {
            engine.step_batch(&mut masked);
        }
    });
    let stamped_ns = best_of(&mut || {
        stamped.load_point_masses(&seeds).unwrap();
        for _ in 0..STEPS {
            stamp_reference::step_batch_stamped(&engine, &mut stamped);
        }
    });
    // 1.15× slack covers scheduler jitter on a shared runner; both sides are
    // best-of-samples over identical work.
    assert!(
        masked_ns <= stamped_ns * 1.15,
        "bit-packed batch stepping {masked_ns:.0} ns slower than the stamped \
         reference layout {stamped_ns:.0} ns"
    );
}
