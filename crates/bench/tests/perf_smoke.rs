//! Perf-smoke acceptance tests for the PR-5 hot-loop work.
//!
//! These pin the *shape* of the speedups, not wall-clock absolutes: the
//! prefix-scan sweep must beat the per-size reference by a wide margin on a
//! fig4a-sized instance (the acceptance bar is ≥ 5×; the measured ratio is
//! typically well above 15× in release mode), and batched stepping must not
//! lose to sequential stepping on overlapping walks. Both measurements are
//! best-of-samples, so scheduler noise shifts the ratio, not the verdict.

use cdrw_bench::perf;
use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_walk::{WalkBatch, WalkEngine};
use std::time::Instant;

// Both tests are #[ignore]d so the accuracy job and plain `cargo test` stay
// timing-deterministic; the CI perf-smoke job runs them explicitly with
// `-- --ignored` in release mode.
#[test]
#[ignore = "timing assertion — run by the CI perf-smoke job with -- --ignored"]
fn prefix_scan_sweep_is_at_least_5x_faster_on_a_fig4a_instance() {
    let measured = perf::measure_sweep_speedup();
    assert_eq!(measured.n, 2048, "quick-scale fig4a size");
    assert!(
        measured.support > measured.n / 2,
        "the walk state must exercise long candidate prefixes, support = {}",
        measured.support
    );
    assert!(
        measured.speedup() >= 5.0,
        "prefix-scan sweep speedup {:.1}x below the 5x acceptance bar \
         (per-size {:.0} ns, prefix {:.0} ns)",
        measured.speedup(),
        measured.per_size_ns,
        measured.prefix_ns
    );
}

#[test]
#[ignore = "timing assertion — run by the CI perf-smoke job with -- --ignored"]
fn batched_stepping_does_not_lose_to_sequential_stepping() {
    // Four overlapping walks inside one block of a fig4a instance — the
    // ensemble's follow-up shape. Batching reads the CSR once per step for
    // all four lanes; it must be at least par with four solo traversals
    // (the win grows with graph size as the CSR stops fitting in cache).
    let n = 4096usize;
    let ln_n = (n as f64).ln();
    let p = 2.0 * ln_n * ln_n / n as f64;
    let q = p / (2f64.powf(0.6) * ln_n);
    let params = PpmParams::new(n, 8, p, q).unwrap();
    let (graph, _) = generate_ppm(&params, 20190416).unwrap();
    let engine = WalkEngine::new(&graph);
    let seeds: Vec<usize> = (0..4).collect();
    const STEPS: usize = 6;

    let mut batch = WalkBatch::for_graph(&graph);
    let mut workspace = engine.workspace();
    let best_of = |routine: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..6 {
            let start = Instant::now();
            for _ in 0..4 {
                routine();
            }
            best = best.min(start.elapsed().as_nanos() as f64 / 4.0);
        }
        best
    };
    let batched_ns = best_of(&mut || {
        batch.load_point_masses(&seeds).unwrap();
        for _ in 0..STEPS {
            engine.step_batch(&mut batch);
        }
    });
    let sequential_ns = best_of(&mut || {
        for &seed in &seeds {
            workspace.load_point_mass(seed).unwrap();
            for _ in 0..STEPS {
                engine.step(&mut workspace);
            }
        }
    });
    // Generous slack: the claim is "batching is not a pessimisation" — its
    // real win is DRAM traffic on large graphs, which a CI container's
    // cache hierarchy may hide entirely.
    assert!(
        batched_ns <= sequential_ns * 1.5,
        "batched stepping {batched_ns:.0} ns much slower than sequential {sequential_ns:.0} ns"
    );
}
