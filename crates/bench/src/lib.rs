//! # cdrw-bench
//!
//! Experiment harness reproducing every figure and complexity claim of
//! *Efficient Distributed Community Detection in the Stochastic Block Model*
//! (ICDCS 2019). The [`experiments`] module exposes one function per
//! experiment; each returns structured rows that the `experiments` binary
//! prints as the paper-shaped tables, and the Criterion benches under
//! `benches/` time the underlying operations on the same workloads.
//!
//! | experiment | paper artefact | function |
//! |---|---|---|
//! | E1 | Figure 1 (PPM showcase) | [`experiments::showcase::figure1`] |
//! | E2 | Figure 2 (Gnp single community) | [`experiments::gnp_single::figure2`] |
//! | E3 | Figure 3 (two blocks, p/q sweep) | [`experiments::two_blocks::figure3`] |
//! | E4 | Figure 4a/4b (varying r) | [`experiments::vary_r::figure4`] |
//! | E5 | Theorem 5/6 (CONGEST rounds & messages) | [`experiments::distributed::congest_scaling`] |
//! | E6 | §III-B (k-machine scaling) | [`experiments::distributed::kmachine_scaling`] |
//! | E7 | §II positioning (baseline comparison) | [`experiments::baselines::baseline_comparison`] |
//! | E8 | design ablations | [`experiments::ablations::ablations`] |
//! | E9 | beyond the paper: degree-corrected SBM | [`experiments::heterogeneous::dcsbm_comparison`] |
//! | E10 | beyond the paper: weighted PPM | [`experiments::heterogeneous::weighted_ppm_comparison`] |
//! | E11 | beyond the paper: real dataset files | [`experiments::dataset::dataset_table`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod perf;
pub mod table;

use cdrw_core::{AssemblyPolicy, EnsemblePolicy, MixingCriterion};
use serde::{Deserialize, Serialize};

/// The algorithm-variant axes every CDRW experiment run is parameterised by:
/// the mixing criterion of the sweep, the evidence-aggregation ensemble
/// policy and the global assembly policy. Constructed from the
/// `--criterion` / `--ensemble` / `--assembly` command-line axes of the
/// `experiments` binary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunOptions {
    /// The mixing criterion every CDRW run uses.
    pub criterion: MixingCriterion,
    /// The ensemble policy every CDRW run uses.
    pub ensemble: EnsemblePolicy,
    /// The global assembly policy every CDRW run uses.
    pub assembly: AssemblyPolicy,
}

impl RunOptions {
    /// Options running a given criterion single-walk.
    pub fn with_criterion(criterion: MixingCriterion) -> Self {
        RunOptions {
            criterion,
            ensemble: EnsemblePolicy::Single,
            assembly: AssemblyPolicy::Raw,
        }
    }

    /// Short label for table titles, e.g. `renormalized`,
    /// `renormalized + ensemble(5/2)` or
    /// `renormalized + ensemble(5/2) + assembly(4/3)`.
    pub fn label(&self) -> String {
        let mut label = self.criterion.to_string();
        if let EnsemblePolicy::Ensemble { walks, quorum } = self.ensemble {
            label.push_str(&format!(" + ensemble({walks}/{quorum})"));
        }
        match self.assembly {
            AssemblyPolicy::Raw => {}
            AssemblyPolicy::Pooled { reseed: 0, .. } => label.push_str(" + assembly(reconcile)"),
            AssemblyPolicy::Pooled { reseed, quorum } => {
                label.push_str(&format!(" + assembly({reseed}/{quorum})"));
            }
        }
        label
    }
}

impl From<MixingCriterion> for RunOptions {
    fn from(criterion: MixingCriterion) -> Self {
        RunOptions::with_criterion(criterion)
    }
}

impl std::fmt::Display for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Global scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small sizes and few trials: seconds per experiment, used by CI, the
    /// Criterion benches and the integration tests.
    Quick,
    /// Beyond the paper's sizes (Figure 2 up to `n = 2¹⁴`, Figure 3 at
    /// `n = 2¹³`, Figure 4 blocks of `2¹²`) and more trials: minutes per
    /// experiment, used to fill EXPERIMENTS.md. Affordable since the
    /// prefix-scan sweep and batched multi-walk stepping removed the
    /// per-step inner-loop bottleneck.
    Full,
    /// Million-vertex scale: Figure 2 up to `n = 2²⁰`, PPM blocks of `2¹⁸`,
    /// a single trial per point. Affordable since the bit-packed walk state
    /// and the work-stealing parallel driver removed the constant-factor
    /// and core-count bottlenecks. Every Huge experiment runs under a
    /// wall-clock budget ([`Scale::budget`]): when the budget expires the
    /// remaining points are skipped and the emitted table is marked
    /// truncated, so a runaway configuration degrades into a smaller table
    /// instead of a hung CI job.
    Huge,
}

impl Scale {
    /// Number of independent trials (fresh graphs) averaged per data point.
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Full => 4,
            Scale::Huge => 1,
        }
    }

    /// The per-experiment wall-clock budget, if this scale enforces one.
    ///
    /// Only [`Scale::Huge`] is budgeted: 30 minutes per experiment, sized so
    /// a full Figure-2 run at `n = 2²⁰` (three `p` series, the densest at
    /// mean degree `2·ln² n ≈ 380`) finishes with clear headroom on one
    /// CI core — see the committed trajectory under `ci/baselines/`.
    pub fn budget(self) -> Option<std::time::Duration> {
        match self {
            Scale::Quick | Scale::Full => None,
            Scale::Huge => Some(std::time::Duration::from_secs(30 * 60)),
        }
    }
}

/// A wall-clock budget an experiment checks between units of work.
///
/// Construct one from [`Scale::budget`] at the top of an experiment; call
/// [`BudgetClock::expired`] before each data point (or trial) and stop
/// early when it fires. The clock never interrupts a unit of work — budget
/// enforcement is cooperative, so a table is always cut at a point
/// boundary, never mid-measurement.
#[derive(Debug)]
pub struct BudgetClock {
    started: std::time::Instant,
    budget: Option<std::time::Duration>,
}

impl BudgetClock {
    /// Starts the clock with the given budget (`None` = unlimited).
    pub fn start(budget: Option<std::time::Duration>) -> Self {
        BudgetClock {
            started: std::time::Instant::now(),
            budget,
        }
    }

    /// Starts the clock for a scale's budget.
    pub fn for_scale(scale: Scale) -> Self {
        Self::start(scale.budget())
    }

    /// Whether the budget has run out (`false` forever when unlimited).
    pub fn expired(&self) -> bool {
        match self.budget {
            Some(budget) => self.started.elapsed() >= budget,
            None => false,
        }
    }

    /// Milliseconds elapsed since the clock started.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }
}

/// One data point of one series of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Name of the series (legend entry), e.g. `"p = 2·ln n/n"`.
    pub series: String,
    /// The x-coordinate label, e.g. `"n = 1024"` or `"r = 4"`.
    pub x_label: String,
    /// The measured value (an F-score for the accuracy figures, rounds or
    /// messages for the complexity experiments).
    pub value: f64,
    /// Optional companion values (e.g. precision/recall, or a theoretical
    /// prediction), keyed by short column names.
    pub extras: Vec<(String, f64)>,
}

impl DataPoint {
    /// Creates a data point without extras.
    pub fn new(series: impl Into<String>, x_label: impl Into<String>, value: f64) -> Self {
        DataPoint {
            series: series.into(),
            x_label: x_label.into(),
            value,
            extras: Vec::new(),
        }
    }

    /// Adds a companion column.
    pub fn with_extra(mut self, name: impl Into<String>, value: f64) -> Self {
        self.extras.push((name.into(), value));
        self
    }
}

/// The reproduction of one figure or table: a title, the name of the value
/// column and the collected data points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Human-readable title (printed above the table).
    pub title: String,
    /// Name of the value column (e.g. `"F-score"` or `"rounds/community"`).
    pub value_name: String,
    /// The data points, grouped by series in the order produced.
    pub points: Vec<DataPoint>,
    /// Whether the experiment's wall-clock budget expired before all
    /// planned points ran ([`BudgetClock`]); a truncated table is still
    /// valid for every point it contains.
    pub truncated: bool,
}

impl FigureResult {
    /// Creates an empty figure result.
    pub fn new(title: impl Into<String>, value_name: impl Into<String>) -> Self {
        FigureResult {
            title: title.into(),
            value_name: value_name.into(),
            points: Vec::new(),
            truncated: false,
        }
    }

    /// Appends a data point.
    pub fn push(&mut self, point: DataPoint) {
        self.points.push(point);
    }

    /// Marks the figure as cut short by its wall-clock budget.
    pub fn mark_truncated(&mut self) {
        self.truncated = true;
    }

    /// All distinct series names, in first-appearance order.
    pub fn series_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for point in &self.points {
            if !names.contains(&point.series) {
                names.push(point.series.clone());
            }
        }
        names
    }

    /// The values of one series, in insertion order.
    pub fn series_values(&self, series: &str) -> Vec<f64> {
        self.points
            .iter()
            .filter(|p| p.series == series)
            .map(|p| p.value)
            .collect()
    }

    /// Minimum value across all points (`f64::INFINITY` when empty).
    pub fn min_value(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.value)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the figure as an aligned text table (see [`table::render`]).
    pub fn to_table(&self) -> String {
        table::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_trials() {
        assert!(Scale::Full.trials() > Scale::Quick.trials());
        assert_eq!(Scale::Huge.trials(), 1);
    }

    #[test]
    fn only_the_huge_scale_is_budgeted() {
        assert!(Scale::Quick.budget().is_none());
        assert!(Scale::Full.budget().is_none());
        assert!(Scale::Huge.budget().is_some());
    }

    #[test]
    fn budget_clock_expires_only_under_a_budget() {
        let unlimited = BudgetClock::start(None);
        assert!(!unlimited.expired());
        assert!(unlimited.elapsed_ms() >= 0.0);
        let instant = BudgetClock::start(Some(std::time::Duration::ZERO));
        assert!(instant.expired());
        assert!(!BudgetClock::for_scale(Scale::Huge).expired());
    }

    #[test]
    fn truncation_marking() {
        let mut figure = FigureResult::new("t", "v");
        assert!(!figure.truncated);
        figure.mark_truncated();
        assert!(figure.truncated);
    }

    #[test]
    fn figure_result_accessors() {
        let mut figure = FigureResult::new("Fig X", "F-score");
        figure.push(DataPoint::new("a", "n=1", 0.5).with_extra("precision", 0.6));
        figure.push(DataPoint::new("a", "n=2", 0.7));
        figure.push(DataPoint::new("b", "n=1", 0.9));
        assert_eq!(
            figure.series_names(),
            vec!["a".to_string(), "b".to_string()]
        );
        assert_eq!(figure.series_values("a"), vec![0.5, 0.7]);
        assert_eq!(figure.points[0].extras[0].0, "precision");
        let rendered = figure.to_table();
        assert!(rendered.contains("Fig X"));
        assert!(rendered.contains("F-score"));
    }
}
