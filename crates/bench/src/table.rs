//! Plain-text table rendering for the experiment harness.

use crate::FigureResult;

/// Renders a [`FigureResult`] as an aligned text table:
///
/// ```text
/// == Figure 2: ... ==
/// series              | x        | F-score | precision | recall
/// --------------------+----------+---------+-----------+-------
/// p = 2·ln n/n        | n = 128  | 0.971   | 0.985     | 0.958
/// ```
pub fn render(figure: &FigureResult) -> String {
    let mut extra_names: Vec<String> = Vec::new();
    for point in &figure.points {
        for (name, _) in &point.extras {
            if !extra_names.contains(name) {
                extra_names.push(name.clone());
            }
        }
    }

    let mut header = vec![
        "series".to_string(),
        "x".to_string(),
        figure.value_name.clone(),
    ];
    header.extend(extra_names.iter().cloned());

    let mut rows: Vec<Vec<String>> = Vec::new();
    for point in &figure.points {
        let mut row = vec![
            point.series.clone(),
            point.x_label.clone(),
            format_value(point.value),
        ];
        for name in &extra_names {
            let value = point
                .extras
                .iter()
                .find(|(extra, _)| extra == name)
                .map(|(_, v)| format_value(*v))
                .unwrap_or_else(|| "-".to_string());
            row.push(value);
        }
        rows.push(row);
    }

    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = format!("== {} ==\n", figure.title);
    out.push_str(&render_row(&header, &widths));
    out.push_str(&render_separator(&widths));
    for row in &rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

fn render_row(cells: &[String], widths: &[usize]) -> String {
    let padded: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(cell, &width)| format!("{cell:<width$}"))
        .collect();
    format!("{}\n", padded.join(" | "))
}

fn render_separator(widths: &[usize]) -> String {
    let dashes: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    format!("{}\n", dashes.join("-+-"))
}

fn format_value(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1_000_000.0 {
        format!("{:.3e}", value)
    } else if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataPoint;

    #[test]
    fn renders_aligned_columns_and_extras() {
        let mut figure = FigureResult::new("Test figure", "F-score");
        figure.push(DataPoint::new("series-one", "n = 128", 0.97).with_extra("recall", 0.9));
        figure.push(DataPoint::new("s2", "n = 4096", 1.0));
        let text = render(&figure);
        assert!(text.starts_with("== Test figure =="));
        assert!(text.contains("series-one"));
        assert!(text.contains("recall"));
        // Missing extras render as '-'.
        assert!(text.lines().last().unwrap().contains('-'));
        // All data lines have the same number of column separators.
        let counts: Vec<usize> = text
            .lines()
            .skip(1)
            .filter(|l| !l.is_empty())
            .map(|l| l.matches(" | ").count() + l.matches("-+-").count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn formats_large_and_small_values() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(0.12345), "0.1235");
        assert_eq!(format_value(123.456), "123.5");
        assert!(format_value(12_345_678.0).contains('e'));
    }
}
