//! Wall-clock regression gate: diffs a fresh `BENCH_results.json` against a
//! committed baseline and fails on regressions.
//!
//! ```text
//! perf_gate BASELINE.json CURRENT.json [--max-ratio 1.5]
//! ```
//!
//! For every figure present in both files the gate compares `wall_clock_ms`
//! and fails (exit 1) when the current run is more than `max-ratio` times
//! slower than the baseline. Tables faster than the baseline, or new tables
//! with no baseline entry, never fail — the gate only guards against
//! slowdowns. Two guards keep the gate honest on CI's noisy shared runners:
//!
//! * tables cheaper than 100 ms in the baseline are skipped (scheduler
//!   jitter dominates at that granularity), and
//! * a truncated current table fails outright — a run that blew its
//!   wall-clock budget is a regression even though its recorded elapsed
//!   time looks small.
//!
//! Regenerating the baseline after an intentional perf change:
//!
//! ```text
//! cargo run --release -p cdrw-bench --bin experiments -- \
//!     fig2-smoke --json ci/baselines/perf_smoke.json
//! ```
//!
//! then commit the updated file (see `ci/baselines/README.md`).

use cdrw_bench::json::Json;

/// Baseline tables cheaper than this are not gated: at sub-100 ms scale the
/// runner's scheduler jitter exceeds any real regression signal.
const MIN_GATED_BASELINE_MS: f64 = 100.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<&String> = positional_paths(&args);
    let (baseline_path, current_path) = match paths.as_slice() {
        [b, c] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: perf_gate BASELINE.json CURRENT.json [--max-ratio 1.5]");
            std::process::exit(2);
        }
    };
    let max_ratio = match parse_max_ratio(&args) {
        Ok(ratio) => ratio,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let baseline = load(baseline_path);
    let current = load(current_path);

    match gate(&baseline, &current, max_ratio) {
        Ok(report) => {
            print!("{report}");
            println!("perf gate passed (max allowed ratio {max_ratio}×)");
        }
        Err(failures) => {
            eprint!("{failures}");
            eprintln!("perf gate FAILED (max allowed ratio {max_ratio}×)");
            std::process::exit(1);
        }
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|error| {
        eprintln!("failed to read {path}: {error}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|error| {
        eprintln!("failed to parse {path}: {error}");
        std::process::exit(2);
    })
}

/// The `(name, wall_clock_ms, truncated)` rows of a results document.
fn figures(document: &Json) -> Vec<(String, f64, bool)> {
    document
        .get("figures")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|figure| {
            let name = figure.get("name")?.as_str()?.to_string();
            let wall_clock_ms = figure.get("wall_clock_ms")?.as_f64()?;
            let truncated = figure
                .get("truncated")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            Some((name, wall_clock_ms, truncated))
        })
        .collect()
}

/// Compares every gated table; `Ok` carries the per-table report, `Err` the
/// failure lines.
fn gate(baseline: &Json, current: &Json, max_ratio: f64) -> Result<String, String> {
    let baseline_figures = figures(baseline);
    let mut report = String::new();
    let mut failures = String::new();
    for (name, current_ms, truncated) in figures(current) {
        if truncated {
            failures.push_str(&format!(
                "  {name}: current run was TRUNCATED by its wall-clock budget\n"
            ));
            continue;
        }
        let Some((_, baseline_ms, _)) = baseline_figures.iter().find(|(b, _, _)| *b == name) else {
            report.push_str(&format!(
                "  {name}: {current_ms:.0} ms (no baseline entry, not gated)\n"
            ));
            continue;
        };
        if *baseline_ms < MIN_GATED_BASELINE_MS {
            report.push_str(&format!(
                "  {name}: {current_ms:.0} ms vs {baseline_ms:.0} ms baseline \
                 (below {MIN_GATED_BASELINE_MS:.0} ms, not gated)\n"
            ));
            continue;
        }
        let ratio = current_ms / baseline_ms;
        let line =
            format!("  {name}: {current_ms:.0} ms vs {baseline_ms:.0} ms baseline ({ratio:.2}×)\n");
        if ratio > max_ratio {
            failures.push_str(&line);
        } else {
            report.push_str(&line);
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

/// The positional (non-flag) arguments: everything that is not a `--flag`
/// and not the value consumed by a space-separated `--max-ratio`.
fn positional_paths(args: &[String]) -> Vec<&String> {
    let mut paths = Vec::new();
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if arg == "--max-ratio" {
            skip_next = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        paths.push(arg);
    }
    paths
}

/// Parses `--max-ratio X` or `--max-ratio=X`; defaults to 1.5.
fn parse_max_ratio(args: &[String]) -> Result<f64, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--max-ratio=") {
            inline
        } else if arg == "--max-ratio" {
            args.get(i + 1)
                .ok_or("--max-ratio needs a value (e.g. --max-ratio 1.5)")?
        } else {
            continue;
        };
        let ratio: f64 = value
            .parse()
            .map_err(|_| format!("invalid --max-ratio {value:?}"))?;
        if !ratio.is_finite() || ratio < 1.0 {
            return Err(format!(
                "--max-ratio must be a finite number ≥ 1, got {ratio}"
            ));
        }
        return Ok(ratio);
    }
    Ok(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn document(rows: &[(&str, f64, bool)]) -> Json {
        let figures: Vec<Json> = rows
            .iter()
            .map(|(name, ms, truncated)| {
                Json::object()
                    .set("name", *name)
                    .set("wall_clock_ms", *ms)
                    .set("truncated", *truncated)
            })
            .collect();
        Json::object().set("figures", figures)
    }

    #[test]
    fn passes_within_ratio_and_fails_beyond_it() {
        let baseline = document(&[("fig2-smoke", 1000.0, false)]);
        let ok = document(&[("fig2-smoke", 1400.0, false)]);
        let slow = document(&[("fig2-smoke", 1600.0, false)]);
        assert!(gate(&baseline, &ok, 1.5).is_ok());
        assert!(gate(&baseline, &slow, 1.5).is_err());
    }

    #[test]
    fn sub_threshold_baselines_and_new_tables_are_not_gated() {
        let baseline = document(&[("cheap", 20.0, false)]);
        let current = document(&[("cheap", 500.0, false), ("new-table", 9999.0, false)]);
        assert!(gate(&baseline, &current, 1.5).is_ok());
    }

    #[test]
    fn truncated_current_tables_fail() {
        let baseline = document(&[("fig2-smoke", 1000.0, false)]);
        let truncated = document(&[("fig2-smoke", 10.0, true)]);
        assert!(gate(&baseline, &truncated, 1.5).is_err());
    }

    #[test]
    fn positional_paths_skip_flags_and_their_values() {
        let args: Vec<String> = ["base.json", "--max-ratio", "1.5", "current.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(positional_paths(&args), vec!["base.json", "current.json"]);
        let inline: Vec<String> = ["--max-ratio=2", "base.json", "current.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(positional_paths(&inline), vec!["base.json", "current.json"]);
    }

    #[test]
    fn max_ratio_parsing() {
        assert_eq!(parse_max_ratio(&[]).unwrap(), 1.5);
        let args = vec!["--max-ratio".to_string(), "2".to_string()];
        assert_eq!(parse_max_ratio(&args).unwrap(), 2.0);
        let inline = vec!["--max-ratio=1.25".to_string()];
        assert_eq!(parse_max_ratio(&inline).unwrap(), 1.25);
        assert!(parse_max_ratio(&["--max-ratio".to_string(), "0.5".to_string()]).is_err());
        assert!(parse_max_ratio(&["--max-ratio".to_string(), "nan".to_string()]).is_err());
    }
}
