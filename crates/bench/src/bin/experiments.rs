//! Experiment driver: regenerates every figure/table of the paper as text
//! tables on stdout.
//!
//! ```text
//! experiments [--full | --huge] [--criterion NAME] [--ensemble WALKS[:QUORUM]]
//!             [--assembly raw|reconcile|RESEED[:QUORUM]] [--kmachine K] [--json PATH]
//!             [--dataset PATH] [--fault-plan JSON]
//!             [fig1|fig2|fig2-smoke|fig3|fig4a|fig4b|congest|kmachine|kmachine-exec|baselines|ablations|dcsbm|weighted|churn|chaos|all]
//! ```
//!
//! Without arguments it runs everything at quick scale. `--full` switches to
//! the full sizes (Figure 2 up to `n = 2¹⁴`; minutes instead of seconds);
//! the output of a `--full` run is recorded in `EXPERIMENTS.md`. `--huge`
//! switches to the million-vertex tier (Figure 2 up to `n = 2²⁰`, PPM blocks
//! of `2¹⁸`, one trial per point) where every experiment runs under a
//! wall-clock budget and tables cut short by it are marked truncated.
//! `fig2-smoke` — the single pinned Figure-2 cell at `n = 2¹⁷` CI's
//! perf-smoke job times — must be selected explicitly; it is not part of
//! `all`. So must `churn` — the streaming-service bench (sustained edge
//! churn plus query load, incremental vs full refresh on an 8-block PPM),
//! whose value column is wall-clock and which CI's perf-smoke job gates
//! alongside the smoke cells. `chaos` — the fault-tolerant sharded runtime
//! under seeded fault plans, checked cell by cell against the sequential
//! oracle — is explicit-only for the same reason; `--kmachine K` pins its
//! shard sweep and `--fault-plan JSON` replaces its plan matrix with one
//! explicit plan (the repro path a failing cell prints).
//! `--criterion` selects the mixing criterion every CDRW run uses (`strict`,
//! `lazy`, `lazy:<α>`, `renormalized`, `adaptive`); the default is the
//! library default, `renormalized`. `--ensemble` turns on multi-seed
//! evidence aggregation with the given walk count and vote quorum
//! (`--ensemble 5:2`; the quorum defaults to `max(1, walks / 2)` when
//! omitted); the default is single-walk. `--assembly` selects the global
//! assembly policy: `raw` (first claim wins, the default), `reconcile`
//! (cross-detection evidence pooling without re-seed walks) or
//! `RESEED[:QUORUM]` for pooling plus that many cross-detection re-seed
//! walks per merged group (`--assembly 4:3`; the quorum defaults to
//! `max(1, ⌈reseed/2⌉)`). The `ablations` experiment always compares all
//! criteria, ensemble policies and assembly policies head-to-head regardless
//! of the flags. `kmachine-exec` runs the pipeline on the *real* sharded
//! execution engine (worker threads exchanging probability-mass deltas) and
//! records measured-vs-modelled message counts; `--kmachine K` pins its
//! shard count to a single `K` instead of the default `{1, 2, 4, 8}` sweep.
//! `dcsbm` (alias `--dcsbm`) scores CDRW with ensemble + assembly against
//! all four baselines on degree-corrected SBM instances of growing
//! propensity spread, and `weighted` (alias `--weighted`) does the same on
//! weighted PPM instances of growing intra/inter weight contrast; both are
//! part of `all`, and both upgrade a default single-walk/raw variant to
//! ensemble(5/2) + assembly(4/3). `--dataset PATH` reads a real graph file
//! (METIS when the extension is `.graph`/`.metis`, whitespace edge list
//! with an optional weight column otherwise) and runs the full stack on it
//! end to end, reporting graph shape and detection structure with `δ`
//! estimated by the sweep.
//!
//! `--json PATH` additionally writes the whole run as machine-readable JSON
//! (per-point F / partition-F values, congest round/message costs, per-table
//! wall-clock milliseconds and budget verdicts, the worker-thread count, and
//! the prefix-sweep micro-perf reading) — CI uploads it as
//! `BENCH_results.json` so the perf trajectory is recorded run over run, and
//! the `perf_gate` binary diffs the wall-clocks against the committed
//! baselines under `ci/baselines/`.

use std::time::Instant;

use cdrw_bench::experiments::{
    ablations, baselines, chaos, churn, dataset, distributed, gnp_single, heterogeneous, showcase,
    two_blocks, vary_r,
};
use cdrw_bench::json::Json;
use cdrw_bench::{perf, FigureResult, RunOptions, Scale};
use cdrw_core::{AssemblyPolicy, EnsemblePolicy, MixingCriterion};
use cdrw_kmachine::FaultPlan;

const BASE_SEED: u64 = 20190416; // the paper's arXiv submission date, for flavour

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let huge = args.iter().any(|a| a == "--huge");
    if full && huge {
        eprintln!("--full and --huge are mutually exclusive");
        std::process::exit(2);
    }
    let scale = if huge {
        Scale::Huge
    } else if full {
        Scale::Full
    } else {
        Scale::Quick
    };
    let criterion = match parse_criterion(&args) {
        Ok(criterion) => criterion,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let ensemble = match parse_ensemble(&args) {
        Ok(ensemble) => ensemble,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let assembly = match parse_assembly(&args) {
        Ok(assembly) => assembly,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let json_path = match parse_json_path(&args) {
        Ok(path) => path,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let kmachine_k = match parse_kmachine(&args) {
        Ok(k) => k,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let fault_plan = match parse_fault_plan(&args) {
        Ok(plan) => plan,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let options = RunOptions {
        criterion,
        ensemble,
        assembly,
    };
    let dataset_path = match parse_dataset_path(&args) {
        Ok(path) => path,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let mut selected: Vec<&str> = args
        .iter()
        .enumerate()
        // Skip flags and the value following a value-taking flag.
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0
                    || (args[i - 1] != "--criterion"
                        && args[i - 1] != "--ensemble"
                        && args[i - 1] != "--assembly"
                        && args[i - 1] != "--kmachine"
                        && args[i - 1] != "--json"
                        && args[i - 1] != "--dataset"
                        && args[i - 1] != "--fault-plan"))
        })
        .map(|(_, a)| a.as_str())
        .collect();
    // The heterogeneous tables double as flags: `--dcsbm` / `--weighted`
    // select them exactly like the positional spellings do.
    for (flag, name) in [("--dcsbm", "dcsbm"), ("--weighted", "weighted")] {
        if args.iter().any(|a| a == flag) && !selected.contains(&name) {
            selected.push(name);
        }
    }
    let run_all = (selected.is_empty() && dataset_path.is_none()) || selected.contains(&"all");
    let wants = |name: &str| run_all || selected.contains(&name);

    println!(
        "CDRW reproduction experiments ({} scale, {options} variant)\n",
        scale_name(scale)
    );

    // Each experiment's table plus its wall-clock, for the JSON record.
    let mut recorded: Vec<(&'static str, FigureResult, f64)> = Vec::new();
    let mut run = |name: &'static str, figure: fn(Scale, u64, RunOptions) -> FigureResult| {
        let started = Instant::now();
        let result = figure(scale, BASE_SEED, options);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        println!("{}", result.to_table());
        recorded.push((name, result, elapsed_ms));
    };

    if wants("fig1") {
        run("fig1", |_, seed, options| showcase::figure1(seed, options));
    }
    if wants("fig2") {
        run("fig2", gnp_single::figure2);
    }
    // The pinned CI smoke cell runs only when selected by name: it is a
    // timing probe, not one of the paper's figures.
    if selected.contains(&"fig2-smoke") {
        run("fig2-smoke", |_, seed, options| {
            gnp_single::figure2_smoke(seed, options)
        });
    }
    // The churn service bench also runs only when selected by name: its
    // value column is wall-clock, so it belongs to the perf trajectory, not
    // to the paper's figures.
    if selected.contains(&"churn") {
        run("churn", churn::churn_service);
    }
    if wants("fig3") {
        run("fig3", two_blocks::figure3);
    }
    if wants("fig4a") {
        run("fig4a", |scale, seed, options| {
            vary_r::figure4(vary_r::Figure4Variant::FixedBlockSize, scale, seed, options)
        });
    }
    if wants("fig4b") {
        run("fig4b", |scale, seed, options| {
            vary_r::figure4(vary_r::Figure4Variant::FixedGraphSize, scale, seed, options)
        });
    }
    if wants("congest") {
        run("congest", distributed::congest_scaling);
    }
    if wants("kmachine") {
        run("kmachine", distributed::kmachine_scaling);
    }
    if wants("baselines") {
        run("baselines", baselines::baseline_comparison);
    }
    if wants("ablations") {
        run("ablations", |scale, seed, _| {
            ablations::ablations(scale, seed)
        });
    }
    if wants("dcsbm") {
        run("dcsbm", heterogeneous::dcsbm_comparison);
    }
    if wants("weighted") {
        run("weighted", heterogeneous::weighted_ppm_comparison);
    }
    if let Some(path) = &dataset_path {
        // Runs outside the `run` closure: a dataset has no scale axis and
        // can fail on unreadable or malformed files.
        let started = Instant::now();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("failed to read dataset {path}: {error}");
                std::process::exit(2);
            }
        };
        let format = dataset::detect_format(path);
        let outcome = dataset::parse_dataset(&text, format)
            .and_then(|graph| dataset::dataset_table(path, &graph, options));
        match outcome {
            Ok(result) => {
                let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                println!("{}", result.to_table());
                recorded.push(("dataset", result, elapsed_ms));
            }
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }
    // The chaos resilience bench also runs only when selected by name (its
    // value column is wall-clock), and outside the `run` closure: the shard
    // and fault-plan overrides are not part of the common signature.
    if selected.contains(&"chaos") {
        let started = Instant::now();
        let result =
            chaos::chaos_resilience(scale, BASE_SEED, options, kmachine_k, fault_plan.as_ref());
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        println!("{}", result.to_table());
        recorded.push(("chaos", result, elapsed_ms));
    }
    if wants("kmachine-exec") {
        // Runs outside the `run` closure: the shard-count override is not
        // part of the common experiment signature.
        let started = Instant::now();
        let result = distributed::kmachine_execution(scale, BASE_SEED, options, kmachine_k);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        println!("{}", result.to_table());
        recorded.push(("kmachine-exec", result, elapsed_ms));
    }

    if recorded.is_empty() {
        eprintln!(
            "unknown experiment selection {selected:?}; expected one of \
             fig1, fig2, fig2-smoke, fig3, fig4a, fig4b, congest, kmachine, \
             kmachine-exec, baselines, ablations, dcsbm, weighted, churn, \
             chaos, all (or --dataset PATH)"
        );
        std::process::exit(2);
    }

    if let Some(path) = json_path {
        let document = json_document(scale, &options, &recorded);
        if let Err(error) = std::fs::write(&path, document.render()) {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
        println!("wrote machine-readable results to {path}");
    }
}

/// The scale's name as printed in the banner and recorded in the JSON.
fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
        Scale::Huge => "huge",
    }
}

/// Assembles the `BENCH_results.json` document: run metadata (including the
/// worker-thread count the parallel driver used), every experiment's points
/// (value plus extras — partition F for the accuracy figures,
/// rounds/messages for the congest tables) with wall-clock milliseconds and
/// the per-table budget verdict, and the prefix-sweep micro-perf reading.
fn json_document(
    scale: Scale,
    options: &RunOptions,
    recorded: &[(&'static str, FigureResult, f64)],
) -> Json {
    let budget_ms = scale.budget().map(|b| b.as_secs_f64() * 1e3);
    let figures: Vec<Json> = recorded
        .iter()
        .map(|(name, figure, elapsed_ms)| {
            let points: Vec<Json> = figure
                .points
                .iter()
                .map(|point| {
                    let mut extras = Json::object();
                    for (key, value) in &point.extras {
                        extras = extras.set(key, *value);
                    }
                    Json::object()
                        .set("series", point.series.as_str())
                        .set("x", point.x_label.as_str())
                        .set("value", point.value)
                        .set("extras", extras)
                })
                .collect();
            Json::object()
                .set("name", *name)
                .set("title", figure.title.as_str())
                .set("value_name", figure.value_name.as_str())
                .set("wall_clock_ms", *elapsed_ms)
                .set(
                    "budget_ms",
                    budget_ms.map(Json::Number).unwrap_or(Json::Null),
                )
                .set(
                    "within_budget",
                    budget_ms.map(|b| *elapsed_ms <= b).unwrap_or(true),
                )
                .set("truncated", figure.truncated)
                .set("points", points)
        })
        .collect();
    let sweep = perf::measure_sweep_speedup();
    let step = perf::measure_step_overhead();
    let threads_used = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    Json::object()
        .set("scale", scale_name(scale))
        .set("variant", options.label())
        .set("base_seed", BASE_SEED)
        .set("threads_used", threads_used)
        .set("figures", figures)
        .set(
            "perf",
            Json::object()
                .set(
                    "renormalized_sweep",
                    Json::object()
                        .set("n", sweep.n)
                        .set("support", sweep.support)
                        .set("per_size_ns", sweep.per_size_ns)
                        .set("prefix_scan_ns", sweep.prefix_ns)
                        .set("speedup", sweep.speedup()),
                )
                .set(
                    "unweighted_step",
                    Json::object()
                        .set("n", step.n)
                        .set("support", step.support)
                        .set("step_ns", step.step_ns)
                        .set("reference_ns", step.reference_ns)
                        .set("ratio", step.ratio()),
                ),
        )
}

/// Parses `--json PATH` or `--json=PATH` from the raw arguments.
fn parse_json_path(args: &[String]) -> Result<Option<String>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--json=") {
            inline
        } else if arg == "--json" {
            args.get(i + 1)
                .ok_or("--json needs a file path (e.g. --json BENCH_results.json)")?
        } else {
            continue;
        };
        if value.is_empty() {
            return Err("--json needs a non-empty file path".to_string());
        }
        return Ok(Some(value.to_string()));
    }
    Ok(None)
}

/// Parses `--dataset PATH` or `--dataset=PATH`: a graph file to run the full
/// stack on end to end.
fn parse_dataset_path(args: &[String]) -> Result<Option<String>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--dataset=") {
            inline
        } else if arg == "--dataset" {
            args.get(i + 1)
                .ok_or("--dataset needs a file path (e.g. --dataset karate.graph)")?
        } else {
            continue;
        };
        if value.is_empty() {
            return Err("--dataset needs a non-empty file path".to_string());
        }
        return Ok(Some(value.to_string()));
    }
    Ok(None)
}

/// Parses `--fault-plan JSON` or `--fault-plan=JSON`: the single-plan
/// override for the `chaos` experiment, in the format printed by a failing
/// cell's repro line (`experiments::chaos::plan_to_line`).
fn parse_fault_plan(args: &[String]) -> Result<Option<FaultPlan>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--fault-plan=") {
            inline
        } else if arg == "--fault-plan" {
            args.get(i + 1)
                .ok_or("--fault-plan needs a JSON plan (e.g. --fault-plan '{\"seed\": 7}')")?
        } else {
            continue;
        };
        let json = Json::parse(value).map_err(|e| format!("invalid --fault-plan JSON: {e}"))?;
        let plan =
            chaos::plan_from_json(&json).map_err(|e| format!("invalid --fault-plan: {e}"))?;
        return Ok(Some(plan));
    }
    Ok(None)
}

/// Parses `--kmachine K` or `--kmachine=K`: the shard-count override for the
/// `kmachine-exec` execution-engine experiment.
fn parse_kmachine(args: &[String]) -> Result<Option<usize>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--kmachine=") {
            inline
        } else if arg == "--kmachine" {
            args.get(i + 1)
                .ok_or("--kmachine needs a shard count (e.g. --kmachine 4)")?
        } else {
            continue;
        };
        let k: usize = value
            .parse()
            .map_err(|_| format!("invalid shard count {value:?}"))?;
        if k == 0 {
            return Err("--kmachine needs k ≥ 1".to_string());
        }
        return Ok(Some(k));
    }
    Ok(None)
}

/// Parses `--criterion NAME` or `--criterion=NAME` from the raw arguments.
fn parse_criterion(args: &[String]) -> Result<MixingCriterion, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--criterion=") {
            inline
        } else if arg == "--criterion" {
            args.get(i + 1).ok_or(
                "--criterion needs a value (strict, lazy, lazy:<α>, renormalized, adaptive)",
            )?
        } else {
            continue;
        };
        return value.parse();
    }
    Ok(MixingCriterion::default())
}

/// Parses `--ensemble WALKS[:QUORUM]` or `--ensemble=WALKS[:QUORUM]`. The
/// quorum defaults to `max(1, walks / 2)` when omitted.
fn parse_ensemble(args: &[String]) -> Result<EnsemblePolicy, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--ensemble=") {
            inline
        } else if arg == "--ensemble" {
            args.get(i + 1)
                .ok_or("--ensemble needs a value (WALKS or WALKS:QUORUM, e.g. 5:2)")?
        } else {
            continue;
        };
        let (walks_str, quorum_str) = match value.split_once(':') {
            Some((w, q)) => (w, Some(q)),
            None => (value, None),
        };
        let walks: usize = walks_str
            .parse()
            .map_err(|_| format!("invalid ensemble walk count {walks_str:?}"))?;
        let quorum: usize = match quorum_str {
            Some(q) => q
                .parse()
                .map_err(|_| format!("invalid ensemble quorum {q:?}"))?,
            None => (walks / 2).max(1),
        };
        if walks == 0 || quorum == 0 || quorum > walks {
            return Err(format!(
                "ensemble needs walks ≥ 1 and 1 ≤ quorum ≤ walks, got {walks}:{quorum}"
            ));
        }
        return Ok(if walks == 1 {
            EnsemblePolicy::Single
        } else {
            EnsemblePolicy::Ensemble { walks, quorum }
        });
    }
    Ok(EnsemblePolicy::Single)
}

/// Parses `--assembly raw|reconcile|RESEED[:QUORUM]` (or the `=` form). The
/// quorum defaults to `max(1, ⌈reseed/2⌉)` when omitted.
fn parse_assembly(args: &[String]) -> Result<AssemblyPolicy, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--assembly=") {
            inline
        } else if arg == "--assembly" {
            args.get(i + 1)
                .ok_or("--assembly needs a value (raw, reconcile, RESEED or RESEED:QUORUM)")?
        } else {
            continue;
        };
        return match value {
            "raw" => Ok(AssemblyPolicy::Raw),
            "reconcile" => Ok(AssemblyPolicy::reconcile_only()),
            _ => {
                let (reseed_str, quorum_str) = match value.split_once(':') {
                    Some((r, q)) => (r, Some(q)),
                    None => (value, None),
                };
                let reseed: usize = reseed_str
                    .parse()
                    .map_err(|_| format!("invalid assembly re-seed count {reseed_str:?}"))?;
                let quorum: usize = match quorum_str {
                    Some(q) => q
                        .parse()
                        .map_err(|_| format!("invalid assembly quorum {q:?}"))?,
                    None if reseed == 0 => 0,
                    None => reseed.div_ceil(2).max(1),
                };
                if reseed == 0 {
                    // Zero re-seed walks is reconcile-only; a non-zero quorum
                    // with no walks to satisfy it is a contradiction, same as
                    // the builder validation.
                    return if quorum == 0 {
                        Ok(AssemblyPolicy::reconcile_only())
                    } else {
                        Err(format!(
                            "assembly with 0 re-seed walks takes quorum 0, got 0:{quorum}"
                        ))
                    };
                }
                if quorum == 0 || quorum > reseed {
                    return Err(format!(
                        "assembly needs 1 ≤ quorum ≤ reseed, got {reseed}:{quorum}"
                    ));
                }
                Ok(AssemblyPolicy::Pooled { reseed, quorum })
            }
        };
    }
    Ok(AssemblyPolicy::Raw)
}
