//! Experiment driver: regenerates every figure/table of the paper as text
//! tables on stdout.
//!
//! ```text
//! experiments [--full] [--criterion NAME] [--ensemble WALKS[:QUORUM]]
//!             [--assembly raw|reconcile|RESEED[:QUORUM]]
//!             [fig1|fig2|fig3|fig4a|fig4b|congest|kmachine|baselines|ablations|all]
//! ```
//!
//! Without arguments it runs everything at quick scale. `--full` switches to
//! the paper's sizes (minutes instead of seconds); the output of a `--full`
//! run is recorded in `EXPERIMENTS.md`. `--criterion` selects the mixing
//! criterion every CDRW run uses (`strict`, `lazy`, `lazy:<α>`,
//! `renormalized`, `adaptive`); the default is the library default,
//! `renormalized`. `--ensemble` turns on multi-seed evidence aggregation
//! with the given walk count and vote quorum (`--ensemble 5:2`; the quorum
//! defaults to `max(1, walks / 2)` when omitted); the default is
//! single-walk. `--assembly` selects the global assembly policy:
//! `raw` (first claim wins, the default), `reconcile` (cross-detection
//! evidence pooling without re-seed walks) or `RESEED[:QUORUM]` for pooling
//! plus that many cross-detection re-seed walks per merged group
//! (`--assembly 4:3`; the quorum defaults to `max(1, ⌈reseed/2⌉)`). The
//! `ablations` experiment always compares all criteria, ensemble policies
//! and assembly policies head-to-head regardless of the flags.

use cdrw_bench::experiments::{
    ablations, baselines, distributed, gnp_single, showcase, two_blocks, vary_r,
};
use cdrw_bench::{FigureResult, RunOptions, Scale};
use cdrw_core::{AssemblyPolicy, EnsemblePolicy, MixingCriterion};

const BASE_SEED: u64 = 20190416; // the paper's arXiv submission date, for flavour

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let criterion = match parse_criterion(&args) {
        Ok(criterion) => criterion,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let ensemble = match parse_ensemble(&args) {
        Ok(ensemble) => ensemble,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let assembly = match parse_assembly(&args) {
        Ok(assembly) => assembly,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let options = RunOptions {
        criterion,
        ensemble,
        assembly,
    };
    let selected: Vec<&str> = args
        .iter()
        .enumerate()
        // Skip flags and the value following a `--criterion`/`--ensemble`
        // flag.
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0
                    || (args[i - 1] != "--criterion"
                        && args[i - 1] != "--ensemble"
                        && args[i - 1] != "--assembly"))
        })
        .map(|(_, a)| a.as_str())
        .collect();
    let run_all = selected.is_empty() || selected.contains(&"all");
    let wants = |name: &str| run_all || selected.contains(&name);

    println!(
        "CDRW reproduction experiments ({} scale, {options} variant)\n",
        if full { "full" } else { "quick" }
    );

    let mut ran = 0usize;
    if wants("fig1") {
        emit(showcase::figure1(BASE_SEED, options));
        ran += 1;
    }
    if wants("fig2") {
        emit(gnp_single::figure2(scale, BASE_SEED, options));
        ran += 1;
    }
    if wants("fig3") {
        emit(two_blocks::figure3(scale, BASE_SEED, options));
        ran += 1;
    }
    if wants("fig4a") {
        emit(vary_r::figure4(
            vary_r::Figure4Variant::FixedBlockSize,
            scale,
            BASE_SEED,
            options,
        ));
        ran += 1;
    }
    if wants("fig4b") {
        emit(vary_r::figure4(
            vary_r::Figure4Variant::FixedGraphSize,
            scale,
            BASE_SEED,
            options,
        ));
        ran += 1;
    }
    if wants("congest") {
        emit(distributed::congest_scaling(scale, BASE_SEED, options));
        ran += 1;
    }
    if wants("kmachine") {
        emit(distributed::kmachine_scaling(scale, BASE_SEED, options));
        ran += 1;
    }
    if wants("baselines") {
        emit(baselines::baseline_comparison(scale, BASE_SEED, options));
        ran += 1;
    }
    if wants("ablations") {
        emit(ablations::ablations(scale, BASE_SEED));
        ran += 1;
    }

    if ran == 0 {
        eprintln!(
            "unknown experiment selection {selected:?}; expected one of \
             fig1, fig2, fig3, fig4a, fig4b, congest, kmachine, baselines, ablations, all"
        );
        std::process::exit(2);
    }
}

/// Parses `--criterion NAME` or `--criterion=NAME` from the raw arguments.
fn parse_criterion(args: &[String]) -> Result<MixingCriterion, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--criterion=") {
            inline
        } else if arg == "--criterion" {
            args.get(i + 1).ok_or(
                "--criterion needs a value (strict, lazy, lazy:<α>, renormalized, adaptive)",
            )?
        } else {
            continue;
        };
        return value.parse();
    }
    Ok(MixingCriterion::default())
}

/// Parses `--ensemble WALKS[:QUORUM]` or `--ensemble=WALKS[:QUORUM]`. The
/// quorum defaults to `max(1, walks / 2)` when omitted.
fn parse_ensemble(args: &[String]) -> Result<EnsemblePolicy, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--ensemble=") {
            inline
        } else if arg == "--ensemble" {
            args.get(i + 1)
                .ok_or("--ensemble needs a value (WALKS or WALKS:QUORUM, e.g. 5:2)")?
        } else {
            continue;
        };
        let (walks_str, quorum_str) = match value.split_once(':') {
            Some((w, q)) => (w, Some(q)),
            None => (value, None),
        };
        let walks: usize = walks_str
            .parse()
            .map_err(|_| format!("invalid ensemble walk count {walks_str:?}"))?;
        let quorum: usize = match quorum_str {
            Some(q) => q
                .parse()
                .map_err(|_| format!("invalid ensemble quorum {q:?}"))?,
            None => (walks / 2).max(1),
        };
        if walks == 0 || quorum == 0 || quorum > walks {
            return Err(format!(
                "ensemble needs walks ≥ 1 and 1 ≤ quorum ≤ walks, got {walks}:{quorum}"
            ));
        }
        return Ok(if walks == 1 {
            EnsemblePolicy::Single
        } else {
            EnsemblePolicy::Ensemble { walks, quorum }
        });
    }
    Ok(EnsemblePolicy::Single)
}

/// Parses `--assembly raw|reconcile|RESEED[:QUORUM]` (or the `=` form). The
/// quorum defaults to `max(1, ⌈reseed/2⌉)` when omitted.
fn parse_assembly(args: &[String]) -> Result<AssemblyPolicy, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if let Some(inline) = arg.strip_prefix("--assembly=") {
            inline
        } else if arg == "--assembly" {
            args.get(i + 1)
                .ok_or("--assembly needs a value (raw, reconcile, RESEED or RESEED:QUORUM)")?
        } else {
            continue;
        };
        return match value {
            "raw" => Ok(AssemblyPolicy::Raw),
            "reconcile" => Ok(AssemblyPolicy::reconcile_only()),
            _ => {
                let (reseed_str, quorum_str) = match value.split_once(':') {
                    Some((r, q)) => (r, Some(q)),
                    None => (value, None),
                };
                let reseed: usize = reseed_str
                    .parse()
                    .map_err(|_| format!("invalid assembly re-seed count {reseed_str:?}"))?;
                let quorum: usize = match quorum_str {
                    Some(q) => q
                        .parse()
                        .map_err(|_| format!("invalid assembly quorum {q:?}"))?,
                    None if reseed == 0 => 0,
                    None => reseed.div_ceil(2).max(1),
                };
                if reseed == 0 {
                    // Zero re-seed walks is reconcile-only; a non-zero quorum
                    // with no walks to satisfy it is a contradiction, same as
                    // the builder validation.
                    return if quorum == 0 {
                        Ok(AssemblyPolicy::reconcile_only())
                    } else {
                        Err(format!(
                            "assembly with 0 re-seed walks takes quorum 0, got 0:{quorum}"
                        ))
                    };
                }
                if quorum == 0 || quorum > reseed {
                    return Err(format!(
                        "assembly needs 1 ≤ quorum ≤ reseed, got {reseed}:{quorum}"
                    ));
                }
                Ok(AssemblyPolicy::Pooled { reseed, quorum })
            }
        };
    }
    Ok(AssemblyPolicy::Raw)
}

fn emit(figure: FigureResult) {
    println!("{}", figure.to_table());
}
