//! End-to-end CDRW runs on real dataset files (edge lists and METIS).
//!
//! The experiments CLI's `--dataset PATH` axis reads a graph file with the
//! `cdrw_graph::io` readers — engaging the weight lane exactly when the file
//! carries weights — and runs the full detection stack on it. Datasets have
//! no planted ground truth, so the table reports structure instead of
//! F-scores: graph shape (vertex/edge counts, weighted degree statistics)
//! and the detection outcome (community count, vertex coverage, community
//! sizes), with `δ` estimated by the sweep
//! (`cdrw_core::DeltaPolicy::SweepEstimate`).

use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_graph::{io, properties, Graph};

use crate::{DataPoint, FigureResult, RunOptions};

/// The on-disk formats the `--dataset` axis accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFormat {
    /// Whitespace edge list, `u v [weight]` per line ([`io::parse_edge_list`]).
    EdgeList,
    /// METIS adjacency format ([`io::parse_metis`]).
    Metis,
}

/// Picks the reader from the file extension: `.graph` and `.metis` are
/// METIS, everything else is an edge list.
pub fn detect_format(path: &str) -> DatasetFormat {
    let lower = path.to_ascii_lowercase();
    if lower.ends_with(".graph") || lower.ends_with(".metis") {
        DatasetFormat::Metis
    } else {
        DatasetFormat::EdgeList
    }
}

/// Parses `text` with the chosen reader.
pub fn parse_dataset(text: &str, format: DatasetFormat) -> Result<Graph, String> {
    match format {
        DatasetFormat::EdgeList => io::parse_edge_list(text),
        DatasetFormat::Metis => io::parse_metis(text),
    }
    .map_err(|error| error.to_string())
}

/// How many per-community size rows the table lists before folding the rest
/// into one remainder row.
const MAX_LISTED_COMMUNITIES: usize = 12;

/// Runs CDRW end to end on a parsed dataset and reports graph shape and
/// detection structure. `name` labels the table (typically the file name).
pub fn dataset_table(
    name: &str,
    graph: &Graph,
    options: RunOptions,
) -> Result<FigureResult, String> {
    let mut figure = FigureResult::new(
        format!(
            "Dataset {name}: {} ({} vertices, CDRW variant = {options})",
            if graph.is_weighted() {
                "weighted"
            } else {
                "unweighted"
            },
            graph.num_vertices(),
        ),
        "value",
    );
    let n = graph.num_vertices();
    figure.push(DataPoint::new("graph", "vertices", n as f64));
    figure.push(DataPoint::new("graph", "edges", graph.num_edges() as f64));
    let stats = properties::degree_stats(graph)
        .map_err(|error| format!("dataset {name} has no degree statistics: {error}"))?;
    figure.push(
        DataPoint::new("graph", "degree mean", stats.mean)
            .with_extra("min", stats.min as f64)
            .with_extra("max", stats.max as f64),
    );
    if let Some(weighted) = stats.weighted {
        figure.push(
            DataPoint::new("graph", "weighted degree mean", weighted.mean)
                .with_extra("min", weighted.min)
                .with_extra("max", weighted.max),
        );
        figure.push(DataPoint::new(
            "graph",
            "weighted volume",
            graph.weighted_volume(),
        ));
    }

    let config = CdrwConfig::builder()
        .seed(20190416)
        .criterion(options.criterion)
        .ensemble_policy(options.ensemble)
        .assembly_policy(options.assembly)
        .build();
    let result = Cdrw::new(config)
        .detect_all(graph)
        .map_err(|error| format!("CDRW failed on dataset {name}: {error}"))?;
    let detections = result.detections();
    figure.push(DataPoint::new(
        "CDRW",
        "communities",
        detections.len() as f64,
    ));
    let covered: usize = result
        .partition()
        .communities()
        .map(|(_, members)| members.len())
        .sum();
    figure.push(DataPoint::new(
        "CDRW",
        "vertex coverage",
        covered as f64 / n.max(1) as f64,
    ));
    let mut sizes: Vec<usize> = detections.iter().map(|d| d.members.len()).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    for (rank, size) in sizes.iter().take(MAX_LISTED_COMMUNITIES).enumerate() {
        figure.push(DataPoint::new(
            "CDRW",
            format!("community #{}", rank + 1),
            *size as f64,
        ));
    }
    if sizes.len() > MAX_LISTED_COMMUNITIES {
        let rest: usize = sizes[MAX_LISTED_COMMUNITIES..].iter().sum();
        figure.push(DataPoint::new(
            "CDRW",
            format!(
                "{} smaller communities",
                sizes.len() - MAX_LISTED_COMMUNITIES
            ),
            rest as f64,
        ));
    }
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_detection_follows_the_extension() {
        assert_eq!(detect_format("karate.graph"), DatasetFormat::Metis);
        assert_eq!(detect_format("net.METIS"), DatasetFormat::Metis);
        assert_eq!(detect_format("edges.txt"), DatasetFormat::EdgeList);
        assert_eq!(detect_format("plain"), DatasetFormat::EdgeList);
    }

    /// Two 6-cliques joined by one bridge edge, as a weighted edge list.
    fn two_cliques_text() -> String {
        let mut text = String::from("# two cliques\n");
        for base in [0usize, 6] {
            for u in base..base + 6 {
                for v in (u + 1)..base + 6 {
                    text.push_str(&format!("{u} {v} 2.0\n"));
                }
            }
        }
        text.push_str("5 6 0.5\n");
        text
    }

    #[test]
    fn weighted_edge_list_runs_end_to_end() {
        let graph = parse_dataset(&two_cliques_text(), DatasetFormat::EdgeList).unwrap();
        assert!(graph.is_weighted());
        let figure = dataset_table("two_cliques.txt", &graph, RunOptions::default()).unwrap();
        // Graph shape rows including the weighted ones.
        let xs: Vec<&str> = figure.points.iter().map(|p| p.x_label.as_str()).collect();
        assert!(xs.contains(&"weighted degree mean"));
        assert!(xs.contains(&"weighted volume"));
        // The two cliques are found and cover the graph.
        let communities = figure
            .points
            .iter()
            .find(|p| p.x_label == "communities")
            .unwrap();
        assert!(communities.value >= 2.0, "{communities:?}");
        let coverage = figure
            .points
            .iter()
            .find(|p| p.x_label == "vertex coverage")
            .unwrap();
        assert!(coverage.value > 0.9, "{coverage:?}");
    }

    #[test]
    fn metis_dataset_parses_and_reports_shape() {
        // The same topology in METIS form, unweighted: two triangles and a
        // bridge.
        let text = "6 7\n2 3\n1 3\n1 2 4\n3 5 6\n4 6\n4 5\n";
        let graph = parse_dataset(text, DatasetFormat::Metis).unwrap();
        assert!(!graph.is_weighted());
        let figure = dataset_table("mini.graph", &graph, RunOptions::default()).unwrap();
        let vertices = figure
            .points
            .iter()
            .find(|p| p.x_label == "vertices")
            .unwrap();
        assert_eq!(vertices.value, 6.0);
        // No weight lane ⇒ no weighted rows.
        assert!(!figure.points.iter().any(|p| p.x_label == "weighted volume"));
    }

    #[test]
    fn parse_errors_surface_as_strings() {
        assert!(parse_dataset("0 x\n", DatasetFormat::EdgeList).is_err());
    }
}
