//! Figure 2: detecting a `G(n, p)` random graph as a single community.

use cdrw_gen::{params, PpmParams};

use crate::{BudgetClock, DataPoint, FigureResult, RunOptions, Scale};

use super::{average_cdrw_scores, figure2_sizes};

/// Reproduces Figure 2: the F-score of CDRW on `G(n, p)` graphs (a PPM with
/// `r = 1`) as `n` grows, for the paper's three `p` series. The expected shape
/// is that every series climbs toward 1.0 and exceeds ≈0.98 by `n = 2¹⁰`.
/// Each cell also records the size-weighted partition F
/// ([`cdrw_metrics::f_score_weighted`]) of the assembled partition as an
/// extra column — fragmentation (many detections for the one planted
/// community) shows up there directly, where the seed-based score only
/// shows a diffuse drop.
///
/// Under [`Scale::Huge`] the run is wall-clock budgeted: sizes ascend, so
/// when the budget expires the largest points are the ones cut and the table
/// is marked [`FigureResult::truncated`].
pub fn figure2(scale: Scale, base_seed: u64, options: RunOptions) -> FigureResult {
    let mut figure = FigureResult::new(
        format!(
            "Figure 2: CDRW accuracy on Gnp random graphs \
             (single community, variant = {options})"
        ),
        "F-score",
    );
    let clock = BudgetClock::for_scale(scale);
    'sizes: for n in figure2_sizes(scale) {
        for (label, p) in params::figure2_p_series(n) {
            if clock.expired() {
                figure.mark_truncated();
                break 'sizes;
            }
            let ppm = PpmParams::new(n, 1, p, 0.0).expect("r = 1 always divides n");
            let scores = average_cdrw_scores(&ppm, scale.trials(), base_seed, options);
            figure.push(
                DataPoint::new(
                    format!("p = {label}"),
                    format!("n = {n}"),
                    scores.detections_f,
                )
                .with_extra("partition F", scores.partition_f)
                .with_extra("p", p),
            );
        }
    }
    figure
}

/// The pinned single-cell Figure-2 smoke run CI's perf job times: the
/// sparsest series (`p = 2·ln n/n`) at `n = 2¹⁷`, one trial. One cell keeps
/// the job short while still exercising the bit-packed walk state and the
/// work-stealing parallel driver at a six-figure vertex count; the wall-clock
/// is diffed against the committed baseline under `ci/baselines/`.
pub fn figure2_smoke(base_seed: u64, options: RunOptions) -> FigureResult {
    let n = 131_072usize;
    let (label, p) = params::figure2_p_series(n)
        .into_iter()
        .next()
        .expect("the series list is non-empty");
    let mut figure = FigureResult::new(
        format!(
            "Figure 2 smoke cell: Gnp single community \
             (n = {n}, p = {label}, variant = {options})"
        ),
        "F-score",
    );
    let ppm = PpmParams::new(n, 1, p, 0.0).expect("r = 1 always divides n");
    let scores = average_cdrw_scores(&ppm, 1, base_seed, options);
    figure.push(
        DataPoint::new(
            format!("p = {label}"),
            format!("n = {n}"),
            scores.detections_f,
        )
        .with_extra("partition F", scores.partition_f)
        .with_extra("p", p),
    );
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_quick_matches_the_paper_shape() {
        let figure = figure2(Scale::Quick, 3, crate::RunOptions::default());
        // 4 sizes × 3 series.
        assert_eq!(figure.points.len(), 12);
        // The densest series at the largest size should be essentially perfect,
        // and every value must be a valid F-score.
        for point in &figure.points {
            assert!((0.0..=1.0).contains(&point.value), "{point:?}");
        }
        let dense = figure.series_values("p = 5·ln n / n");
        assert!(dense.last().copied().unwrap_or(0.0) > 0.9);
        // Accuracy at the largest size is at least as good as at the smallest
        // for the densest series (the paper's monotone-in-n trend).
        assert!(dense.last().unwrap() >= &(dense.first().unwrap() - 0.05));
    }
}
