//! One module per reproduced experiment. See the crate-level table for the
//! mapping to the paper's figures and theorems.

pub mod ablations;
pub mod baselines;
pub mod chaos;
pub mod churn;
pub mod dataset;
pub mod distributed;
pub mod gnp_single;
pub mod heterogeneous;
pub mod showcase;
pub mod two_blocks;
pub mod vary_r;

use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_graph::{Graph, Partition};
use cdrw_metrics::{f_score_for_detections, f_score_weighted};

use crate::{RunOptions, Scale};

/// The two accuracy readings every CDRW experiment run reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CdrwScores {
    /// The paper's seed-based F-score over the raw detections (Section IV).
    pub detections_f: f64,
    /// Size-weighted F-score of the single full partition the run assembled
    /// ([`cdrw_metrics::f_score_weighted`]): how much of the *graph* the
    /// partition recovered, the quantity the global assembly layer targets.
    pub partition_f: f64,
}

/// Average scores of CDRW over `trials` freshly generated PPM graphs with
/// the given parameters. The growth threshold `δ` is the planted block
/// conductance, exactly as in the paper's experiments.
pub(crate) fn average_cdrw_scores(
    params: &PpmParams,
    trials: usize,
    base_seed: u64,
    options: RunOptions,
) -> CdrwScores {
    let mut detections_f = 0.0;
    let mut partition_f = 0.0;
    for trial in 0..trials {
        let seed = base_seed + trial as u64;
        let (graph, truth) = generate_ppm(params, seed).expect("validated parameters");
        let scores = cdrw_scores_on(
            &graph,
            &truth,
            params.expected_block_conductance(),
            seed,
            options,
        );
        detections_f += scores.detections_f;
        partition_f += scores.partition_f;
    }
    CdrwScores {
        detections_f: detections_f / trials as f64,
        partition_f: partition_f / trials as f64,
    }
}

/// Average seed-based F-score of CDRW over `trials` freshly generated PPM
/// graphs (the partition-level reading is dropped; see
/// [`average_cdrw_scores`]). Production tables now report both readings, so
/// this shorthand only survives in tests that pin the seed-based score.
#[cfg(test)]
pub(crate) fn average_cdrw_f_score(
    params: &PpmParams,
    trials: usize,
    base_seed: u64,
    options: RunOptions,
) -> f64 {
    average_cdrw_scores(params, trials, base_seed, options).detections_f
}

/// Runs CDRW once on a concrete graph and scores it against the ground truth
/// both ways: the paper's seed-based F-score over the raw detections
/// (Section IV: each detected community is scored against the ground-truth
/// community of its seed, and the scores are averaged) and the size-weighted
/// F-score of the assembled full partition.
pub(crate) fn cdrw_scores_on(
    graph: &Graph,
    truth: &Partition,
    delta: f64,
    seed: u64,
    options: RunOptions,
) -> CdrwScores {
    let config = CdrwConfig::builder()
        .seed(seed)
        .delta(delta.clamp(0.01, 1.0))
        .criterion(options.criterion)
        .ensemble_policy(options.ensemble)
        .assembly_policy(options.assembly)
        .build();
    let result = Cdrw::new(config)
        .detect_all(graph)
        .expect("non-degenerate experiment graphs");
    CdrwScores {
        detections_f: f_score_for_detections(
            result
                .detections()
                .iter()
                .map(|d| (d.members.as_slice(), d.seed)),
            truth,
        )
        .f_score,
        partition_f: f_score_weighted(result.partition(), truth).f_score,
    }
}

/// Runs CDRW once on a concrete graph and reports the seed-based F-score
/// (see [`cdrw_scores_on`]).
pub(crate) fn cdrw_f_score_on(
    graph: &Graph,
    truth: &Partition,
    delta: f64,
    seed: u64,
    options: RunOptions,
) -> f64 {
    cdrw_scores_on(graph, truth, delta, seed, options).detections_f
}

/// The graph sizes used by Figure 2 for a given scale. Full scale reaches
/// `n = 2¹⁴`, past the paper's `2¹³` — affordable since the prefix-scan
/// sweep and batched stepping removed the inner-loop bottleneck. Huge scale
/// jumps straight to the million-vertex points (`2¹⁶`, `2¹⁸`, `2²⁰`) the
/// bit-packed walk state was built for; the smaller points are already
/// covered by Full.
pub(crate) fn figure2_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![128, 256, 512, 1024],
        Scale::Full => vec![128, 256, 512, 1024, 2048, 4096, 8192, 16384],
        Scale::Huge => vec![65_536, 262_144, 1_048_576],
    }
}

/// The total graph size used by Figure 3 for a given scale. Huge scale runs
/// two planted blocks of `2¹⁸` vertices each.
pub(crate) fn figure3_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 512,
        Scale::Full => 8192,
        Scale::Huge => 524_288,
    }
}

/// The per-block size used by Figure 4 for a given scale. Huge scale plants
/// blocks of `2¹⁸` vertices.
pub(crate) fn figure4_block(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 256,
        Scale::Full => 4096,
        Scale::Huge => 262_144,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_sizes_scale_up() {
        assert!(figure2_sizes(Scale::Full).len() > figure2_sizes(Scale::Quick).len());
        assert!(figure3_size(Scale::Full) > figure3_size(Scale::Quick));
        assert!(figure4_block(Scale::Full) > figure4_block(Scale::Quick));
    }

    #[test]
    fn average_f_score_is_high_on_an_easy_instance() {
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        for criterion in cdrw_core::MixingCriterion::all() {
            let f = average_cdrw_f_score(&params, 2, 7, criterion.into());
            assert!(f > 0.8, "F = {f} under {}", criterion.name());
        }
    }
}
