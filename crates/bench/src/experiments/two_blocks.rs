//! Figure 3: two planted communities under a `p`/`q` sweep.

use cdrw_gen::{params, PpmParams};

use crate::{BudgetClock, DataPoint, FigureResult, RunOptions, Scale};

use super::{average_cdrw_scores, figure3_size};

/// Reproduces Figure 3: `r = 2` blocks, the graph size fixed (`n = 2¹¹` at
/// full scale), `p` on the x-axis and one series per `q`. The expected shape:
/// high F-scores (≥ 0.9) for the small `q` series even at the sparsest `p`,
/// degrading as `q` approaches `p`. Under [`Scale::Huge`] the sweep is
/// wall-clock budgeted and marked truncated when cut short.
pub fn figure3(scale: Scale, base_seed: u64, options: RunOptions) -> FigureResult {
    let n = figure3_size(scale);
    let mut figure = FigureResult::new(
        format!(
            "Figure 3: CDRW accuracy on two-block PPM graphs \
             (n = {n}, variant = {options})"
        ),
        "F-score",
    );
    let clock = BudgetClock::for_scale(scale);
    'series: for (q_label, q) in params::figure3_q_series(n) {
        for (p_label, p) in params::figure3_p_series(n) {
            if p <= q {
                // Non-separable parameter combinations are skipped, as in the
                // paper (they have no community structure to recover).
                continue;
            }
            if clock.expired() {
                figure.mark_truncated();
                break 'series;
            }
            let ppm = PpmParams::new(n, 2, p, q).expect("two blocks divide n");
            let scores = average_cdrw_scores(&ppm, scale.trials(), base_seed, options);
            figure.push(
                DataPoint::new(
                    format!("q = {q_label}"),
                    format!("p = {p_label}"),
                    scores.detections_f,
                )
                .with_extra("partition F", scores.partition_f)
                .with_extra("p/q", p / q)
                .with_extra("e_out/e_in", {
                    let e_in = ppm.expected_intra_edges_per_block();
                    let e_out = ppm.expected_inter_edges_per_block();
                    if e_in > 0.0 {
                        e_out / e_in
                    } else {
                        0.0
                    }
                }),
            );
        }
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_quick_matches_the_paper_shape() {
        let figure = figure3(Scale::Quick, 5, crate::RunOptions::default());
        assert!(!figure.points.is_empty());
        for point in &figure.points {
            assert!((0.0..=1.0).contains(&point.value), "{point:?}");
            // Only separable points are reported.
            let ratio = point.extras.iter().find(|(n, _)| n == "p/q").unwrap().1;
            assert!(ratio > 1.0);
        }
        // The easiest series (q = 0.1/n) should clearly beat the harder ones
        // on average.
        let easy = figure.series_values("q = 0.1 / n");
        assert!(!easy.is_empty());
        let mean: f64 = easy.iter().sum::<f64>() / easy.len() as f64;
        assert!(mean > 0.6, "mean F for q = 0.1/n is {mean}");
    }

    // The sparsest p values of the sweep sit at the edge of where the strict
    // 1/2e mixing condition fires (observed easy-series means 0.72–0.83
    // across seeds under the strict criterion), which kept the average below
    // the paper's ≥ 0.85 target. The renormalised default criterion cancels
    // the leaked mass out of the score and clears the bar; see ROADMAP.md
    // for the full regime comparison.
    #[test]
    fn figure3_easy_series_reaches_paper_accuracy() {
        let figure = figure3(Scale::Quick, 5, crate::RunOptions::default());
        let easy = figure.series_values("q = 0.1 / n");
        let mean: f64 = easy.iter().sum::<f64>() / easy.len() as f64;
        assert!(mean > 0.85, "mean F for q = 0.1/n is {mean}");
    }
}
