//! Chaos resilience: the fault-tolerant sharded runtime under seeded fault
//! schedules (ISSUE 10 / PAPER_MAP deviation 16).
//!
//! Runs the k-machine execution engine through a matrix of [`FaultPlan`]s —
//! clean, lossy, reordering, duplicating, crashing — and checks each run's
//! [`DetectionResult`] against the sequential driver's, recording wall-clock
//! and the fault log (timeouts, retries, recoveries, replays) per cell. The
//! value column is wall-clock, so the table belongs to the perf trajectory
//! (like `churn`), not to the paper's figures: it is selected explicitly,
//! never part of `all`.
//!
//! Every plan is serialisable to single-line JSON ([`plan_to_line`]) and
//! back ([`plan_from_json`]); a diverging cell prints the exact
//! [`repro_command`] — one `--fault-plan '<json>'` invocation — so a CI
//! failure is reproducible from the log line alone.

use cdrw_congest::CongestConfig;
use cdrw_core::{Cdrw, CdrwConfig, DetectionResult};
use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_graph::Graph;
use cdrw_kmachine::{FaultPlan, KMachineConfig, KMachineEngine, ShardCrash};

use crate::json::Json;
use crate::{BudgetClock, DataPoint, FigureResult, RunOptions, Scale};

/// Serialises a fault plan as JSON — the inverse of [`plan_from_json`].
pub fn plan_to_json(plan: &FaultPlan) -> Json {
    let crashes: Vec<Json> = plan
        .crashes
        .iter()
        .map(|crash| {
            Json::object()
                .set("shard", crash.shard)
                .set("at_seq", crash.at_seq)
        })
        .collect();
    Json::object()
        .set("seed", plan.seed)
        .set("drop_rate", plan.drop_rate)
        .set("delay_rate", plan.delay_rate)
        .set("duplicate_rate", plan.duplicate_rate)
        .set("delay_ops", u64::from(plan.delay_ops))
        .set("crashes", crashes)
}

/// Parses a fault plan serialised by [`plan_to_json`]. Absent fields keep
/// their [`FaultPlan::fault_free`] defaults, so `{"seed": 7}` is a valid
/// plan.
///
/// # Errors
///
/// A message naming the malformed field, or the [`FaultPlan::validate`]
/// error when the rates are structurally valid JSON but out of range.
pub fn plan_from_json(json: &Json) -> Result<FaultPlan, String> {
    let number = |field: &str| -> Result<Option<f64>, String> {
        match json.get(field) {
            None => Ok(None),
            Some(value) => value
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("fault plan field {field} must be a number")),
        }
    };
    let mut plan = FaultPlan::fault_free();
    if let Some(seed) = number("seed")? {
        plan.seed = seed as u64;
    }
    if let Some(rate) = number("drop_rate")? {
        plan.drop_rate = rate;
    }
    if let Some(rate) = number("delay_rate")? {
        plan.delay_rate = rate;
    }
    if let Some(rate) = number("duplicate_rate")? {
        plan.duplicate_rate = rate;
    }
    if let Some(ops) = number("delay_ops")? {
        plan.delay_ops = ops as u32;
    }
    if let Some(crashes) = json.get("crashes") {
        let items = crashes
            .as_array()
            .ok_or("fault plan field crashes must be an array")?;
        for item in items {
            let shard = item
                .get("shard")
                .and_then(Json::as_f64)
                .ok_or("crash entry needs a numeric shard")?;
            let at_seq = item
                .get("at_seq")
                .and_then(Json::as_f64)
                .ok_or("crash entry needs a numeric at_seq")?;
            plan.crashes.push(ShardCrash {
                shard: shard as usize,
                at_seq: at_seq as u64,
            });
        }
    }
    plan.validate()?;
    Ok(plan)
}

/// Renders the plan as the compact single-line JSON the experiments
/// binary's `--fault-plan` flag accepts. (The plan document contains no
/// string values, so stripping all whitespace from the pretty rendering is
/// lossless.)
pub fn plan_to_line(plan: &FaultPlan) -> String {
    plan_to_json(plan).render().split_whitespace().collect()
}

/// The one-line command reproducing a single chaos cell: same plan, same
/// shard count, quick scale.
pub fn repro_command(k: usize, plan: &FaultPlan) -> String {
    format!(
        "cargo run --release -p cdrw-bench --bin experiments -- \
         chaos --kmachine {k} --fault-plan '{}'",
        plan_to_line(plan)
    )
}

/// The named plan matrix a default run sweeps: clean delivery, plain loss,
/// a mixed drop/delay/duplicate schedule, a mid-run crash, and a crash
/// under the mixed schedule. Seeds are derived from `base_seed` so the
/// whole table is replayable — the conformance test rebuilds the matrix
/// from the same seed to name a diverging cell's repro plan.
pub fn plan_matrix(base_seed: u64) -> Vec<(String, FaultPlan)> {
    let seed = base_seed % 100_000;
    vec![
        ("fault-free".to_string(), FaultPlan::fault_free()),
        (
            "drop 5%".to_string(),
            FaultPlan::seeded(seed).with_drop_rate(0.05),
        ),
        (
            "drop+delay+dup".to_string(),
            FaultPlan::seeded(seed + 1)
                .with_drop_rate(0.08)
                .with_delay(0.05, 3)
                .with_duplicate_rate(0.05),
        ),
        (
            "crash".to_string(),
            FaultPlan::seeded(seed + 2).with_crash(0, 5),
        ),
        (
            "crash+lossy".to_string(),
            FaultPlan::seeded(seed + 3)
                .with_drop_rate(0.06)
                .with_delay(0.04, 2)
                .with_duplicate_rate(0.04)
                .with_crash(0, 7),
        ),
    ]
}

/// The chaos resilience table: wall-clock per (plan, k) cell with the fault
/// log and the sequential-conformance verdict as companion columns.
///
/// `k_override` pins the shard sweep to one count (`--kmachine K`);
/// `plan_override` replaces the whole matrix with one explicit plan
/// (`--fault-plan '<json>'`) — the repro path for a failing cell. A cell
/// whose result diverges from the sequential oracle (or whose run fails)
/// records `conforms = 0` and prints its [`repro_command`] on stderr
/// instead of panicking, so one bad cell never hides the rest of the table.
pub fn chaos_resilience(
    scale: Scale,
    base_seed: u64,
    options: RunOptions,
    k_override: Option<usize>,
    plan_override: Option<&FaultPlan>,
) -> FigureResult {
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 256,
        // Retry backoffs dominate past this size; scale lives in Figure 2.
        Scale::Huge => 512,
    };
    let params = complexity_ppm(n);
    let (graph, _) = generate_ppm(&params, base_seed).expect("validated parameters");
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    let algorithm = CdrwConfig::builder()
        .seed(base_seed)
        .delta(delta)
        .criterion(options.criterion)
        .ensemble_policy(options.ensemble)
        .assembly_policy(options.assembly)
        .build();
    let oracle = Cdrw::new(algorithm)
        .detect_all(&graph)
        .expect("non-degenerate graph");

    let ks: Vec<usize> = match k_override {
        Some(k) => vec![k],
        None => vec![2, 4],
    };
    let plans: Vec<(String, FaultPlan)> = match plan_override {
        Some(plan) => vec![("override".to_string(), plan.clone())],
        None => plan_matrix(base_seed),
    };
    let mut figure = FigureResult::new(
        format!(
            "Chaos resilience: sharded runtime vs sequential oracle under \
             seeded fault plans (n = {n}, variant = {options})"
        ),
        "wall-clock ms",
    );
    let clock = BudgetClock::for_scale(scale);
    for (label, plan) in &plans {
        for &k in &ks {
            if clock.expired() {
                figure.mark_truncated();
                break;
            }
            figure.push(run_cell(
                &graph, algorithm, base_seed, &oracle, label, plan, k,
            ));
        }
    }
    figure
}

/// Runs one (plan, k) cell and folds the outcome into a data point.
fn run_cell(
    graph: &Graph,
    algorithm: CdrwConfig,
    base_seed: u64,
    oracle: &DetectionResult,
    label: &str,
    plan: &FaultPlan,
    k: usize,
) -> DataPoint {
    let config = KMachineConfig::new(k)
        .with_congest(CongestConfig::new(algorithm))
        .with_partition_seed(base_seed);
    let engine = KMachineEngine::new(config).expect("k >= 1");
    let started = std::time::Instant::now();
    let outcome = engine.run_chaos(graph, plan);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let point = DataPoint::new(label, format!("k = {k}"), elapsed_ms);
    match outcome {
        Ok(report) => {
            let ledger_clean = report
                .conformance
                .per_round
                .iter()
                .all(|round| round.measured_messages == round.modelled_messages);
            let conforms = report.result == *oracle && ledger_clean;
            if !conforms {
                eprintln!(
                    "chaos cell diverged from the sequential oracle \
                     (ledger clean: {ledger_clean}); repro: {}",
                    repro_command(k, plan)
                );
            }
            point
                .with_extra("conforms", f64::from(u8::from(conforms)))
                .with_extra("timeouts", report.fault_log.timeouts as f64)
                .with_extra("retries", report.fault_log.retries as f64)
                .with_extra("recoveries", report.fault_log.recoveries.len() as f64)
                .with_extra("replayed", report.fault_log.replayed_messages as f64)
        }
        Err(error) => {
            eprintln!(
                "chaos cell failed with {error:?}; repro: {}",
                repro_command(k, plan)
            );
            point
                .with_extra("conforms", 0.0)
                .with_extra("timeouts", 0.0)
                .with_extra("retries", 0.0)
                .with_extra("recoveries", 0.0)
                .with_extra("replayed", 0.0)
        }
    }
}

/// Same PPM family as the distributed-complexity experiments: `r = 2`,
/// `p = 12·ln n/n`, `q = p/40` — inside the recovery regime, so every run
/// detects the same structure the oracle does.
fn complexity_ppm(n: usize) -> PpmParams {
    let p = (12.0 * (n as f64).ln() / n as f64).min(1.0);
    let q = (p / 40.0).min(1.0);
    PpmParams::new(n, 2, p, q).expect("two blocks divide every even n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_json_roundtrips() {
        let plan = FaultPlan::seeded(41)
            .with_drop_rate(0.1)
            .with_delay(0.05, 4)
            .with_duplicate_rate(0.02)
            .with_crash(1, 6)
            .with_crash(0, 12);
        let rendered = plan_to_json(&plan).render();
        let parsed = plan_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn plan_line_is_single_line_and_roundtrips() {
        let plan = FaultPlan::seeded(7).with_drop_rate(0.08).with_crash(2, 9);
        let line = plan_to_line(&plan);
        assert!(!line.contains(char::is_whitespace), "{line:?}");
        let parsed = plan_from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn absent_fields_default_to_fault_free() {
        let parsed = plan_from_json(&Json::parse(r#"{"seed": 7}"#).unwrap()).unwrap();
        assert_eq!(parsed, FaultPlan::seeded(7));
    }

    #[test]
    fn malformed_plans_are_rejected() {
        let bad_type = Json::parse(r#"{"drop_rate": "high"}"#).unwrap();
        assert!(plan_from_json(&bad_type).unwrap_err().contains("drop_rate"));
        let bad_rate = Json::parse(r#"{"drop_rate": 1.5}"#).unwrap();
        assert!(plan_from_json(&bad_rate).unwrap_err().contains("drop_rate"));
        let bad_crash = Json::parse(r#"{"crashes": [{"shard": 0}]}"#).unwrap();
        assert!(plan_from_json(&bad_crash).unwrap_err().contains("at_seq"));
    }

    #[test]
    fn repro_command_embeds_the_plan_and_the_shard_count() {
        let plan = FaultPlan::seeded(3).with_drop_rate(0.05);
        let command = repro_command(4, &plan);
        assert!(command.contains("--kmachine 4"), "{command}");
        assert!(command.contains("--fault-plan"), "{command}");
        assert!(command.contains(&plan_to_line(&plan)), "{command}");
    }

    #[test]
    fn a_single_override_cell_conforms() {
        // One crashing lossy plan through the full experiment path: the cell
        // must conform to the sequential oracle and log the recovery.
        let plan = FaultPlan::seeded(11).with_drop_rate(0.05).with_crash(0, 5);
        let figure = chaos_resilience(Scale::Quick, 3, RunOptions::default(), Some(2), Some(&plan));
        assert_eq!(figure.points.len(), 1);
        let point = &figure.points[0];
        assert_eq!(point.series, "override");
        assert_eq!(point.x_label, "k = 2");
        let extra = |name: &str| {
            point
                .extras
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| *value)
                .unwrap()
        };
        assert_eq!(extra("conforms"), 1.0, "repro: {}", repro_command(2, &plan));
        assert!(extra("recoveries") >= 1.0);
    }
}
