//! Beyond the paper: sustained edge churn plus query load on the streaming
//! service layer (`cdrw_core::CdrwService`).
//!
//! An 8-block PPM graph is churned in place — each cycle removes and re-adds
//! random edges *inside block 0 only*, totalling at most 1% of the edge set,
//! so the planted truth stays valid and the dirty set stays localized. Two
//! services consume the identical churn stream: one refreshes incrementally
//! (cached detections at most ε-perturbed by the dirty set are carried over,
//! only the churned region is re-walked), the other takes the full reference
//! path every cycle. Each cycle records both refresh latencies, the speedup, the
//! partition-F of both services against the planted truth (and their gap),
//! and the cached-partition query throughput of the incremental service.
//!
//! Expected shape: the incremental refresh retires only the detections
//! touching block 0 (one or two of eight), re-seeds no frozen group, runs
//! several times faster than the full path, and lands within a small
//! partition-F gap of it.

use std::time::Instant;

use cdrw_core::service::CdrwService;
use cdrw_core::{AssemblyPolicy, Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, params, PpmParams};
use cdrw_graph::VertexId;
use cdrw_metrics::f_score_weighted;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{BudgetClock, DataPoint, FigureResult, RunOptions, Scale};

/// Graph size, churn cycles and query count per scale. The full scale pins
/// the `n = 2¹⁶` acceptance instance; huge moves up one notch under the
/// usual wall-clock budget.
fn churn_dimensions(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Quick => (4096, 3, 200_000),
        Scale::Full => (65_536, 3, 1_000_000),
        Scale::Huge => (262_144, 3, 1_000_000),
    }
}

/// The CDRW variant the churn service runs: the caller's criterion and
/// ensemble, with a raw assembly upgraded to pooling — the incremental
/// refresh freezes surviving *evidence groups*, which only exist under
/// [`AssemblyPolicy::Pooled`], so the default table should exercise them.
fn churn_options(options: RunOptions) -> RunOptions {
    let mut options = options;
    if options.assembly == AssemblyPolicy::Raw {
        options.assembly = AssemblyPolicy::Pooled {
            reseed: 4,
            quorum: 3,
        };
    }
    options
}

/// Runs the churn-plus-queries service benchmark (see the module docs).
pub fn churn_service(scale: Scale, base_seed: u64, options: RunOptions) -> FigureResult {
    let (n, cycles, queries) = churn_dimensions(scale);
    let blocks = 8usize;
    // The clearly separable regime (Figure 3's easiest series): detections
    // recover the blocks up to a thin stray tail, so under the ε tolerance
    // staleness stays confined to the churned block.
    let p = params::log_squared_n_over_n(n, 2.0);
    let q = 0.1 / n as f64;
    let ppm = PpmParams::new(n, blocks, p, q).expect("blocks divide n");
    let (graph, truth) = generate_ppm(&ppm, base_seed).expect("validated parameters");
    let delta = ppm.expected_block_conductance().clamp(0.01, 1.0);
    let options = churn_options(options);
    let config = CdrwConfig::builder()
        .seed(base_seed)
        .delta(delta)
        .criterion(options.criterion)
        .ensemble_policy(options.ensemble)
        .assembly_policy(options.assembly)
        .build();
    let block = ppm.block_size();
    // Per-cycle churn budget: removals + re-additions together stay at 1%
    // of the edge set.
    let half = (graph.num_edges() / 200).max(1);

    let mut figure = FigureResult::new(
        format!(
            "Service churn: incremental vs full refresh under sustained edge churn \
             (n = {n}, r = {blocks}, ≤ 1% churn/cycle in block 0, variant = {options})"
        ),
        "incremental refresh ms",
    );

    let mut incremental = CdrwService::new(Cdrw::new(config), graph.clone());
    // Detected member sets carry a thin tail of boundary strays from other
    // blocks, so exact invalidation (ε = 0) would retire every detection
    // under localized churn. A 5% volume tolerance keeps ε-perturbed
    // survivors; the F gap against the full reference stays measured below.
    incremental.set_staleness_tolerance(0.05);
    let mut reference = CdrwService::new(Cdrw::new(config), graph);
    incremental
        .refresh()
        .expect("non-degenerate churn instance");
    reference
        .refresh_full()
        .expect("non-degenerate churn instance");

    let mut rng = SmallRng::seed_from_u64(base_seed ^ 0xC4C4_C4C4);
    let clock = BudgetClock::for_scale(scale);
    for cycle in 1..=cycles {
        if clock.expired() {
            figure.mark_truncated();
            break;
        }
        // Remove `half` random existing intra-block-0 edges and add `half`
        // random absent intra-block-0 pairs; both services see the exact
        // same stream.
        let mut intra: Vec<(VertexId, VertexId)> = incremental
            .graph()
            .edges()
            .filter(|&(u, v)| u < block && v < block)
            .collect();
        intra.shuffle(&mut rng);
        intra.truncate(half);
        let mut added: Vec<(VertexId, VertexId)> = Vec::with_capacity(half);
        while added.len() < half {
            let u = rng.gen_range(0..block);
            let v = rng.gen_range(0..block);
            if u == v || incremental.graph().has_edge(u, v) {
                continue;
            }
            added.push((u.min(v), u.max(v)));
        }
        let churned = intra.len() + added.len();
        for &(u, v) in &intra {
            incremental.remove_edge(u, v).expect("in-range endpoints");
            reference.remove_edge(u, v).expect("in-range endpoints");
        }
        for &(u, v) in &added {
            incremental.add_edge(u, v).expect("in-range endpoints");
            reference.add_edge(u, v).expect("in-range endpoints");
        }

        let started = Instant::now();
        let report = incremental.refresh().expect("churn keeps the graph valid");
        let incremental_ms = started.elapsed().as_secs_f64() * 1e3;
        let started = Instant::now();
        reference
            .refresh_full()
            .expect("churn keeps the graph valid");
        let full_ms = started.elapsed().as_secs_f64() * 1e3;

        let f_incremental =
            f_score_weighted(incremental.partition().expect("refreshed service"), &truth).f_score;
        let f_full =
            f_score_weighted(reference.partition().expect("refreshed service"), &truth).f_score;

        // Query throughput of the cached partition, measured on a stride
        // that touches every vertex class.
        let started = Instant::now();
        let mut checksum = 0usize;
        for i in 0..queries {
            let v = (i * 11) % n;
            checksum = checksum.wrapping_add(incremental.community_of(v).unwrap_or(0));
        }
        let query_secs = started.elapsed().as_secs_f64();
        std::hint::black_box(checksum);
        let queries_per_sec = queries as f64 / query_secs.max(1e-9);

        figure.push(
            DataPoint::new("localized churn", format!("cycle {cycle}"), incremental_ms)
                .with_extra("full ms", full_ms)
                .with_extra("speedup", full_ms / incremental_ms.max(1e-9))
                .with_extra("partition F (incremental)", f_incremental)
                .with_extra("partition F (full)", f_full)
                .with_extra("F gap", f_full - f_incremental)
                .with_extra("queries/s", queries_per_sec)
                .with_extra("churned edges", churned as f64)
                .with_extra("dirty vertices", report.dirty_vertices as f64)
                .with_extra("retired", report.retired as f64)
                .with_extra("surviving", report.surviving as f64)
                .with_extra("fresh", report.fresh as f64)
                .with_extra("reseeded groups", report.reseeded_groups as f64),
        );
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_churn_keeps_survivors_and_stays_accurate() {
        let figure = churn_service(Scale::Quick, 7, RunOptions::default());
        assert_eq!(figure.points.len(), 3);
        for point in &figure.points {
            let extra = |name: &str| {
                point
                    .extras
                    .iter()
                    .find(|(key, _)| key == name)
                    .unwrap_or_else(|| panic!("missing extra {name}"))
                    .1
            };
            // Localized churn in one of eight blocks must leave detections
            // standing — the incremental path carried them over unwalked.
            assert!(extra("surviving") >= 1.0, "{point:?}");
            assert!(extra("retired") >= 1.0, "{point:?}");
            // Frozen survivors never re-seed; only groups touching fresh
            // evidence may (bounded by the group count of the assembly).
            assert!(extra("reseeded groups") <= extra("retired") + extra("fresh"));
            // The incremental partition stays close to the full reference.
            let gap = (extra("partition F (full)") - extra("partition F (incremental)")).abs();
            assert!(gap <= 0.1, "F gap {gap} too wide at quick scale: {point:?}");
            assert!(extra("queries/s") > 0.0);
            assert!(extra("churned edges") > 0.0);
        }
    }
}
