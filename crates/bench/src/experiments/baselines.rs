//! §II positioning: CDRW against the baseline community detectors.

use cdrw_baselines::{
    averaging_dynamics, label_propagation, spectral_partition, walktrap, AveragingConfig,
    LpaConfig, SpectralConfig, WalktrapConfig,
};
use cdrw_gen::{generate_ppm, params, PpmParams};
use cdrw_metrics::f_score;

use crate::{BudgetClock, DataPoint, FigureResult, RunOptions, Scale};

use super::cdrw_f_score_on;

/// Compares CDRW with label propagation, averaging dynamics, spectral
/// clustering and Walktrap on a Figure-3-style sweep (two blocks, sparse `p`,
/// several `q` values). The expected picture, matching the paper's Section II
/// discussion: all methods agree on easy dense instances; CDRW and spectral
/// stay accurate on the sparse ones where plain LPA degrades, and the
/// averaging dynamics is limited to two communities by construction.
pub fn baseline_comparison(scale: Scale, base_seed: u64, options: RunOptions) -> FigureResult {
    // Walktrap is O(n²·t) with quadratic memory in communities, so the
    // comparison runs at a deliberately modest size even at full scale.
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 512,
        Scale::Huge => 1024,
    };
    let r = 2usize;
    let mut figure = FigureResult::new(
        format!(
            "Baseline comparison on two-block PPM graphs \
             (n = {n}, CDRW variant = {options})"
        ),
        "F-score",
    );
    let p = params::log_squared_n_over_n(n, 2.0);
    let clock = BudgetClock::for_scale(scale);
    for (q_label, q) in params::figure3_q_series(n) {
        if q >= p {
            continue;
        }
        if clock.expired() {
            figure.mark_truncated();
            break;
        }
        let ppm = PpmParams::new(n, r, p, q).expect("two blocks divide n");
        let (graph, truth) = generate_ppm(&ppm, base_seed).expect("validated parameters");

        let cdrw = cdrw_f_score_on(
            &graph,
            &truth,
            ppm.expected_block_conductance(),
            base_seed,
            options,
        );
        let lpa = label_propagation(
            &graph,
            &LpaConfig {
                seed: base_seed,
                ..LpaConfig::default()
            },
        )
        .map(|o| f_score(&o.partition, &truth).f_score)
        .unwrap_or(0.0);
        let averaging = averaging_dynamics(
            &graph,
            &AveragingConfig {
                seed: base_seed,
                rounds: 80,
            },
        )
        .map(|o| f_score(&o.partition, &truth).f_score)
        .unwrap_or(0.0);
        let spectral = spectral_partition(
            &graph,
            &SpectralConfig {
                num_communities: r,
                seed: base_seed,
                ..SpectralConfig::default()
            },
        )
        .map(|p| f_score(&p, &truth).f_score)
        .unwrap_or(0.0);
        let wt = walktrap(
            &graph,
            &WalktrapConfig {
                walk_length: 4,
                num_communities: r,
            },
        )
        .map(|p| f_score(&p, &truth).f_score)
        .unwrap_or(0.0);

        let x = format!("q = {q_label}");
        figure.push(DataPoint::new("CDRW", x.clone(), cdrw));
        figure.push(DataPoint::new("LPA", x.clone(), lpa));
        figure.push(DataPoint::new("averaging dynamics", x.clone(), averaging));
        figure.push(DataPoint::new("spectral", x.clone(), spectral));
        figure.push(DataPoint::new("walktrap", x, wt));
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_has_all_five_methods_and_cdrw_is_competitive() {
        let figure = baseline_comparison(Scale::Quick, 11, crate::RunOptions::default());
        assert_eq!(figure.series_names().len(), 5);
        for point in &figure.points {
            assert!((0.0..=1.0).contains(&point.value), "{point:?}");
        }
        let cdrw = figure.series_values("CDRW");
        let mean_cdrw: f64 = cdrw.iter().sum::<f64>() / cdrw.len() as f64;
        assert!(mean_cdrw > 0.75, "CDRW mean F = {mean_cdrw}");
    }
}
