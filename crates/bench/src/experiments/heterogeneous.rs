//! Heterogeneous instances: the degree-corrected SBM and the weighted PPM.
//!
//! The paper's experiments all use the homogeneous planted partition model;
//! real networks are degree-heterogeneous and weighted. These two tables run
//! the full CDRW stack (ensemble + assembly — the machinery built for
//! heterogeneous graphs) against all four baselines on instances where the
//! weight lane is actually live:
//!
//! * [`dcsbm_comparison`] sweeps the propensity spread `θ` of a
//!   degree-corrected SBM from the vanilla SBM (`θ ≡ 1`) to strongly skewed
//!   blocks, with expected edge weights `θ_u·θ_v·B_{rs}`;
//! * [`weighted_ppm_comparison`] keeps the PPM topology fixed and sweeps the
//!   intra/inter weight contrast `w_in/w_out`, so accuracy changes are
//!   attributable to the weighted walk alone.

use cdrw_baselines::{
    averaging_dynamics, label_propagation, spectral_partition, walktrap, AveragingConfig,
    LpaConfig, SpectralConfig, WalktrapConfig,
};
use cdrw_core::{AssemblyPolicy, EnsemblePolicy};
use cdrw_gen::{
    generate_dcsbm, generate_weighted_ppm, params, DcsbmParams, PpmParams, WeightedPpmParams,
};
use cdrw_graph::{Graph, Partition};
use cdrw_metrics::f_score;

use crate::{BudgetClock, DataPoint, FigureResult, RunOptions, Scale};

use super::cdrw_scores_on;

/// The graph size the heterogeneous comparisons run at. Walktrap is
/// `O(n²·t)`, so the size stays modest even at full scale (same reasoning as
/// the baseline comparison).
fn comparison_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 256,
        Scale::Full => 512,
        Scale::Huge => 1024,
    }
}

/// The CDRW variant the heterogeneous tables run: the caller's criterion,
/// upgraded to ensemble voting and pooled assembly when the caller left the
/// single-walk/raw defaults — heterogeneous instances are exactly what the
/// ensemble + assembly machinery was built for, so the default table should
/// exercise it.
fn heterogeneous_options(options: RunOptions) -> RunOptions {
    let mut options = options;
    if options.ensemble == EnsemblePolicy::Single {
        options.ensemble = EnsemblePolicy::Ensemble {
            walks: 5,
            quorum: 2,
        };
    }
    if options.assembly == AssemblyPolicy::Raw {
        options.assembly = AssemblyPolicy::Pooled {
            reseed: 4,
            quorum: 3,
        };
    }
    options
}

/// The planted partition's weighted conductance, measured on the generated
/// instance: `max_S w(S, V∖S) / w(S)` over the ground-truth blocks. This is
/// the weighted analogue of `expected_block_conductance` and serves as the
/// growth threshold `δ`, exactly as the planted conductance does on the
/// homogeneous PPM.
fn planted_weighted_conductance(graph: &Graph, truth: &Partition) -> f64 {
    let mut worst: f64 = 0.0;
    for community in 0..truth.num_communities() {
        let mut volume = 0.0f64;
        let mut cut = 0.0f64;
        for &v in truth.members(community) {
            volume += graph.weighted_degree(v);
            let neighbors = graph.neighbor_slice(v);
            match graph.weight_slice(v) {
                None => {
                    for &u in neighbors {
                        if truth.community_of(u) != Some(community) {
                            cut += 1.0;
                        }
                    }
                }
                Some(row_weights) => {
                    for (&u, &w) in neighbors.iter().zip(row_weights) {
                        if truth.community_of(u) != Some(community) {
                            cut += w;
                        }
                    }
                }
            }
        }
        if volume > 0.0 {
            worst = worst.max(cut / volume);
        }
    }
    worst
}

/// Scores the four baselines on a concrete instance and pushes one data
/// point per method.
fn push_baseline_points(
    figure: &mut FigureResult,
    graph: &Graph,
    truth: &Partition,
    x: &str,
    num_communities: usize,
    seed: u64,
) {
    let lpa = label_propagation(
        graph,
        &LpaConfig {
            seed,
            ..LpaConfig::default()
        },
    )
    .map(|o| f_score(&o.partition, truth).f_score)
    .unwrap_or(0.0);
    let averaging = averaging_dynamics(graph, &AveragingConfig { seed, rounds: 80 })
        .map(|o| f_score(&o.partition, truth).f_score)
        .unwrap_or(0.0);
    let spectral = spectral_partition(
        graph,
        &SpectralConfig {
            num_communities,
            seed,
            ..SpectralConfig::default()
        },
    )
    .map(|p| f_score(&p, truth).f_score)
    .unwrap_or(0.0);
    let wt = walktrap(
        graph,
        &WalktrapConfig {
            walk_length: 4,
            num_communities,
        },
    )
    .map(|p| f_score(&p, truth).f_score)
    .unwrap_or(0.0);
    figure.push(DataPoint::new("LPA", x.to_string(), lpa));
    figure.push(DataPoint::new(
        "averaging dynamics",
        x.to_string(),
        averaging,
    ));
    figure.push(DataPoint::new("spectral", x.to_string(), spectral));
    figure.push(DataPoint::new("walktrap", x.to_string(), wt));
}

/// Compares CDRW (ensemble + assembly) with the four baselines on
/// degree-corrected SBM instances of increasing propensity spread. `θ` ramps
/// linearly within each block over `[θ_min, θ_max]`; the first column
/// (`θ ≡ 1`) is the vanilla SBM with every edge weight 1, so the sweep reads
/// as "how much accuracy survives as heterogeneity grows". The CDRW point
/// carries the assembled partition's size-weighted F as the `partition_f`
/// extra.
pub fn dcsbm_comparison(scale: Scale, base_seed: u64, options: RunOptions) -> FigureResult {
    let n = comparison_size(scale);
    let r = 2usize;
    let options = heterogeneous_options(options);
    let mut figure = FigureResult::new(
        format!(
            "Degree-corrected SBM comparison \
             (n = {n}, r = {r}, CDRW variant = {options})"
        ),
        "F-score",
    );
    // Intra-block expected weight at the baseline comparison's density;
    // 20:1 contrast keeps the planted conductance well below 1/2 across the
    // whole θ sweep.
    let b_in = params::log_squared_n_over_n(n, 2.0);
    let b_out = b_in / 20.0;
    let clock = BudgetClock::for_scale(scale);
    for (label, theta_min, theta_max) in [
        ("θ ≡ 1", 1.0, 1.0),
        ("θ ∈ [0.6, 1.8]", 0.6, 1.8),
        ("θ ∈ [0.4, 2.4]", 0.4, 2.4),
    ] {
        if clock.expired() {
            figure.mark_truncated();
            break;
        }
        let params = DcsbmParams::symmetric(n, r, b_in, b_out, theta_min, theta_max)
            .expect("two blocks divide n and the matrix is valid");
        let (graph, truth) = generate_dcsbm(&params, base_seed).expect("validated parameters");
        let delta = planted_weighted_conductance(&graph, &truth);
        let scores = cdrw_scores_on(&graph, &truth, delta, base_seed, options);
        let x = label.to_string();
        figure.push(
            DataPoint::new("CDRW", x.clone(), scores.detections_f)
                .with_extra("partition_f", scores.partition_f)
                .with_extra("delta", delta),
        );
        push_baseline_points(&mut figure, &graph, &truth, &x, r, base_seed);
    }
    figure
}

/// Compares CDRW (ensemble + assembly) with the four baselines on weighted
/// PPM instances: the topology (and every baseline's input signal) is one
/// fixed sparse two-block PPM; only the intra/inter edge-weight contrast
/// `w_in : w_out` grows along the x-axis. The `w = 1 : 1` column is the
/// unweighted graph (weight lane engaged, all weights 1.0 — bit-identical
/// to the unweighted run by the weight-lane property tests), so any CDRW
/// movement along the sweep is the weighted walk exploiting the lane.
pub fn weighted_ppm_comparison(scale: Scale, base_seed: u64, options: RunOptions) -> FigureResult {
    let n = comparison_size(scale);
    let r = 2usize;
    let options = heterogeneous_options(options);
    let mut figure = FigureResult::new(
        format!(
            "Weighted PPM comparison, fixed topology \
             (n = {n}, r = {r}, CDRW variant = {options})"
        ),
        "F-score",
    );
    // A deliberately hard sparse topology (the steepest q of the Figure 3
    // sweep family) so the weight contrast has headroom to help.
    let p = params::log_squared_n_over_n(n, 2.0);
    let q = p / 4.0;
    let base = PpmParams::new(n, r, p, q).expect("two blocks divide n");
    let clock = BudgetClock::for_scale(scale);
    for (label, w_in, w_out) in [
        ("w = 1 : 1", 1.0, 1.0),
        ("w = 2 : 1", 2.0, 1.0),
        ("w = 8 : 1", 8.0, 1.0),
    ] {
        if clock.expired() {
            figure.mark_truncated();
            break;
        }
        let params = WeightedPpmParams::new(base, w_in, w_out).expect("positive weights");
        let (graph, truth) =
            generate_weighted_ppm(&params, base_seed).expect("validated parameters");
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let scores = cdrw_scores_on(&graph, &truth, delta, base_seed, options);
        let x = label.to_string();
        figure.push(
            DataPoint::new("CDRW", x.clone(), scores.detections_f)
                .with_extra("partition_f", scores.partition_f)
                .with_extra("delta", delta),
        );
        push_baseline_points(&mut figure, &graph, &truth, &x, r, base_seed);
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcsbm_table_has_all_five_methods_and_cdrw_holds_up() {
        let figure = dcsbm_comparison(Scale::Quick, 11, RunOptions::default());
        assert_eq!(figure.series_names().len(), 5);
        // 3 θ spreads × 5 methods.
        assert_eq!(figure.points.len(), 15);
        for point in &figure.points {
            assert!((0.0..=1.0).contains(&point.value), "{point:?}");
        }
        let cdrw = figure.series_values("CDRW");
        let mean: f64 = cdrw.iter().sum::<f64>() / cdrw.len() as f64;
        assert!(mean > 0.7, "CDRW mean F = {mean} across the θ sweep");
        // Every CDRW point carries the assembled-partition reading.
        for point in figure.points.iter().filter(|p| p.series == "CDRW") {
            let partition_f = point
                .extras
                .iter()
                .find(|(name, _)| name == "partition_f")
                .map(|(_, value)| *value)
                .expect("CDRW rows carry partition_f");
            assert!((0.0..=1.0).contains(&partition_f));
        }
    }

    #[test]
    fn weighted_ppm_table_pins_topology_and_sweeps_contrast() {
        let figure = weighted_ppm_comparison(Scale::Quick, 11, RunOptions::default());
        assert_eq!(figure.series_names().len(), 5);
        assert_eq!(figure.points.len(), 15);
        for point in &figure.points {
            assert!((0.0..=1.0).contains(&point.value), "{point:?}");
        }
        // The baselines are weight-blind, so their scores are identical
        // across the contrast sweep (same topology, same seeds).
        for series in ["LPA", "averaging dynamics", "spectral", "walktrap"] {
            let values = figure.series_values(series);
            assert!(
                values.iter().all(|v| v.to_bits() == values[0].to_bits()),
                "{series} moved on a pure weight change: {values:?}"
            );
        }
    }

    #[test]
    fn default_options_are_upgraded_to_ensemble_and_assembly() {
        let upgraded = heterogeneous_options(RunOptions::default());
        assert_eq!(
            upgraded.ensemble,
            EnsemblePolicy::Ensemble {
                walks: 5,
                quorum: 2
            }
        );
        assert_eq!(
            upgraded.assembly,
            AssemblyPolicy::Pooled {
                reseed: 4,
                quorum: 3
            }
        );
        // Explicit choices pass through untouched.
        let explicit = RunOptions {
            ensemble: EnsemblePolicy::Ensemble {
                walks: 3,
                quorum: 3,
            },
            assembly: AssemblyPolicy::reconcile_only(),
            ..RunOptions::default()
        };
        assert_eq!(heterogeneous_options(explicit), explicit);
    }

    #[test]
    fn planted_weighted_conductance_reads_the_weight_lane() {
        use cdrw_graph::GraphBuilder;
        // Two 2-cliques joined by a light bridge: block {0,1}, block {2,3}.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 4.0).unwrap();
        b.add_weighted_edge(2, 3, 4.0).unwrap();
        b.add_weighted_edge(1, 2, 2.0).unwrap();
        let g = b.build();
        let truth = Partition::from_assignment(vec![0, 0, 1, 1]).unwrap();
        // Each block: volume 4+4+2 = 10, cut 2.
        let phi = planted_weighted_conductance(&g, &truth);
        assert!((phi - 0.2).abs() < 1e-12);
    }
}
