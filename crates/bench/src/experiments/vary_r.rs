//! Figure 4: the effect of the number of planted communities `r`.

use cdrw_gen::{params, PpmParams};

use crate::{BudgetClock, DataPoint, FigureResult, RunOptions, Scale};

use super::{average_cdrw_scores, figure4_block};

/// Which of the two sub-figures to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure4Variant {
    /// Figure 4a: the block size is fixed (`n = r·2¹⁰` at full scale).
    FixedBlockSize,
    /// Figure 4b: the graph size is fixed (`n = 8·2¹⁰` at full scale).
    FixedGraphSize,
}

/// Reproduces Figure 4a or 4b: F-score versus `r ∈ {2, 4, 8}` for the
/// paper's four `p/q`-ratio series. Expected shape: accuracy decreases
/// slightly as `r` grows, and, comparing the variants at equal `r`, larger
/// communities (4b at small `r`) score higher.
pub fn figure4(
    variant: Figure4Variant,
    scale: Scale,
    base_seed: u64,
    options: RunOptions,
) -> FigureResult {
    let block = figure4_block(scale);
    let title = match variant {
        Figure4Variant::FixedBlockSize => format!(
            "Figure 4a: varying r with fixed community size \
             (n = r × {block}, variant = {options})"
        ),
        Figure4Variant::FixedGraphSize => format!(
            "Figure 4b: varying r with fixed graph size (n = {}, variant = {options})",
            8 * block
        ),
    };
    let mut figure = FigureResult::new(title, "F-score");
    let clock = BudgetClock::for_scale(scale);
    'r_values: for r in [2usize, 4, 8] {
        let n = match variant {
            Figure4Variant::FixedBlockSize => r * block,
            Figure4Variant::FixedGraphSize => 8 * block,
        };
        for point in params::figure4_series(n) {
            if clock.expired() {
                figure.mark_truncated();
                break 'r_values;
            }
            let ppm = PpmParams::new(n, r, point.p, point.q).expect("r divides n");
            let scores = average_cdrw_scores(&ppm, scale.trials(), base_seed, options);
            figure.push(
                DataPoint::new(
                    point.q_label.clone(),
                    format!("r = {r}"),
                    scores.detections_f,
                )
                .with_extra("partition F", scores.partition_f)
                .with_extra("n", n as f64)
                .with_extra("p", point.p)
                .with_extra("q", point.q),
            );
        }
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::average_cdrw_f_score;

    #[test]
    fn figure4a_quick_has_expected_structure() {
        let figure = figure4(
            Figure4Variant::FixedBlockSize,
            Scale::Quick,
            7,
            crate::RunOptions::default(),
        );
        // 3 values of r × 4 series.
        assert_eq!(figure.points.len(), 12);
        assert_eq!(figure.series_names().len(), 4);
        for point in &figure.points {
            assert!((0.0..=1.0).contains(&point.value), "{point:?}");
        }
        // Overall accuracy should be clearly better than chance.
        let mean: f64 =
            figure.points.iter().map(|p| p.value).sum::<f64>() / figure.points.len() as f64;
        assert!(mean > 0.5, "mean F = {mean}");
    }

    // Larger r values leak proportionally more walk mass across blocks, so
    // the strict 1/2e mixing condition under-fires there (quick-scale means
    // of ≈ 0.57–0.60 across seeds under the strict criterion, short of this
    // sweep's 0.6 target). The renormalised default criterion cancels the
    // leak and clears the bar; see ROADMAP.md for the full regime comparison.
    #[test]
    fn figure4a_mean_accuracy_reaches_target() {
        let figure = figure4(
            Figure4Variant::FixedBlockSize,
            Scale::Quick,
            7,
            crate::RunOptions::default(),
        );
        let mean: f64 =
            figure.points.iter().map(|p| p.value).sum::<f64>() / figure.points.len() as f64;
        assert!(mean > 0.6, "mean F = {mean}");
    }

    // PR 2 left the Figure 4a sparse series — `p/q ∝ ln n` at r ∈ {4, 8},
    // i.e. inter-block density within a log factor of intra-block — as the
    // open accuracy frontier (renormalised F ≈ 0.1–0.5; see ROADMAP.md).
    // Multi-seed evidence aggregation closes it: the 5-walk quorum-2
    // ensemble must beat the single-walk mean on those four cells by at
    // least 0.15. This runs un-`#[ignore]`d; the seed matches the
    // experiments binary so the asserted numbers are the ones ROADMAP.md
    // records.
    #[test]
    fn figure4a_sparse_cells_improve_under_the_ensemble() {
        use cdrw_core::EnsemblePolicy;
        let base_seed = 20190416;
        let ensemble = crate::RunOptions {
            criterion: cdrw_core::MixingCriterion::default(),
            ensemble: EnsemblePolicy::Ensemble {
                walks: 5,
                quorum: 2,
            },
            assembly: cdrw_core::AssemblyPolicy::Raw,
        };
        let mut single_mean = 0.0;
        let mut ensemble_mean = 0.0;
        let mut cells = 0usize;
        for r in [4usize, 8] {
            let n = r * figure4_block(Scale::Quick);
            for point in params::figure4_series(n) {
                if point.q_label.contains("(ln n)²") {
                    continue;
                }
                let ppm = PpmParams::new(n, r, point.p, point.q).expect("r divides n");
                let trials = Scale::Quick.trials();
                single_mean +=
                    average_cdrw_f_score(&ppm, trials, base_seed, crate::RunOptions::default());
                ensemble_mean += average_cdrw_f_score(&ppm, trials, base_seed, ensemble);
                cells += 1;
            }
        }
        assert_eq!(cells, 4, "two sparse series at each of r = 4 and r = 8");
        single_mean /= cells as f64;
        ensemble_mean /= cells as f64;
        assert!(
            ensemble_mean >= single_mean + 0.15,
            "sparse-cell mean under ensemble(5/2) = {ensemble_mean:.3}, \
             single = {single_mean:.3}: improvement below the 0.15 bar"
        );
    }

    // PR 3's ensemble closed most of the Figure 4a sparse frontier but left
    // the r = 8 cells at F ≈ 0.28/0.47: near the connectivity threshold with
    // eight blocks, even the 5-walk ensemble stops on plateau-sized
    // fragments and the pool loop shreds each block across several
    // detections. The global assembly layer pools evidence across those
    // detections — grouping heavily-overlapping fragments, re-seeding walks
    // across the merged groups, pruning interlopers by in-group affinity —
    // and must lift the r = 8 sparse-cell mean by at least 0.10 over the
    // plain ensemble(5/2). This runs un-`#[ignore]`d; the seed matches the
    // experiments binary so the asserted numbers are the ones ROADMAP.md
    // records.
    #[test]
    fn figure4a_r8_sparse_cells_improve_under_the_assembly() {
        use cdrw_core::{AssemblyPolicy, EnsemblePolicy};
        let base_seed = 20190416;
        let ensemble_only = crate::RunOptions {
            criterion: cdrw_core::MixingCriterion::default(),
            ensemble: EnsemblePolicy::Ensemble {
                walks: 5,
                quorum: 2,
            },
            assembly: AssemblyPolicy::Raw,
        };
        let assembled = crate::RunOptions {
            assembly: AssemblyPolicy::Pooled {
                reseed: 4,
                quorum: 3,
            },
            ..ensemble_only
        };
        let r = 8usize;
        let n = r * figure4_block(Scale::Quick);
        let mut ensemble_mean = 0.0;
        let mut assembled_mean = 0.0;
        let mut cells = 0usize;
        for point in params::figure4_series(n) {
            if point.q_label.contains("(ln n)²") {
                continue;
            }
            let ppm = PpmParams::new(n, r, point.p, point.q).expect("r divides n");
            let trials = Scale::Quick.trials();
            ensemble_mean += average_cdrw_f_score(&ppm, trials, base_seed, ensemble_only);
            assembled_mean += average_cdrw_f_score(&ppm, trials, base_seed, assembled);
            cells += 1;
        }
        assert_eq!(cells, 2, "the two p/q ∝ ln n series at r = 8");
        ensemble_mean /= cells as f64;
        assembled_mean /= cells as f64;
        assert!(
            assembled_mean >= ensemble_mean + 0.10,
            "r = 8 sparse-cell mean under assembly = {assembled_mean:.3}, \
             ensemble(5/2) alone = {ensemble_mean:.3}: improvement below the 0.10 bar"
        );
    }

    #[test]
    fn figure4b_fixes_the_graph_size() {
        let figure = figure4(
            Figure4Variant::FixedGraphSize,
            Scale::Quick,
            7,
            crate::RunOptions::default(),
        );
        for point in &figure.points {
            let n = point.extras.iter().find(|(name, _)| name == "n").unwrap().1;
            assert_eq!(n as usize, 8 * figure4_block(Scale::Quick));
        }
    }
}
