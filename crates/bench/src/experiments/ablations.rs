//! Ablations of CDRW's design choices.
//!
//! The paper motivates three specific constants/choices without measuring
//! them directly: the candidate-size growth factor `1 + 1/8e` (instead of
//! doubling), the stop threshold `δ = Φ_G` (instead of an arbitrary
//! constant), and the mixing threshold `1/2e`. A fourth ablation compares
//! the pluggable mixing criteria head-to-head — the strict paper rule, the
//! lazy-walk variant, the renormalised restricted score (this library's
//! default), and the adaptive threshold — on the same instance. The first
//! four ablations run on a fixed two-block PPM instance; a fifth compares
//! the evidence-aggregation ensemble policies on a Figure-4a-shaped sparse
//! instance (`r = 4`, `p/q = 2^0.6·ln n` — the regime where the single walk
//! stops on transient plateaus and multi-seed evidence closes the gap), and
//! a sixth compares the global assembly policies (raw first-claim
//! resolution against cross-detection evidence pooling, with and without
//! re-seed walks) on that same sparse instance under ensemble(5/2)
//! detections.

use cdrw_core::{AssemblyPolicy, Cdrw, CdrwConfig, DeltaPolicy, EnsemblePolicy, MixingCriterion};
use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_metrics::f_score_for_detections;

use crate::{BudgetClock, DataPoint, FigureResult, Scale};

fn ablation_instance(
    scale: Scale,
    seed: u64,
) -> (cdrw_graph::Graph, cdrw_graph::Partition, PpmParams) {
    let n = match scale {
        Scale::Quick => 512,
        Scale::Full => 2048,
        Scale::Huge => 8192,
    };
    let p = (2.0 * (n as f64).ln().powi(2) / n as f64).min(1.0);
    let q = 0.6 / n as f64;
    let params = PpmParams::new(n, 2, p, q).expect("two blocks divide n");
    let (graph, truth) = generate_ppm(&params, seed).expect("validated parameters");
    (graph, truth, params)
}

fn run(graph: &cdrw_graph::Graph, truth: &cdrw_graph::Partition, config: CdrwConfig) -> (f64, f64) {
    let result = Cdrw::new(config)
        .detect_all(graph)
        .expect("non-degenerate graph");
    let f = f_score_for_detections(
        result
            .detections()
            .iter()
            .map(|d| (d.members.as_slice(), d.seed)),
        truth,
    )
    .f_score;
    (f, result.total_walk_steps() as f64)
}

/// The Figure-4a-shaped sparse instance the ensemble ablation runs on: four
/// blocks with `p = 2(ln n)²/n` and `p/q = 2^0.6·ln n`, the sparse frontier
/// where the single walk under-detects.
fn sparse_instance(
    scale: Scale,
    seed: u64,
) -> (cdrw_graph::Graph, cdrw_graph::Partition, PpmParams) {
    let n = match scale {
        Scale::Quick => 1024,
        Scale::Full => 4096,
        Scale::Huge => 16384,
    };
    let ln_n = (n as f64).ln();
    let p = (2.0 * ln_n * ln_n / n as f64).min(1.0);
    let q = (p / (2f64.powf(0.6) * ln_n)).min(1.0);
    let params = PpmParams::new(n, 4, p, q).expect("four blocks divide n");
    let (graph, truth) = generate_ppm(&params, seed).expect("validated parameters");
    (graph, truth, params)
}

/// Runs all six ablations and reports F-score plus total walk steps for
/// each variant. Under [`Scale::Huge`] the run is wall-clock budgeted at
/// ablation-section boundaries (a section's internal variants always run
/// together so each reported series stays complete).
pub fn ablations(scale: Scale, base_seed: u64) -> FigureResult {
    let clock = BudgetClock::for_scale(scale);
    let (graph, truth, params) = ablation_instance(scale, base_seed);
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    let mut figure = FigureResult::new(
        format!(
            "Ablations on a two-block PPM (n = {}, p/q ≈ {:.0})",
            graph.num_vertices(),
            params.p_over_q()
        ),
        "F-score",
    );

    // 1. Candidate-size growth factor: the paper's 1 + 1/8e vs doubling.
    for (label, factor) in [
        (
            "growth = 1 + 1/8e (paper)",
            1.0 + 1.0 / (8.0 * std::f64::consts::E),
        ),
        ("growth = 1.5", 1.5),
        ("growth = 2.0 (doubling)", 2.0),
    ] {
        let config = CdrwConfig::builder()
            .seed(base_seed)
            .delta(delta)
            .size_growth_factor(factor)
            .build();
        let (f, steps) = run(&graph, &truth, config);
        figure
            .push(DataPoint::new("growth factor", label, f).with_extra("total walk steps", steps));
    }

    if clock.expired() {
        figure.mark_truncated();
        return figure;
    }

    // 2. Stop threshold δ: the planted conductance vs fixed constants vs the
    //    sweep estimate.
    let delta_variants: Vec<(String, DeltaPolicy)> = vec![
        ("δ = Φ_G (paper)".to_string(), DeltaPolicy::Fixed(delta)),
        ("δ = 0.5".to_string(), DeltaPolicy::Fixed(0.5)),
        ("δ = 0.9".to_string(), DeltaPolicy::Fixed(0.9)),
        ("δ = sweep estimate".to_string(), DeltaPolicy::SweepEstimate),
    ];
    for (label, policy) in delta_variants {
        let config = CdrwConfig::builder()
            .seed(base_seed)
            .delta_policy(policy)
            .build();
        let (f, steps) = run(&graph, &truth, config);
        figure.push(DataPoint::new("delta policy", label, f).with_extra("total walk steps", steps));
    }

    if clock.expired() {
        figure.mark_truncated();
        return figure;
    }

    // 3. Mixing threshold: 1/2e vs looser and tighter values.
    for (label, threshold) in [
        ("threshold = 1/4e", 1.0 / (4.0 * std::f64::consts::E)),
        (
            "threshold = 1/2e (paper)",
            1.0 / (2.0 * std::f64::consts::E),
        ),
        ("threshold = 1/e", 1.0 / std::f64::consts::E),
    ] {
        let config = CdrwConfig::builder()
            .seed(base_seed)
            .delta(delta)
            .mixing_threshold(threshold)
            .build();
        let (f, steps) = run(&graph, &truth, config);
        figure.push(
            DataPoint::new("mixing threshold", label, f).with_extra("total walk steps", steps),
        );
    }

    if clock.expired() {
        figure.mark_truncated();
        return figure;
    }

    // 4. Mixing criterion, head-to-head: the paper's strict rule against the
    //    lazy, renormalised (library default) and adaptive variants.
    for criterion in MixingCriterion::all() {
        let label = if criterion == MixingCriterion::Strict {
            "criterion = strict (paper)".to_string()
        } else if criterion == MixingCriterion::default() {
            format!("criterion = {criterion} (default)")
        } else {
            format!("criterion = {criterion}")
        };
        let config = CdrwConfig::builder()
            .seed(base_seed)
            .delta(delta)
            .criterion(criterion)
            .build();
        let (f, steps) = run(&graph, &truth, config);
        figure.push(
            DataPoint::new("mixing criterion", label, f).with_extra("total walk steps", steps),
        );
    }

    if clock.expired() {
        figure.mark_truncated();
        return figure;
    }

    // 5. Ensemble policy, on the sparse Figure-4a frontier instance: the
    //    single walk against multi-seed evidence aggregation at increasing
    //    walk counts.
    let (sparse_graph, sparse_truth, sparse_params) = sparse_instance(scale, base_seed);
    let sparse_delta = sparse_params.expected_block_conductance().clamp(0.01, 1.0);
    for (label, policy) in [
        ("single walk (paper)", EnsemblePolicy::Single),
        (
            "ensemble 3 walks, quorum 2",
            EnsemblePolicy::Ensemble {
                walks: 3,
                quorum: 2,
            },
        ),
        (
            "ensemble 5 walks, quorum 2",
            EnsemblePolicy::Ensemble {
                walks: 5,
                quorum: 2,
            },
        ),
        (
            "ensemble 9 walks, quorum 3",
            EnsemblePolicy::Ensemble {
                walks: 9,
                quorum: 3,
            },
        ),
    ] {
        let config = CdrwConfig::builder()
            .seed(base_seed)
            .delta(sparse_delta)
            .ensemble_policy(policy)
            .build();
        let (f, steps) = run(&sparse_graph, &sparse_truth, config);
        figure.push(
            DataPoint::new("ensemble policy (sparse 4-block PPM)", label, f)
                .with_extra("total walk steps", steps),
        );
    }

    if clock.expired() {
        figure.mark_truncated();
        return figure;
    }

    // 6. Assembly policy, on the same sparse frontier instance under the
    //    ensemble(5/2) detections: raw first-claim resolution against
    //    cross-detection evidence pooling, with and without re-seed walks.
    for (label, policy) in [
        ("raw (first claim wins)", AssemblyPolicy::Raw),
        ("pooled, reconcile only", AssemblyPolicy::reconcile_only()),
        (
            "pooled + 4 re-seed walks, quorum 3",
            AssemblyPolicy::Pooled {
                reseed: 4,
                quorum: 3,
            },
        ),
    ] {
        let config = CdrwConfig::builder()
            .seed(base_seed)
            .delta(sparse_delta)
            .ensemble(5, 2)
            .assembly_policy(policy)
            .build();
        let result = Cdrw::new(config)
            .detect_all(&sparse_graph)
            .expect("non-degenerate graph");
        let f = f_score_for_detections(
            result
                .detections()
                .iter()
                .map(|d| (d.members.as_slice(), d.seed)),
            &sparse_truth,
        )
        .f_score;
        let partition_f = cdrw_metrics::f_score_weighted(result.partition(), &sparse_truth).f_score;
        figure.push(
            DataPoint::new("assembly policy (sparse 4-block PPM)", label, f)
                .with_extra("partition F", partition_f)
                .with_extra(
                    "merged detections",
                    result
                        .assembly()
                        .map(|r| r.merged_detections as f64)
                        .unwrap_or(0.0),
                ),
        );
    }

    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_cover_six_design_choices() {
        let figure = ablations(Scale::Quick, 9);
        let series = figure.series_names();
        assert_eq!(
            series,
            vec![
                "growth factor".to_string(),
                "delta policy".to_string(),
                "mixing threshold".to_string(),
                "mixing criterion".to_string(),
                "ensemble policy (sparse 4-block PPM)".to_string(),
                "assembly policy (sparse 4-block PPM)".to_string()
            ]
        );
        for point in &figure.points {
            assert!((0.0..=1.0).contains(&point.value), "{point:?}");
        }
        // The paper's configuration should be competitive within each ablation.
        let paper_growth = figure
            .points
            .iter()
            .find(|p| p.x_label.contains("paper") && p.series == "growth factor")
            .unwrap()
            .value;
        assert!(paper_growth > 0.7, "paper growth factor F = {paper_growth}");
        // The criterion ablation covers all four rules, and the default is
        // at least as accurate as the strict paper rule on this instance.
        let criteria = figure.series_values("mixing criterion");
        assert_eq!(criteria.len(), 4);
        let strict = figure
            .points
            .iter()
            .find(|p| p.series == "mixing criterion" && p.x_label.contains("strict"))
            .unwrap()
            .value;
        let default = figure
            .points
            .iter()
            .find(|p| p.series == "mixing criterion" && p.x_label.contains("default"))
            .unwrap()
            .value;
        assert!(
            default >= strict - 0.05,
            "default criterion F = {default}, strict F = {strict}"
        );
        // The ensemble ablation covers the single walk plus three ensembles,
        // and on the sparse instance the 5-walk ensemble beats the single
        // walk clearly.
        let ensembles = figure.series_values("ensemble policy (sparse 4-block PPM)");
        assert_eq!(ensembles.len(), 4);
        let single = figure
            .points
            .iter()
            .find(|p| p.series.starts_with("ensemble") && p.x_label.contains("single"))
            .unwrap()
            .value;
        let five = figure
            .points
            .iter()
            .find(|p| p.series.starts_with("ensemble") && p.x_label.contains("5 walks"))
            .unwrap()
            .value;
        assert!(
            five > single + 0.1,
            "ensemble(5/2) F = {five}, single F = {single}"
        );
        // The assembly ablation covers raw plus two pooled variants, and the
        // pooled assembly never scores below raw on this fragmented
        // instance.
        let assemblies = figure.series_values("assembly policy (sparse 4-block PPM)");
        assert_eq!(assemblies.len(), 3);
        let raw = figure
            .points
            .iter()
            .find(|p| p.series.starts_with("assembly") && p.x_label.contains("raw"))
            .unwrap()
            .value;
        let pooled = figure
            .points
            .iter()
            .find(|p| p.series.starts_with("assembly") && p.x_label.contains("re-seed"))
            .unwrap()
            .value;
        assert!(
            pooled >= raw - 0.02,
            "pooled assembly F = {pooled}, raw F = {raw}"
        );
    }
}
