//! Theorem 5/6 and §III-B: CONGEST and k-machine complexity measurements.

use cdrw_congest::{CongestCdrw, CongestConfig};
use cdrw_core::CdrwConfig;
use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_kmachine::{paper_round_bound, KMachineConfig, KMachineEngine, KMachineSimulator};

use crate::{BudgetClock, DataPoint, FigureResult, RunOptions, Scale};

/// Parameters of the PPM family used by the distributed-complexity
/// experiments: `r = 2`, `p = 12·ln n/n`, `q = p/40` — comfortably inside the
/// Theorem 6 recovery regime so the measured costs correspond to correct
/// detections.
fn complexity_ppm(n: usize) -> PpmParams {
    let p = (12.0 * (n as f64).ln() / n as f64).min(1.0);
    let q = (p / 40.0).min(1.0);
    PpmParams::new(n, 2, p, q).expect("two blocks divide every even n")
}

fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![128, 256, 512],
        Scale::Full => vec![128, 256, 512, 1024, 2048],
        // The CONGEST runner's accounting scans every edge of the graph per
        // walk step, so the Huge tier extends the curve rather than chasing
        // 2²⁰ here; the million-vertex points belong to Figure 2.
        Scale::Huge => vec![1024, 2048, 4096, 8192],
    }
}

/// Reproduces the Theorem 5/6 complexity claims: rounds and messages per
/// detected community as `n` grows, next to the theoretical `log⁴ n` and
/// `m = n²(p + q(r−1))/r` reference curves (up to constants).
pub fn congest_scaling(scale: Scale, base_seed: u64, options: RunOptions) -> FigureResult {
    let mut figure = FigureResult::new(
        format!(
            "Theorem 5/6: CONGEST rounds and messages per community vs n \
             (variant = {options})"
        ),
        "rounds/community",
    );
    let clock = BudgetClock::for_scale(scale);
    for n in sizes(scale) {
        if clock.expired() {
            figure.mark_truncated();
            break;
        }
        let params = complexity_ppm(n);
        let (graph, _) = generate_ppm(&params, base_seed).expect("validated parameters");
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let algorithm = CdrwConfig::builder()
            .seed(base_seed)
            .delta(delta)
            .criterion(options.criterion)
            .ensemble_policy(options.ensemble)
            .assembly_policy(options.assembly)
            .build();
        let report = CongestCdrw::new(CongestConfig::new(algorithm))
            .detect_all(&graph)
            .expect("non-degenerate graph");
        let ln_n = (n as f64).ln();
        let theory_rounds = ln_n.powi(4);
        // Theorem 5's expected message count per community:
        // n²/r · (p + q(r−1)), i.e. the number of edges touched by the walk.
        let theory_messages =
            (n as f64).powi(2) / params.r as f64 * (params.p + params.q * (params.r as f64 - 1.0));
        figure.push(
            DataPoint::new(
                "measured",
                format!("n = {n}"),
                report.rounds_per_community(),
            )
            .with_extra("messages/community", report.messages_per_community())
            .with_extra("log^4 n (theory shape)", theory_rounds)
            .with_extra("m per community (theory shape)", theory_messages)
            .with_extra("communities", report.per_community.len() as f64)
            .with_extra("edges", graph.num_edges() as f64),
        );
    }
    figure
}

/// Reproduces the §III-B k-machine claim: round complexity versus the number
/// of machines `k`, with the paper's closed-form `Õ((n²/k² + n/(kr))(p+q(r−1)))`
/// prediction alongside.
pub fn kmachine_scaling(scale: Scale, base_seed: u64, options: RunOptions) -> FigureResult {
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 1024,
        Scale::Huge => 4096,
    };
    let params = complexity_ppm(n);
    let (graph, _) = generate_ppm(&params, base_seed).expect("validated parameters");
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    let algorithm = CdrwConfig::builder()
        .seed(base_seed)
        .delta(delta)
        .criterion(options.criterion)
        .ensemble_policy(options.ensemble)
        .assembly_policy(options.assembly)
        .build();
    let congest = CongestConfig::new(algorithm);

    let mut figure = FigureResult::new(
        format!("k-machine model: CDRW round complexity vs k (n = {n}, r = 2)"),
        "conversion rounds",
    );
    for k in [2usize, 4, 8, 16, 32] {
        let config = KMachineConfig::new(k)
            .with_congest(congest)
            .with_partition_seed(base_seed);
        let report = KMachineSimulator::new(config)
            .expect("k >= 2")
            .run(&graph)
            .expect("non-degenerate graph");
        figure.push(
            DataPoint::new(
                "measured (Conversion Theorem)",
                format!("k = {k}"),
                report.conversion_rounds,
            )
            .with_extra("refined (cross-machine only)", report.refined_rounds())
            .with_extra(
                "paper closed form",
                paper_round_bound(n, params.r, params.p, params.q, k),
            )
            .with_extra("cross-machine fraction", report.cross_machine_fraction)
            .with_extra("max vertices/machine", report.partition.max_vertices as f64),
        );
    }
    figure
}

/// The real k-machine execution engine (not the simulator): runs the full
/// pipeline distributed over `k` worker shards and reports the *measured*
/// flood message counts next to the exact-delta model's prediction — the two
/// must agree exactly (the engine's conformance contract), so this table
/// doubles as a standing end-to-end check of the sharded execution.
///
/// `k_override` (the CLI's `--kmachine K`) pins a single shard count;
/// otherwise the table sweeps `k ∈ {1, 2, 4, 8}`.
pub fn kmachine_execution(
    scale: Scale,
    base_seed: u64,
    options: RunOptions,
    k_override: Option<usize>,
) -> FigureResult {
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 256,
        // The coordinator gathers every lane's full support per round, so
        // the Huge tier stays moderate; scale lives in Figure 2.
        Scale::Huge => 512,
    };
    let params = complexity_ppm(n);
    let (graph, _) = generate_ppm(&params, base_seed).expect("validated parameters");
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    let algorithm = CdrwConfig::builder()
        .seed(base_seed)
        .delta(delta)
        .criterion(options.criterion)
        .ensemble_policy(options.ensemble)
        .assembly_policy(options.assembly)
        .build();

    let ks: Vec<usize> = match k_override {
        Some(k) => vec![k],
        None => vec![1, 2, 4, 8],
    };
    let mut figure = FigureResult::new(
        format!(
            "k-machine execution engine: measured flood messages vs the \
             exact-delta model (n = {n}, variant = {options})"
        ),
        "measured messages",
    );
    for k in ks {
        let config = KMachineConfig::new(k)
            .with_congest(CongestConfig::new(algorithm))
            .with_partition_seed(base_seed);
        let report = KMachineEngine::new(config)
            .expect("k >= 1")
            .run(&graph)
            .expect("non-degenerate graph");
        let ledger = &report.conformance;
        figure.push(
            DataPoint::new(
                "measured",
                format!("k = {k}"),
                ledger.measured_messages as f64,
            )
            .with_extra("modelled messages", ledger.modelled_messages as f64)
            .with_extra("physical rounds", ledger.physical_rounds as f64)
            .with_extra("lane rounds", ledger.lane_rounds as f64)
            .with_extra("communities", report.result.detections().len() as f64)
            .with_extra("max vertices/shard", report.partition.max_vertices as f64)
            .with_extra("cross edges", report.partition.cross_edges as f64),
        );
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congest_scaling_grows_slower_than_n() {
        let figure = congest_scaling(Scale::Quick, 3, crate::RunOptions::default());
        let measured = figure.series_values("measured");
        assert_eq!(measured.len(), 3);
        // n quadruples from 128 to 512; polylog rounds must grow far slower.
        let growth = measured[2] / measured[0];
        assert!(
            growth < 4.0,
            "rounds grew by {growth}× over a 4× size increase"
        );
    }

    #[test]
    fn kmachine_execution_measures_exactly_what_the_model_predicts() {
        let figure = kmachine_execution(Scale::Quick, 3, crate::RunOptions::default(), None);
        let measured = figure.series_values("measured");
        assert_eq!(measured.len(), 4);
        for point in &figure.points {
            let modelled = point.extras.iter().find(|(k, _)| k == "modelled messages");
            assert_eq!(point.value, modelled.unwrap().1, "{}", point.x_label);
            assert!(point.value > 0.0);
        }
        // Every shard count runs the same walks, so the flood is identical.
        assert!(measured.windows(2).all(|w| w[0] == w[1]), "{measured:?}");
    }

    #[test]
    fn kmachine_execution_honours_the_k_override() {
        let figure = kmachine_execution(Scale::Quick, 3, crate::RunOptions::default(), Some(3));
        assert_eq!(figure.points.len(), 1);
        assert_eq!(figure.points[0].x_label, "k = 3");
    }

    #[test]
    fn kmachine_rounds_decrease_with_k() {
        let figure = kmachine_scaling(Scale::Quick, 3, crate::RunOptions::default());
        let measured = figure.series_values("measured (Conversion Theorem)");
        assert_eq!(measured.len(), 5);
        for window in measured.windows(2) {
            assert!(window[1] < window[0], "{measured:?}");
        }
        // Scaling should be at least linear in k overall.
        assert!(measured[0] / measured[4] > 8.0, "{measured:?}");
    }
}
