//! Figure 1: the showcase PPM graph and its planted structure.

use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_graph::properties;

use crate::{DataPoint, FigureResult, RunOptions};

use super::cdrw_scores_on;

/// Regenerates the data behind Figure 1 — the `n = 1000`, `r = 5`,
/// `p = 1/20`, `q = 1/1000` planted partition graph — and reports, per block,
/// the measured intra-edge density, conductance and the CDRW detection
/// accuracy on exactly this instance (under the given run options). The
/// DOT renderings themselves are produced by the `ppm_showcase` example.
pub fn figure1(seed: u64, options: RunOptions) -> FigureResult {
    let params = PpmParams::new(1000, 5, 1.0 / 20.0, 1.0 / 1000.0).expect("figure 1 parameters");
    let (graph, truth) = generate_ppm(&params, seed).expect("validated parameters");
    let mut figure = FigureResult::new(
        format!(
            "Figure 1: PPM showcase graph (n = 1000, r = 5, p = 1/20, q = 1/1000, \
             variant = {options})"
        ),
        "block conductance",
    );
    for (block, members) in truth.communities() {
        let phi = properties::set_conductance(&graph, members);
        figure.push(
            DataPoint::new("planted block", format!("block {block}"), phi)
                .with_extra("size", members.len() as f64)
                .with_extra(
                    "intra density",
                    properties::internal_density(&graph, members),
                )
                .with_extra("cut edges", properties::cut_size(&graph, members) as f64),
        );
    }
    let scores = cdrw_scores_on(
        &graph,
        &truth,
        params.expected_block_conductance(),
        seed,
        options,
    );
    figure.push(
        DataPoint::new("whole graph", "CDRW F-score", scores.detections_f)
            .with_extra("partition F", scores.partition_f)
            .with_extra("edges", graph.num_edges() as f64)
            .with_extra("expected degree", params.expected_degree()),
    );
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_blocks_have_low_conductance_and_cdrw_recovers_them() {
        let figure = figure1(4, crate::RunOptions::default());
        // Five blocks plus the summary row.
        assert_eq!(figure.points.len(), 6);
        for point in figure.points.iter().take(5) {
            assert!(point.value < 0.2, "block conductance {point:?}");
            let size = point.extras.iter().find(|(n, _)| n == "size").unwrap().1;
            assert_eq!(size as usize, 200);
        }
        let summary = figure.points.last().unwrap();
        assert!((0.0..=1.0).contains(&summary.value));
    }

    // In the r = 5, p = 1/20, q = 1/1000 regime the inter-block leak
    // (≈ 7% of the walk's mass per step) pushes the un-normalised restricted
    // L1 score above the strict 1/2e threshold before the walk equalises
    // inside a block, so the strict criterion rarely reports block-sized
    // mixing sets (observed 0.15–0.65 across seeds). The renormalised default
    // criterion scores the walk's conditional distribution instead, which
    // cancels the leak and restores the paper's accuracy; see ROADMAP.md for
    // the full regime comparison.
    #[test]
    fn figure1_cdrw_recovers_blocks_with_paper_accuracy() {
        let figure = figure1(4, crate::RunOptions::default());
        let summary = figure.points.last().unwrap();
        assert!(
            summary.value > 0.9,
            "CDRW F on the showcase graph = {}",
            summary.value
        );
    }
}
