//! Micro perf measurements recorded into `BENCH_results.json` and asserted
//! by the perf-smoke acceptance test.
//!
//! The headline perf claim of the prefix-scan sweep — one incremental pass
//! over the merged candidate order instead of an `O(Σ|S|)` re-scan per
//! candidate size — is measured here on a quick-scale Figure 4a instance
//! (the sparse 8-block PPM whose accuracy the ensemble/assembly stack was
//! built for), so the speedup travels with every CI artifact instead of
//! living in a one-off PR description.

use std::time::Instant;

use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_walk::{LocalMixingConfig, MixingCriterion, WalkEngine};

/// Measured sweep timings on the fig4a-sized instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpeedup {
    /// Vertices of the instance.
    pub n: usize,
    /// Support size of the measured walk state.
    pub support: usize,
    /// Best-of-samples time of one per-size reference sweep, in nanoseconds.
    pub per_size_ns: f64,
    /// Best-of-samples time of one prefix-scan sweep, in nanoseconds.
    pub prefix_ns: f64,
}

impl SweepSpeedup {
    /// How many times faster the prefix scan is.
    pub fn speedup(&self) -> f64 {
        self.per_size_ns / self.prefix_ns
    }
}

/// Measured unweighted-step timings: the current weight-dispatching kernel
/// against the preserved pre-weight-lane kernel, on the same unweighted
/// instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOverhead {
    /// Vertices of the instance.
    pub n: usize,
    /// Support size of the measured walk state (steady-state spread).
    pub support: usize,
    /// Best-of-samples time of one [`cdrw_walk::WalkEngine::step`], in
    /// nanoseconds.
    pub step_ns: f64,
    /// Best-of-samples time of one
    /// [`cdrw_walk::WalkEngine::step_uniform_reference`] (the preserved
    /// pre-weight-lane kernel), in nanoseconds.
    pub reference_ns: f64,
}

impl StepOverhead {
    /// The current kernel's slowdown over the pre-weight-lane reference
    /// (1.0 = free; the perf-smoke acceptance bar is ≤ 1.1).
    pub fn ratio(&self) -> f64 {
        self.step_ns / self.reference_ns
    }
}

/// Measures the unweighted step path both ways — the current kernel (which
/// dispatches on the absent weight lane) against the preserved
/// pre-weight-lane uniform kernel — on a quick-scale Figure 4a instance.
/// Both workspaces are first spread to their steady-state support, where the
/// two kernels do identical per-step work (they are bit-identical on
/// unweighted graphs), so the ratio isolates the cost of the weight-lane
/// dispatch.
pub fn measure_step_overhead() -> StepOverhead {
    let r = 8usize;
    let block = 256usize;
    let n = r * block;
    let ln_n = (n as f64).ln();
    let p = 2.0 * ln_n * ln_n / n as f64;
    let q = p / (2f64.powf(0.6) * ln_n);
    let params = PpmParams::new(n, r, p, q).expect("valid fig4a parameters");
    let (graph, _) = generate_ppm(&params, 20190416).expect("valid fig4a instance");
    assert!(!graph.is_weighted(), "the PPM generator is unweighted");

    let engine = WalkEngine::new(&graph);
    let mut current_ws = engine.workspace();
    let mut reference_ws = engine.workspace();
    current_ws.load_point_mass(0).expect("vertex 0 exists");
    reference_ws.load_point_mass(0).expect("vertex 0 exists");
    // Spread to steady state: on this connected instance the support
    // saturates within a few steps, after which every step does the same
    // O(vol(support)) work.
    for _ in 0..16 {
        engine.step(&mut current_ws);
        engine.step_uniform_reference(&mut reference_ws);
    }
    assert_eq!(
        current_ws.as_slice(),
        reference_ws.as_slice(),
        "the kernels must agree bit-for-bit before timing"
    );
    let support = current_ws.support_size();

    let step_ns = best_of(|| engine.step(&mut current_ws), 10, 8);
    let reference_ns = best_of(|| engine.step_uniform_reference(&mut reference_ws), 10, 8);
    StepOverhead {
        n,
        support,
        step_ns,
        reference_ns,
    }
}

/// Times `routine` as best-of-`samples`, `iterations` runs per sample.
fn best_of<F: FnMut()>(mut routine: F, iterations: u32, samples: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(iterations));
    }
    best
}

/// Measures the renormalised sweep both ways — prefix scan
/// ([`WalkEngine::sweep`]) against the per-size reference
/// ([`WalkEngine::sweep_per_size`]) — on a quick-scale Figure 4a instance
/// (8 blocks of 256, `p = 2·(ln n)²/n`, `p/q = 2^0.6·ln n`), on a walk state
/// spread far enough that candidate prefixes are long.
pub fn measure_sweep_speedup() -> SweepSpeedup {
    let r = 8usize;
    let block = 256usize;
    let n = r * block;
    let ln_n = (n as f64).ln();
    let p = 2.0 * ln_n * ln_n / n as f64;
    let q = p / (2f64.powf(0.6) * ln_n);
    let params = PpmParams::new(n, r, p, q).expect("valid fig4a parameters");
    let (graph, _) = generate_ppm(&params, 20190416).expect("valid fig4a instance");

    let engine = WalkEngine::new(&graph);
    let config = LocalMixingConfig {
        criterion: MixingCriterion::Renormalized,
        ..LocalMixingConfig::for_graph_size(n)
    };
    let mut workspace = engine.workspace();
    workspace.load_point_mass(0).expect("vertex 0 exists");
    for _ in 0..8 {
        engine.step(&mut workspace);
    }
    let support = workspace.support_size();

    // Equal-work sanity check before timing: both paths agree on this state.
    let fast = engine.sweep(&mut workspace, &config).expect("sweep runs");
    let reference = engine
        .sweep_per_size(&mut workspace, &config)
        .expect("reference sweep runs");
    assert_eq!(fast.set, reference.set, "sweep paths diverged");

    let per_size_ns = best_of(
        || {
            let _ = engine.sweep_per_size(&mut workspace, &config).unwrap();
        },
        10,
        8,
    );
    let prefix_ns = best_of(
        || {
            let _ = engine.sweep(&mut workspace, &config).unwrap();
        },
        10,
        8,
    );
    SweepSpeedup {
        n,
        support,
        per_size_ns,
        prefix_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_overhead_ratio_reads_from_the_timings() {
        let measured = StepOverhead {
            n: 2048,
            support: 2048,
            step_ns: 1_050.0,
            reference_ns: 1_000.0,
        };
        assert!((measured.ratio() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn speedup_ratio_reads_from_the_timings() {
        let measured = SweepSpeedup {
            n: 2048,
            support: 1000,
            per_size_ns: 50_000.0,
            prefix_ns: 5_000.0,
        };
        assert!((measured.speedup() - 10.0).abs() < 1e-12);
    }
}
