//! A minimal JSON writer and reader for `BENCH_results.json`.
//!
//! The workspace's `serde` is a derive-only vendored shim (no
//! `serde_json`), so the machine-readable experiment record is emitted by
//! this small hand-rolled builder instead: objects, arrays, strings with
//! escaping, and numbers (non-finite floats become `null`, as JSON has no
//! representation for them). The output is deliberately pretty-printed with
//! stable key order so CI artifact diffs stay readable. [`Json::parse`] is
//! the matching reader — enough JSON to round-trip what the writer emits —
//! used by the `perf_gate` binary to diff a fresh `BENCH_results.json`
//! against the committed baselines under `ci/baselines/`.

use std::fmt::Write as _;

/// One JSON value, built bottom-up.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with keys in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an object.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("set({key}) on non-object {other:?}"),
        }
        self
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document (the subset the writer emits: `null`, booleans,
    /// finite decimal numbers, escaped strings, arrays, objects).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Looks up a field of an object (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the writer's output subset.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or(format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("invalid \\u escape at byte {}", self.pos))?;
                            // The writer only emits \u escapes for control
                            // characters, all inside the BMP.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or(format!("invalid code point at byte {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("invalid escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character (the input is a &str,
                    // so slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Number(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Number(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Number(x as f64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(0.5).render(), "0.5\n");
        assert_eq!(Json::from(42usize).render(), "42\n");
        assert_eq!(Json::Number(f64::NAN).render(), "null\n");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn objects_and_arrays_nest() {
        let doc = Json::object()
            .set("name", "fig1")
            .set("values", vec![1.0, 2.5])
            .set("empty", Json::Array(Vec::new()))
            .set("nested", Json::object().set("ok", true));
        let rendered = doc.render();
        assert_eq!(
            rendered,
            "{\n  \"name\": \"fig1\",\n  \"values\": [\n    1,\n    2.5\n  ],\n  \
             \"empty\": [],\n  \"nested\": {\n    \"ok\": true\n  }\n}\n"
        );
    }

    #[test]
    #[should_panic(expected = "on non-object")]
    fn set_on_non_object_panics() {
        let _ = Json::Null.set("k", 1.0);
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let doc = Json::object()
            .set("name", "fig2 \"smoke\"\n")
            .set("values", vec![1.0, -2.5e3, 0.125])
            .set("empty", Json::Array(Vec::new()))
            .set("none", Json::Null)
            .set("nested", Json::object().set("ok", true).set("no", false))
            .set("control", "\u{1}")
            .set("unicode", "Φ ≈ δ");
        let rendered = doc.render();
        let parsed = Json::parse(&rendered).expect("writer output parses");
        assert_eq!(parsed.render(), rendered);
        assert_eq!(
            parsed.get("name").unwrap().as_str(),
            Some("fig2 \"smoke\"\n")
        );
        assert_eq!(parsed.get("values").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            parsed.get("values").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2500.0)
        );
        assert_eq!(
            parsed.get("nested").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(parsed.get("none"), Some(&Json::Null));
        assert_eq!(parsed.get("unicode").unwrap().as_str(), Some("Φ ≈ δ"));
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} {}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        assert!(Json::Null.get("k").is_none());
        assert!(Json::from("s").as_f64().is_none());
        assert!(Json::from(1.0).as_str().is_none());
        assert!(Json::from(1.0).as_bool().is_none());
        assert!(Json::from(1.0).as_array().is_none());
    }
}
