//! A minimal JSON writer for `BENCH_results.json`.
//!
//! The workspace's `serde` is a derive-only vendored shim (no
//! `serde_json`), so the machine-readable experiment record is emitted by
//! this small hand-rolled builder instead: objects, arrays, strings with
//! escaping, and numbers (non-finite floats become `null`, as JSON has no
//! representation for them). The output is deliberately pretty-printed with
//! stable key order so CI artifact diffs stay readable.

use std::fmt::Write as _;

/// One JSON value, built bottom-up.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with keys in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an object.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("set({key}) on non-object {other:?}"),
        }
        self
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Number(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Number(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Number(x as f64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(0.5).render(), "0.5\n");
        assert_eq!(Json::from(42usize).render(), "42\n");
        assert_eq!(Json::Number(f64::NAN).render(), "null\n");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn objects_and_arrays_nest() {
        let doc = Json::object()
            .set("name", "fig1")
            .set("values", vec![1.0, 2.5])
            .set("empty", Json::Array(Vec::new()))
            .set("nested", Json::object().set("ok", true));
        let rendered = doc.render();
        assert_eq!(
            rendered,
            "{\n  \"name\": \"fig1\",\n  \"values\": [\n    1,\n    2.5\n  ],\n  \
             \"empty\": [],\n  \"nested\": {\n    \"ok\": true\n  }\n}\n"
        );
    }

    #[test]
    #[should_panic(expected = "on non-object")]
    fn set_on_non_object_panics() {
        let _ = Json::Null.set("k", 1.0);
    }
}
