//! Figure 4 bench: varying the number of planted communities r.
//!
//! Prints both quick-scale Figure 4 tables (4a: fixed block size, 4b: fixed
//! graph size), then benchmarks full detection as r grows with the block size
//! held constant — the regime where the paper's `O(r·polylog n)` round bound
//! translates into linear-in-r work.

use cdrw_bench::experiments::vary_r::{figure4, Figure4Variant};
use cdrw_bench::Scale;
use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, PpmParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    println!(
        "{}",
        figure4(
            Figure4Variant::FixedBlockSize,
            Scale::Quick,
            1,
            cdrw_bench::RunOptions::default()
        )
        .to_table()
    );
    println!(
        "{}",
        figure4(
            Figure4Variant::FixedGraphSize,
            Scale::Quick,
            1,
            cdrw_bench::RunOptions::default()
        )
        .to_table()
    );

    let block = 256usize;
    let mut group = c.benchmark_group("fig4_detect_all_vs_r");
    group.sample_size(10);
    for &r in &[2usize, 4, 8] {
        let n = r * block;
        let p = 2.0 * (n as f64).ln().powi(2) / n as f64;
        let q = p / (2f64.powf(0.6) * (n as f64).ln());
        let params = PpmParams::new(n, r, p, q).unwrap();
        let (graph, _) = generate_ppm(&params, 5).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).delta(delta).build());
        group.bench_with_input(BenchmarkId::from_parameter(r), &graph, |b, graph| {
            b.iter(|| black_box(cdrw.detect_all(graph).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
