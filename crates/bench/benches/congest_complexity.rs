//! Theorem 5/6 bench: CONGEST round and message complexity.
//!
//! Prints the measured rounds/messages per community against the theoretical
//! shapes, then benchmarks the CONGEST runner itself (the accounting adds
//! only a small overhead over the sequential algorithm).

use cdrw_bench::experiments::distributed;
use cdrw_bench::Scale;
use cdrw_congest::{CongestCdrw, CongestConfig};
use cdrw_core::CdrwConfig;
use cdrw_gen::{generate_ppm, PpmParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_congest(c: &mut Criterion) {
    println!(
        "{}",
        distributed::congest_scaling(Scale::Quick, 1, cdrw_bench::RunOptions::default()).to_table()
    );

    let mut group = c.benchmark_group("congest_detect_all");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let p = (12.0 * (n as f64).ln() / n as f64).min(1.0);
        let params = PpmParams::new(n, 2, p, p / 40.0).unwrap();
        let (graph, _) = generate_ppm(&params, 3).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let runner = CongestCdrw::new(CongestConfig::new(
            CdrwConfig::builder().seed(1).delta(delta).build(),
        ));
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| black_box(runner.detect_all(graph).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_congest);
criterion_main!(benches);
