//! Microbenchmarks of the substrates the headline results depend on:
//! graph generation, one walk step, one local-mixing sweep, and the F-score
//! computation. These are not paper figures; they document where the time in
//! the figure benches goes.

use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_metrics::f_score;
use cdrw_walk::{largest_mixing_set, LocalMixingConfig, WalkDistribution, WalkOperator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let n = 2048usize;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let params = PpmParams::new(n, 2, p, 0.6 / n as f64).unwrap();
    let (graph, truth) = generate_ppm(&params, 3).unwrap();

    c.bench_function("generate_ppm_n2048", |b| {
        b.iter(|| black_box(generate_ppm(&params, 4).unwrap()));
    });

    let operator = WalkOperator::new(&graph);
    let start = WalkDistribution::point_mass(n, 0).unwrap();
    let spread = operator.walk(&start, 6);
    c.bench_function("walk_step_n2048", |b| {
        b.iter(|| black_box(operator.step(&spread)));
    });

    let config = LocalMixingConfig::for_graph_size(n);
    c.bench_function("local_mixing_sweep_n2048", |b| {
        b.iter(|| black_box(largest_mixing_set(&graph, &spread, &config).unwrap()));
    });

    c.bench_function("f_score_n2048", |b| {
        b.iter(|| black_box(f_score(&truth, &truth)));
    });

    let mut group = c.benchmark_group("generate_ppm_scaling");
    group.sample_size(10);
    for &size in &[512usize, 2048, 8192] {
        let p = 2.0 * (size as f64).ln() / size as f64;
        let params = PpmParams::new(size, 4, p, p / 50.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &params, |b, params| {
            b.iter(|| black_box(generate_ppm(params, 1).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
