//! Microbenchmarks of the substrates the headline results depend on:
//! graph generation, one walk step, one local-mixing sweep, and the F-score
//! computation. These are not paper figures; they document where the time in
//! the figure benches goes.
//!
//! The `sparse_vs_dense_*` groups measure the frontier engine
//! (`WalkEngine`/`WalkWorkspace`) against the dense reference
//! (`WalkOperator::step_dense`, `largest_mixing_set`) on G(n,p) and PPM
//! instances up to n = 2¹⁶, in the early-walk regime where the walk's
//! support is a small fraction of the graph — exactly the regime CDRW's
//! `O(r log⁴ n)` round bound exploits.

use cdrw_gen::{generate_gnp, generate_ppm, GnpParams, PpmParams};
use cdrw_graph::Graph;
use cdrw_metrics::f_score;
use cdrw_walk::{
    largest_mixing_set, LocalMixingConfig, MixingCriterion, WalkBatch, WalkDistribution,
    WalkEngine, WalkOperator,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let n = 2048usize;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let params = PpmParams::new(n, 2, p, 0.6 / n as f64).unwrap();
    let (graph, truth) = generate_ppm(&params, 3).unwrap();

    c.bench_function("generate_ppm_n2048", |b| {
        b.iter(|| black_box(generate_ppm(&params, 4).unwrap()));
    });

    let operator = WalkOperator::new(&graph);
    let start = WalkDistribution::point_mass(n, 0).unwrap();
    let spread = operator.walk(&start, 6);
    c.bench_function("walk_step_n2048", |b| {
        b.iter(|| black_box(operator.step(&spread)));
    });

    let config = LocalMixingConfig::for_graph_size(n);
    c.bench_function("local_mixing_sweep_n2048", |b| {
        b.iter(|| black_box(largest_mixing_set(&graph, &spread, &config).unwrap()));
    });

    c.bench_function("f_score_n2048", |b| {
        b.iter(|| black_box(f_score(&truth, &truth)));
    });

    let mut group = c.benchmark_group("generate_ppm_scaling");
    group.sample_size(10);
    for &size in &[512usize, 2048, 8192] {
        let p = 2.0 * (size as f64).ln() / size as f64;
        let params = PpmParams::new(size, 4, p, p / 50.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &params, |b, params| {
            b.iter(|| black_box(generate_ppm(params, 1).unwrap()));
        });
    }
    group.finish();
}

/// The instances the sparse-vs-dense comparison runs on.
fn comparison_instances() -> Vec<(String, Graph)> {
    let mut instances = Vec::new();
    for &n in &[4096usize, 65536] {
        let p = 2.0 * (n as f64).ln() / n as f64;
        let gnp = generate_gnp(&GnpParams::new(n, p).unwrap(), 7).unwrap();
        instances.push((format!("gnp_n{n}"), gnp));
        let params = PpmParams::new(n, 4, p.min(1.0), p / 50.0).unwrap();
        let (ppm, _) = generate_ppm(&params, 7).unwrap();
        instances.push((format!("ppm_n{n}"), ppm));
    }
    instances
}

/// Walk steps that keep the support small relative to n (the early regime).
const EARLY_STEPS: usize = 3;

fn bench_sparse_vs_dense_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense_step");
    group.sample_size(10);
    for (label, graph) in comparison_instances() {
        let n = graph.num_vertices();
        let engine = WalkEngine::new(&graph);
        let operator = WalkOperator::new(&graph);

        // Report the regime: how much of the graph the walk touches.
        let mut probe = engine.workspace();
        probe.load_point_mass(0).unwrap();
        for _ in 0..EARLY_STEPS {
            engine.step(&mut probe);
        }
        println!(
            "{label}: support after {EARLY_STEPS} steps = {} of {n} vertices",
            probe.support_size()
        );

        let mut workspace = engine.workspace();
        group.bench_with_input(BenchmarkId::new("sparse", &label), &graph, |b, _| {
            b.iter(|| {
                workspace.load_point_mass(0).unwrap();
                for _ in 0..EARLY_STEPS {
                    engine.step(&mut workspace);
                }
                black_box(workspace.support_size())
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", &label), &graph, |b, _| {
            b.iter(|| {
                let mut distribution = WalkDistribution::point_mass(n, 0).unwrap();
                for _ in 0..EARLY_STEPS {
                    distribution = operator.step_dense(&distribution);
                }
                black_box(distribution.support_size())
            });
        });
    }
    group.finish();
}

fn bench_sparse_vs_dense_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense_sweep");
    group.sample_size(10);
    for (label, graph) in comparison_instances() {
        let n = graph.num_vertices();
        let engine = WalkEngine::new(&graph);
        let config = LocalMixingConfig::for_graph_size(n);

        // Early-walk state shared by both sides.
        let mut workspace = engine.workspace();
        workspace.load_point_mass(0).unwrap();
        for _ in 0..EARLY_STEPS {
            engine.step(&mut workspace);
        }
        let distribution = workspace.to_distribution().unwrap();

        group.bench_with_input(BenchmarkId::new("sparse", &label), &graph, |b, _| {
            b.iter(|| black_box(engine.sweep(&mut workspace, &config).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("dense", &label), &graph, |b, _| {
            b.iter(|| black_box(largest_mixing_set(&graph, &distribution, &config).unwrap()));
        });
    }
    group.finish();
}

/// A fig4a-shaped sparse PPM (8 blocks, `p = 2·(ln n)²/n`,
/// `p/q = 2^0.6·ln n`) — the regime the renormalised sweep and the
/// ensemble's follow-up walks run hottest on.
fn fig4a_instance(n: usize) -> Graph {
    let ln_n = (n as f64).ln();
    let p = 2.0 * ln_n * ln_n / n as f64;
    let q = p / (2f64.powf(0.6) * ln_n);
    let params = PpmParams::new(n, 8, p, q).unwrap();
    generate_ppm(&params, 20190416).unwrap().0
}

fn bench_prefix_vs_per_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_vs_per_size_sweep");
    group.sample_size(10);
    for &n in &[2048usize, 8192] {
        let graph = fig4a_instance(n);
        let engine = WalkEngine::new(&graph);
        let config = LocalMixingConfig {
            criterion: MixingCriterion::Renormalized,
            ..LocalMixingConfig::for_graph_size(n)
        };
        let mut workspace = engine.workspace();
        workspace.load_point_mass(0).unwrap();
        for _ in 0..8 {
            engine.step(&mut workspace);
        }
        println!(
            "fig4a n={n}: support after 8 steps = {} of {n} vertices",
            workspace.support_size()
        );
        group.bench_with_input(BenchmarkId::new("prefix_scan", n), &n, |b, _| {
            b.iter(|| black_box(engine.sweep(&mut workspace, &config).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("per_size", n), &n, |b, _| {
            b.iter(|| black_box(engine.sweep_per_size(&mut workspace, &config).unwrap()));
        });
    }
    group.finish();
}

fn bench_batched_vs_sequential_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_vs_sequential_step");
    group.sample_size(10);
    // Follow-up walks start inside one block, so their supports overlap
    // heavily — the case batching is built for.
    const LANES: usize = 4;
    const STEPS: usize = 6;
    for &n in &[2048usize, 8192] {
        let graph = fig4a_instance(n);
        let engine = WalkEngine::new(&graph);
        let seeds: Vec<usize> = (0..LANES).collect();
        let mut batch = WalkBatch::for_graph(&graph);
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| {
                batch.load_point_masses(&seeds).unwrap();
                for _ in 0..STEPS {
                    engine.step_batch(&mut batch);
                }
                black_box(batch.lane(0).support_size())
            });
        });
        let mut workspace = engine.workspace();
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                let mut touched = 0usize;
                for &seed in &seeds {
                    workspace.load_point_mass(seed).unwrap();
                    for _ in 0..STEPS {
                        engine.step(&mut workspace);
                    }
                    touched += workspace.support_size();
                }
                black_box(touched)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_substrates,
    bench_sparse_vs_dense_step,
    bench_sparse_vs_dense_sweep,
    bench_prefix_vs_per_size_sweep,
    bench_batched_vs_sequential_step
);
criterion_main!(benches);
