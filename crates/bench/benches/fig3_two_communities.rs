//! Figure 3 bench: two planted communities, p/q sweep.
//!
//! Prints the quick-scale Figure 3 accuracy table, then benchmarks single-seed
//! community detection at the sparsest and densest parameter points so the
//! cost of the harder regime is visible.

use cdrw_bench::experiments::two_blocks;
use cdrw_bench::Scale;
use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, PpmParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    println!(
        "{}",
        two_blocks::figure3(Scale::Quick, 1, cdrw_bench::RunOptions::default()).to_table()
    );

    let n = 1024usize;
    let sparse_p = 2.0 * (n as f64).ln() / n as f64;
    let dense_p = 2.0 * (n as f64).ln().powi(2) / n as f64;
    let q = 0.6 / n as f64;

    let mut group = c.benchmark_group("fig3_detect_community");
    group.sample_size(10);
    for (label, p) in [("sparse_p", sparse_p), ("dense_p", dense_p)] {
        let params = PpmParams::new(n, 2, p, q).unwrap();
        let (graph, _) = generate_ppm(&params, 11).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).delta(delta).build());
        group.bench_with_input(BenchmarkId::from_parameter(label), &graph, |b, graph| {
            b.iter(|| black_box(cdrw.detect_community(graph, 0).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
