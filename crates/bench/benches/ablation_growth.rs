//! Ablation bench: the design choices DESIGN.md calls out.
//!
//! Prints the accuracy ablation table (growth factor, δ policy, mixing
//! threshold), then benchmarks how the candidate-size growth factor affects
//! running time — the paper argues (1 + 1/8e) costs only an O(log n) factor
//! over doubling.

use cdrw_bench::experiments::ablations;
use cdrw_bench::Scale;
use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, PpmParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    println!("{}", ablations::ablations(Scale::Quick, 1).to_table());

    let n = 512usize;
    let p = 2.0 * (n as f64).ln().powi(2) / n as f64;
    let params = PpmParams::new(n, 2, p, 0.6 / n as f64).unwrap();
    let (graph, _) = generate_ppm(&params, 5).unwrap();
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);

    let mut group = c.benchmark_group("ablation_growth_factor");
    group.sample_size(10);
    for (label, factor) in [
        (
            "paper_1_plus_1_over_8e",
            1.0 + 1.0 / (8.0 * std::f64::consts::E),
        ),
        ("factor_1_5", 1.5),
        ("doubling", 2.0),
    ] {
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(1)
                .delta(delta)
                .size_growth_factor(factor)
                .build(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &graph, |b, graph| {
            b.iter(|| black_box(cdrw.detect_all(graph).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
