//! Figure 2 bench: CDRW on a single `G(n, p)` community.
//!
//! Prints the quick-scale Figure 2 accuracy table once, then benchmarks the
//! full detection pipeline (`detect_all`) for growing `n` so the runtime
//! scaling behind the figure is visible.

use cdrw_bench::experiments::gnp_single;
use cdrw_bench::Scale;
use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, PpmParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    println!(
        "{}",
        gnp_single::figure2(Scale::Quick, 1, cdrw_bench::RunOptions::default()).to_table()
    );

    let mut group = c.benchmark_group("fig2_gnp_detect_all");
    group.sample_size(10);
    for &n in &[256usize, 512, 1024] {
        let p = 2.0 * (n as f64).ln() / n as f64;
        let params = PpmParams::new(n, 1, p, 0.0).unwrap();
        let (graph, _) = generate_ppm(&params, 7).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).delta(0.5).build());
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| black_box(cdrw.detect_all(graph).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
