//! §III-B bench: k-machine round complexity versus k.
//!
//! Prints the conversion-theorem rounds for k ∈ {2, …, 32} next to the
//! paper's closed-form prediction, then benchmarks the full k-machine
//! simulation (CONGEST run + random vertex partition + conversion).

use cdrw_bench::experiments::distributed;
use cdrw_bench::Scale;
use cdrw_congest::CongestConfig;
use cdrw_core::CdrwConfig;
use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_kmachine::{KMachineConfig, KMachineSimulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_kmachine(c: &mut Criterion) {
    println!(
        "{}",
        distributed::kmachine_scaling(Scale::Quick, 1, cdrw_bench::RunOptions::default())
            .to_table()
    );

    let n = 256usize;
    let p = (12.0 * (n as f64).ln() / n as f64).min(1.0);
    let params = PpmParams::new(n, 2, p, p / 40.0).unwrap();
    let (graph, _) = generate_ppm(&params, 3).unwrap();
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    let congest = CongestConfig::new(CdrwConfig::builder().seed(1).delta(delta).build());

    let mut group = c.benchmark_group("kmachine_simulation");
    group.sample_size(10);
    for &k in &[2usize, 8, 32] {
        let simulator =
            KMachineSimulator::new(KMachineConfig::new(k).with_congest(congest)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &graph, |b, graph| {
            b.iter(|| black_box(simulator.run(graph).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmachine);
criterion_main!(benches);
