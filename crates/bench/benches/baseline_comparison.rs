//! §II bench: CDRW against LPA, averaging dynamics, spectral and Walktrap.
//!
//! Prints the accuracy comparison table, then benchmarks the running time of
//! each method on the same sparse two-block PPM instance.

use cdrw_baselines::{
    averaging_dynamics, label_propagation, spectral_partition, walktrap, AveragingConfig,
    LpaConfig, SpectralConfig, WalktrapConfig,
};
use cdrw_bench::experiments::baselines;
use cdrw_bench::Scale;
use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_gen::{generate_ppm, PpmParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    println!(
        "{}",
        baselines::baseline_comparison(Scale::Quick, 1, cdrw_bench::RunOptions::default())
            .to_table()
    );

    let n = 256usize;
    let p = 2.0 * (n as f64).ln().powi(2) / n as f64;
    let q = 0.6 / n as f64;
    let params = PpmParams::new(n, 2, p, q).unwrap();
    let (graph, _) = generate_ppm(&params, 9).unwrap();
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);

    let mut group = c.benchmark_group("baseline_runtime");
    group.sample_size(10);
    group.bench_function("cdrw", |b| {
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).delta(delta).build());
        b.iter(|| black_box(cdrw.detect_all(&graph).unwrap()));
    });
    group.bench_function("lpa", |b| {
        b.iter(|| black_box(label_propagation(&graph, &LpaConfig::default()).unwrap()));
    });
    group.bench_function("averaging", |b| {
        b.iter(|| black_box(averaging_dynamics(&graph, &AveragingConfig::default()).unwrap()));
    });
    group.bench_function("spectral", |b| {
        b.iter(|| black_box(spectral_partition(&graph, &SpectralConfig::default()).unwrap()));
    });
    group.bench_function("walktrap", |b| {
        b.iter(|| black_box(walktrap(&graph, &WalktrapConfig::default()).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
