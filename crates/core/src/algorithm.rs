//! The CDRW algorithm (Algorithm 1 of the paper), sequential implementation.

use cdrw_graph::{Graph, VertexId};
use cdrw_walk::evidence::{community_scale_vote, select_interior_seeds, PooledClaim, WalkEvidence};
use cdrw_walk::{WalkBatch, WalkEngine, WalkWorkspace};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::growth::{GrowthTracker, WalkAnswer};
use crate::result::{
    CommunityDetection, DetectionResult, DetectionTrace, EnsembleTrace, EnsembleWalkTrace,
    StepTrace,
};
use crate::{assembly, AssemblyPolicy, CdrwConfig, CdrwError};

/// The CDRW community detector.
///
/// Holds a validated-on-use [`CdrwConfig`]; the same instance can be applied
/// to many graphs. See the crate-level documentation for a quickstart.
///
/// # Examples
///
/// Detect a single seed's community, then all communities, on a planted
/// partition graph:
///
/// ```
/// use cdrw_core::{Cdrw, CdrwConfig, MixingCriterion};
/// use cdrw_gen::{generate_ppm, PpmParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = PpmParams::new(256, 2, 0.25, 0.002)?;
/// let (graph, truth) = generate_ppm(&params, 17)?;
///
/// let cdrw = Cdrw::new(CdrwConfig::builder().seed(4).delta(0.05).build());
/// // One seed: the detection contains the seed and roughly its block.
/// let detection = cdrw.detect_community(&graph, 0)?;
/// assert!(detection.contains(0));
/// let block = truth.members(truth.community_of(0).unwrap());
/// let inside = detection.members.iter().filter(|v| block.contains(v)).count();
/// assert!(inside * 10 >= detection.len() * 8, "≥ 80% of the set is the true block");
///
/// // All seeds (the pool loop): a total partition of the graph.
/// let result = cdrw.detect_all(&graph)?;
/// assert_eq!(result.partition().num_vertices(), 256);
///
/// // The paper's exact rule remains selectable per configuration.
/// let strict = Cdrw::new(
///     CdrwConfig::builder().seed(4).delta(0.05).criterion(MixingCriterion::Strict).build(),
/// );
/// assert!(strict.detect_community(&graph, 0)?.contains(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cdrw {
    config: CdrwConfig,
}

/// The shuffled seed pool of Algorithm 1's outer loop: all `n` vertices in
/// the order induced by the configuration seed ("pick a random node from
/// pool"). Every driver — the sequential [`Cdrw`], the CONGEST runner, the
/// k-machine execution engine — draws its pool from here, so the detection
/// order can never drift between them.
pub fn shuffled_seed_pool(n: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<VertexId> = (0..n).collect();
    pool.shuffle(&mut rng);
    pool
}

/// One base walk's result inside [`Cdrw`]: the detection and its mixing
/// margin. Follow-up and re-seed walks — the ones that need the bounded
/// community-scale fallback — run through [`Cdrw::run_walks_batched`] and
/// return a [`WalkAnswer`] instead.
struct SingleWalkOutcome {
    detection: CommunityDetection,
    margin: f64,
}

impl Cdrw {
    /// Creates a detector with the given configuration.
    pub fn new(config: CdrwConfig) -> Self {
        Cdrw { config }
    }

    /// Creates a detector with the paper-default configuration.
    pub fn with_defaults() -> Self {
        Cdrw::new(CdrwConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &CdrwConfig {
        &self.config
    }

    /// Detects the community containing `seed` (the inner loop of
    /// Algorithm 1: walk, local-mixing sweep, growth-rule stop).
    ///
    /// # Errors
    ///
    /// * [`CdrwError::EmptyGraph`] / [`CdrwError::NoEdges`] for degenerate
    ///   graphs.
    /// * [`CdrwError::InvalidConfig`] if the configuration fails validation.
    /// * [`CdrwError::Graph`] if `seed` is out of range.
    pub fn detect_community(
        &self,
        graph: &Graph,
        seed: VertexId,
    ) -> Result<CommunityDetection, CdrwError> {
        self.check_graph(graph)?;
        self.config.validate()?;
        graph.check_vertex(seed)?;
        let delta = self.config.resolve_delta(graph)?;
        self.detect_community_with_delta(graph, seed, delta)
    }

    /// Same as [`Cdrw::detect_community`] but with the growth threshold `δ`
    /// already resolved (used by [`Cdrw::detect_all`] to avoid re-estimating
    /// the conductance once per seed).
    pub(crate) fn detect_community_with_delta(
        &self,
        graph: &Graph,
        seed: VertexId,
        delta: f64,
    ) -> Result<CommunityDetection, CdrwError> {
        let engine = self.engine(graph);
        let mut workspace = engine.workspace();
        let mut batch = WalkBatch::for_graph(graph);
        let mut evidence = WalkEvidence::for_graph_if(self.config.ensemble.is_ensemble(), graph);
        self.detect_community_in(
            &engine,
            &mut workspace,
            &mut batch,
            &mut evidence,
            seed,
            delta,
            false,
        )
    }

    /// The walk engine this configuration requires: lazy iff the criterion
    /// asks for a lazy walk (`laziness == 0` reproduces the simple walk
    /// exactly).
    pub(crate) fn engine<'g>(&self, graph: &'g Graph) -> WalkEngine<'g> {
        WalkEngine::lazy(graph, self.config.criterion.laziness())
    }

    /// The per-seed detection on a caller-provided engine, workspace, walk
    /// batch and evidence accumulator. [`Cdrw::detect_all`] reuses one of
    /// each across every seed and [`Cdrw::detect_parallel`] keeps one of each
    /// per worker thread, so the per-seed cost is the walk(s) themselves — no
    /// allocations proportional to `n`. Dispatches to the single-walk path
    /// (Algorithm 1 verbatim; the batch stays untouched) or the
    /// evidence-aggregation ensemble according to [`CdrwConfig::ensemble`],
    /// whose follow-up walks run in lockstep through the batch.
    ///
    /// With `record_claims`, the detection's votes and margins are left in
    /// the accumulator's current epoch so the driver can pool them for the
    /// global assembly ([`AssemblyPolicy::Pooled`]); the ensemble path
    /// records its walks anyway, and the single-walk path then records its
    /// one detection. Recording never influences any walk decision.
    ///
    /// A zero-degree seed short-circuits to a singleton detection: the walk
    /// cannot leave the vertex, and an isolated vertex is its own community.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn detect_community_in(
        &self,
        engine: &WalkEngine<'_>,
        workspace: &mut WalkWorkspace,
        batch: &mut WalkBatch,
        evidence: &mut WalkEvidence,
        seed: VertexId,
        delta: f64,
        record_claims: bool,
    ) -> Result<CommunityDetection, CdrwError> {
        if engine.graph().degree(seed) == 0 {
            let detection = CommunityDetection {
                seed,
                members: vec![seed],
                trace: DetectionTrace {
                    steps: Vec::new(),
                    stopped_by_growth_rule: false,
                    delta,
                    ensemble: None,
                },
            };
            if record_claims {
                evidence.begin();
                evidence.record_walk(&detection.members, 0.0)?;
            }
            return Ok(detection);
        }
        if !self.config.ensemble.is_ensemble() {
            let floor = self.config.min_stop_size(engine.graph().num_vertices());
            let outcome = self.detect_single_in(engine, workspace, seed, delta, floor)?;
            if record_claims {
                evidence.begin();
                evidence.record_walk(&outcome.detection.members, outcome.margin)?;
            }
            return Ok(outcome.detection);
        }
        self.detect_ensemble_in(engine, workspace, batch, evidence, seed, delta)
    }

    /// The inner loop of Algorithm 1: walk, local-mixing sweep, growth-rule
    /// stop. `stop_floor` is the smallest previous-set size at which the
    /// growth rule applies (the configured [`CdrwConfig::min_stop_size`] for
    /// a base walk; ensemble follow-up walks raise it past the base
    /// detection's size so they cannot stop at the same transient plateau).
    ///
    /// Returns the detection together with its mixing margin — the threshold
    /// minus the winning sweep check's score for the returned set (0.0 when
    /// the walk never found a mixing set) — which the ensemble layer records
    /// as evidence.
    ///
    /// The stopping decisions live in [`GrowthTracker`], which the batched
    /// multi-walk runner ([`Cdrw::run_walks_batched`]) and the CONGEST driver
    /// share, so a walk's member set is independent of the driver.
    fn detect_single_in(
        &self,
        engine: &WalkEngine<'_>,
        workspace: &mut WalkWorkspace,
        seed: VertexId,
        delta: f64,
        stop_floor: usize,
    ) -> Result<SingleWalkOutcome, CdrwError> {
        let graph = engine.graph();
        let n = graph.num_vertices();
        let mixing_config = self.config.local_mixing_config(n);
        let max_length = self.config.max_walk_length(n);

        workspace.load_point_mass(seed)?;
        let mut trace = DetectionTrace {
            steps: Vec::with_capacity(max_length),
            stopped_by_growth_rule: false,
            delta,
            ensemble: None,
        };
        let mut tracker = GrowthTracker::new(stop_floor, delta, None);
        for walk_length in 1..=max_length {
            engine.step(workspace);
            let outcome = engine.sweep(workspace, &mixing_config)?;
            trace.steps.push(StepTrace {
                walk_length,
                mixing_set_size: outcome.size(),
                sizes_checked: outcome.sizes_checked(),
            });
            if tracker.observe_outcome(graph, seed, outcome, mixing_config.threshold) {
                break;
            }
        }

        let fired = tracker.fired();
        trace.stopped_by_growth_rule = fired;
        let (members, margin, _) = tracker.conclude(graph, seed);
        let mut detection = self.finish(seed, members, trace);
        if fired {
            // The firing step found a *larger* set that the stop rule
            // discards; record the returned community's size so the trace
            // agrees with the detection (see `StepTrace::mixing_set_size`).
            if let Some(last) = detection.trace.steps.last_mut() {
                last.mixing_set_size = detection.members.len();
            }
        }
        Ok(SingleWalkOutcome { detection, margin })
    }

    /// Runs one walk per seed in lockstep through the batch — the physical
    /// optimisation behind the ensemble's follow-up walks and the assembly's
    /// cross-detection re-seed walks. All walks share one
    /// [`WalkEngine::step_batch`] CSR traversal per step; each lane sweeps
    /// its own distribution and stops independently via its [`GrowthTracker`]
    /// (a stopped lane is deactivated and pays for no further steps).
    ///
    /// Returns one [`WalkAnswer`] per seed, in seed order, each bit-identical
    /// to what a solo [`Cdrw::detect_single_in`] walk with the same floor and
    /// cap would return (batching never changes a decision — pinned by the
    /// `batched_ensemble_matches_the_sequential_reference` property test).
    fn run_walks_batched(
        &self,
        engine: &WalkEngine<'_>,
        batch: &mut WalkBatch,
        seeds: &[VertexId],
        delta: f64,
        stop_floor: usize,
        bounded_cap: usize,
    ) -> Result<Vec<WalkAnswer>, CdrwError> {
        let graph = engine.graph();
        let n = graph.num_vertices();
        let mixing_config = self.config.local_mixing_config(n);
        let max_length = self.config.max_walk_length(n);

        batch.load_point_masses(seeds)?;
        let mut trackers: Vec<GrowthTracker> = seeds
            .iter()
            .map(|_| GrowthTracker::new(stop_floor, delta, Some(bounded_cap)))
            .collect();
        for _ in 1..=max_length {
            if batch.active_lanes() == 0 {
                break;
            }
            engine.step_batch(batch);
            for (lane, &walk_seed) in seeds.iter().enumerate() {
                if !batch.is_active(lane) {
                    continue;
                }
                let outcome = engine.sweep(batch.lane_mut(lane), &mixing_config)?;
                if trackers[lane].observe_outcome(
                    graph,
                    walk_seed,
                    outcome,
                    mixing_config.threshold,
                ) {
                    batch.set_active(lane, false);
                }
            }
        }
        Ok(trackers
            .into_iter()
            .zip(seeds)
            .map(|(tracker, &walk_seed)| tracker.conclude(graph, walk_seed))
            .collect())
    }

    /// The evidence-aggregation ensemble: run the base detection, re-seed
    /// `walks − 1` follow-up walks from high-affinity members of its
    /// interior, and emit the quorum-filtered consensus joined with the base
    /// detection (so the ensemble only ever *adds* corroborated vertices to
    /// Algorithm 1's own answer). Follow-up walks run with the growth-rule
    /// floor raised past the base detection's size: near the connectivity
    /// threshold the base walk tends to stop on a small transient plateau,
    /// and a follow-up that cannot stop there either finds the community's
    /// own (larger) plateau or walks on until it mixes globally — in which
    /// case it votes with the last community-scale (at most `n/2` vertices)
    /// mixing set it passed through, or abstains if it never saw one.
    ///
    /// The follow-up walks run in lockstep through the caller's
    /// [`WalkBatch`] — one CSR traversal per step for all of them — which
    /// changes no decision (see [`Cdrw::run_walks_batched`]).
    fn detect_ensemble_in(
        &self,
        engine: &WalkEngine<'_>,
        workspace: &mut WalkWorkspace,
        batch: &mut WalkBatch,
        evidence: &mut WalkEvidence,
        seed: VertexId,
        delta: f64,
    ) -> Result<CommunityDetection, CdrwError> {
        let graph = engine.graph();
        let n = graph.num_vertices();
        let walks = self.config.ensemble.walks();
        let base_floor = self.config.min_stop_size(n);
        let base_outcome = self.detect_single_in(engine, workspace, seed, delta, base_floor)?;
        let base = base_outcome.detection;
        let base_margin = base_outcome.margin;

        evidence.begin();
        evidence.record_walk(&base.members, base_margin)?;
        // The workspace still holds the base walk's final distribution — the
        // affinity signal the interior seeds are ranked by.
        let followups = select_interior_seeds(graph, workspace, &base.members, seed, walks - 1);
        let escalated_floor = base_floor.max(base.members.len() + 1);

        let mut walk_traces = vec![EnsembleWalkTrace {
            seed,
            set_size: base.members.len(),
            margin: base_margin,
            contributed: 0,
        }];
        let CommunityDetection {
            members: base_members,
            trace: mut base_trace,
            ..
        } = base;
        let mut sets: Vec<Vec<VertexId>> = vec![base_members];
        let answers =
            self.run_walks_batched(engine, batch, &followups, delta, escalated_floor, n / 2)?;
        for (&followup_seed, (members, walk_margin, bounded)) in followups.iter().zip(answers) {
            // A walk that mixed over more than half the graph before finding
            // a plateau votes with the last community-scale set it passed
            // through, or abstains (`community_scale_vote` documents why).
            let (voted, margin) = community_scale_vote(members, walk_margin, bounded, n / 2)
                .unwrap_or((Vec::new(), 0.0));
            if !voted.is_empty() {
                evidence.record_walk(&voted, margin)?;
            }
            walk_traces.push(EnsembleWalkTrace {
                seed: followup_seed,
                set_size: voted.len(),
                margin,
                contributed: 0,
            });
            sets.push(voted);
        }

        // Small detections can yield fewer distinct follow-up seeds than the
        // policy asks for; cap the quorum at the evidence actually gathered
        // so the consensus never empties out by construction.
        let quorum = self.config.ensemble.quorum().min(evidence.walks_recorded());
        let members = evidence.consensus_with(quorum as u32, &sets[0]);
        for (walk, set) in walk_traces.iter_mut().zip(&sets) {
            walk.contributed = set
                .iter()
                .filter(|v| members.binary_search(v).is_ok())
                .count();
        }
        base_trace.ensemble = Some(EnsembleTrace {
            quorum,
            walks: walk_traces,
            consensus_size: members.len(),
        });
        Ok(self.finish(seed, members, base_trace))
    }

    /// Detects all communities by repeatedly seeding from the pool of
    /// unassigned vertices (the outer loop of Algorithm 1), then assembles
    /// the detections into the final partition according to
    /// [`CdrwConfig::assembly`]: first claim wins under
    /// [`AssemblyPolicy::Raw`] (bit-identical to the pre-assembly
    /// behaviour), cross-detection evidence pooling and reconciliation under
    /// [`AssemblyPolicy::Pooled`] (see [`crate::assembly`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cdrw::detect_community`].
    pub fn detect_all(&self, graph: &Graph) -> Result<DetectionResult, CdrwError> {
        self.run_detect_all(graph).map(|(result, _)| result)
    }

    /// [`Cdrw::detect_all`] that also hands back the drained evidence pool
    /// (empty under [`AssemblyPolicy::Raw`]). The incremental service caches
    /// the claims so surviving groups can be re-pooled on the next refresh
    /// without re-walking; `detect_all` itself discards them.
    pub(crate) fn run_detect_all(
        &self,
        graph: &Graph,
    ) -> Result<(DetectionResult, Vec<PooledClaim>), CdrwError> {
        self.check_graph(graph)?;
        self.config.validate()?;
        let delta = self.config.resolve_delta(graph)?;
        let n = graph.num_vertices();

        let mut in_pool = vec![true; n];
        let pool = shuffled_seed_pool(n, self.config.seed);

        // One engine, one workspace, one walk batch and one evidence
        // accumulator serve every seed: re-seeding the workspace costs
        // O(support of the previous walk), not O(n), batch lanes are grown
        // once and reused, and the accumulator resets by epoch stamping.
        let pooling = self.config.assembly.is_pooled();
        let engine = self.engine(graph);
        let mut workspace = engine.workspace();
        let mut batch = WalkBatch::for_graph(graph);
        let mut evidence =
            WalkEvidence::for_graph_if(self.config.ensemble.is_ensemble() || pooling, graph);

        let mut detections: Vec<CommunityDetection> = Vec::new();
        // Iterate the shuffled vertex order; skip vertices that have already
        // been claimed. This is exactly "pick a random node from pool".
        for &seed in &pool {
            if !in_pool[seed] {
                continue;
            }
            let detection = self.detect_community_in(
                &engine,
                &mut workspace,
                &mut batch,
                &mut evidence,
                seed,
                delta,
                pooling,
            )?;
            if pooling {
                evidence.pool_epoch(detections.len() as u32);
            }
            for &v in &detection.members {
                in_pool[v] = false;
            }
            in_pool[seed] = false;
            detections.push(detection);
        }
        if let AssemblyPolicy::Pooled { reseed, quorum } = self.config.assembly {
            return self.assemble_detections(
                &engine,
                &mut batch,
                &mut evidence,
                detections,
                &[],
                0.0,
                delta,
                reseed,
                quorum,
            );
        }
        Ok((DetectionResult::new(n, detections, delta), Vec::new()))
    }

    /// The global assembly phase shared by [`Cdrw::detect_all`] and
    /// [`Cdrw::detect_parallel`]: hand the pooled claims to
    /// [`assembly::assemble_run`], executing each group's cross-detection
    /// re-seed walks in lockstep through the walk batch (identical decision
    /// logic to the per-seed walks — see [`Cdrw::run_walks_batched`]), and
    /// emit the assembled result with every detection refined to its
    /// evidence group's consensus.
    ///
    /// `frozen` flags detections whose cached refined sets and claims the
    /// incremental service carried over from a previous refresh (see
    /// [`assembly::assemble_run_incremental`]); the one-shot drivers pass
    /// `&[]`. Returns the result together with the drained claim pool.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble_detections(
        &self,
        engine: &WalkEngine<'_>,
        batch: &mut WalkBatch,
        evidence: &mut WalkEvidence,
        mut detections: Vec<CommunityDetection>,
        frozen: &[bool],
        freeze_tolerance: f64,
        delta: f64,
        reseed: usize,
        quorum: usize,
    ) -> Result<(DetectionResult, Vec<PooledClaim>), CdrwError> {
        let graph = engine.graph();
        let n = graph.num_vertices();
        let cap = n / 2;
        let member_sets: Vec<Vec<VertexId>> =
            detections.iter().map(|d| d.members.clone()).collect();
        let seeds: Vec<VertexId> = detections.iter().map(|d| d.seed).collect();
        let outcome = assembly::assemble_run_incremental(
            graph,
            reseed,
            quorum,
            &member_sets,
            &seeds,
            frozen,
            freeze_tolerance,
            evidence,
            |walk_seeds, floor| {
                let answers =
                    self.run_walks_batched(engine, batch, walk_seeds, delta, floor, cap)?;
                Ok(answers
                    .into_iter()
                    .map(|(members, margin, bounded)| {
                        community_scale_vote(members, margin, bounded, cap)
                    })
                    .collect())
            },
        )?;
        for (detection, refined) in detections.iter_mut().zip(outcome.refined) {
            detection.members = refined;
        }
        let result =
            DetectionResult::assembled(n, detections, outcome.partition, outcome.report, delta);
        Ok((result, outcome.claims))
    }

    fn finish(
        &self,
        seed: VertexId,
        mut members: Vec<VertexId>,
        trace: DetectionTrace,
    ) -> CommunityDetection {
        if members.binary_search(&seed).is_err() {
            members.push(seed);
            members.sort_unstable();
        }
        CommunityDetection {
            seed,
            members,
            trace,
        }
    }

    pub(crate) fn check_graph(&self, graph: &Graph) -> Result<(), CdrwError> {
        if graph.num_vertices() == 0 {
            return Err(CdrwError::EmptyGraph);
        }
        if graph.num_edges() == 0 {
            return Err(CdrwError::NoEdges);
        }
        Ok(())
    }
}

impl Default for Cdrw {
    fn default() -> Self {
        Cdrw::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaPolicy;
    use cdrw_gen::{generate_gnp, generate_ppm, special, GnpParams, PpmParams};
    use cdrw_graph::Graph;
    use cdrw_metrics::{f_score, f_score_for_detections};

    fn paper_delta(params: &PpmParams) -> f64 {
        params.expected_block_conductance().clamp(0.01, 1.0)
    }

    #[test]
    fn degenerate_graphs_are_rejected() {
        let cdrw = Cdrw::with_defaults();
        assert_eq!(
            cdrw.detect_all(&Graph::empty(0)).unwrap_err(),
            CdrwError::EmptyGraph
        );
        assert_eq!(
            cdrw.detect_all(&Graph::empty(5)).unwrap_err(),
            CdrwError::NoEdges
        );
        let (g, _) = special::complete(10).unwrap();
        assert!(cdrw.detect_community(&g, 42).is_err());
    }

    #[test]
    fn invalid_config_is_reported() {
        let config = CdrwConfig {
            max_walk_length_factor: -1.0,
            ..CdrwConfig::default()
        };
        let (g, _) = special::complete(10).unwrap();
        assert!(matches!(
            Cdrw::new(config).detect_all(&g),
            Err(CdrwError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn complete_graph_is_one_community() {
        let (g, _) = special::complete(64).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(3).delta(0.05).build());
        let result = cdrw.detect_all(&g).unwrap();
        assert_eq!(result.num_communities(), 1);
        assert_eq!(result.detections()[0].len(), 64);
    }

    #[test]
    fn detection_always_contains_the_seed() {
        let (g, _) = special::ring_of_cliques(3, 16).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).min_community_size(4).build());
        for seed in [0, 10, 47] {
            let detection = cdrw.detect_community(&g, seed).unwrap();
            assert!(detection.contains(seed));
            assert!(!detection.trace.steps.is_empty());
        }
    }

    #[test]
    fn gnp_graph_detected_as_single_community() {
        // Figure 2's premise: a G(n, p) expander is one community.
        let n = 1024;
        let p = 2.0 * (n as f64).ln() / n as f64;
        let g = generate_gnp(&GnpParams::new(n, p).unwrap(), 5).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(2).delta(0.9).build());
        let detection = cdrw.detect_community(&g, 0).unwrap();
        // Almost all of the graph should be in the detected community.
        assert!(
            detection.len() as f64 > 0.95 * n as f64,
            "detected only {} of {n} vertices",
            detection.len()
        );
    }

    #[test]
    fn ppm_two_blocks_recovered_with_high_f_score() {
        let params = PpmParams::new(512, 2, 0.2, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 17).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(4)
                .delta(paper_delta(&params))
                .build(),
        );
        let result = cdrw.detect_all(&graph).unwrap();
        // The paper's metric: score each raw detection against the ground
        // truth community of its seed.
        let report = f_score_for_detections(
            result
                .detections()
                .iter()
                .map(|d| (d.members.as_slice(), d.seed)),
            &truth,
        );
        assert!(
            report.f_score > 0.9,
            "F-score {} too low (detected {} communities)",
            report.f_score,
            result.num_communities()
        );
    }

    #[test]
    fn ppm_four_blocks_recovered() {
        let params = PpmParams::new(512, 4, 0.3, 0.003).unwrap();
        let (graph, truth) = generate_ppm(&params, 23).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(6)
                .delta(paper_delta(&params))
                .build(),
        );
        let result = cdrw.detect_all(&graph).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(
            report.f_score > 0.85,
            "F-score {} too low (detected {} communities, sizes {:?})",
            report.f_score,
            result.num_communities(),
            result.partition().community_sizes()
        );
    }

    #[test]
    fn sweep_delta_policy_also_works_on_ppm() {
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 31).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(8)
                .delta_policy(DeltaPolicy::SweepEstimate)
                .build(),
        );
        let result = cdrw.detect_all(&graph).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(report.f_score > 0.7, "F-score {}", report.f_score);
        assert!(result.delta() > 0.0);
    }

    #[test]
    fn ring_of_cliques_blocks_are_recovered() {
        let (graph, truth) = special::ring_of_cliques(4, 32).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(5)
                .delta(0.05)
                .min_community_size(8)
                .build(),
        );
        let result = cdrw.detect_all(&graph).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(report.f_score > 0.9, "F-score {}", report.f_score);
    }

    #[test]
    fn workspace_reuse_across_seeds_matches_fresh_workspaces() {
        // detect_all reuses one engine workspace for every seed; each of its
        // detections must be identical to a run with a fresh workspace.
        let params = PpmParams::new(256, 2, 0.25, 0.004).unwrap();
        let (graph, _) = generate_ppm(&params, 37).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(3).delta(0.1).build());
        let result = cdrw.detect_all(&graph).unwrap();
        assert!(result.num_communities() >= 2);
        for detection in result.detections() {
            let fresh = cdrw
                .detect_community_with_delta(&graph, detection.seed, result.delta())
                .unwrap();
            assert_eq!(&fresh, detection, "seed {} diverged", detection.seed);
        }
    }

    #[test]
    fn detect_all_is_deterministic_per_seed() {
        let params = PpmParams::new(256, 2, 0.2, 0.004).unwrap();
        let (graph, _) = generate_ppm(&params, 2).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(99).delta(0.1).build());
        let a = cdrw.detect_all(&graph).unwrap();
        let b = cdrw.detect_all(&graph).unwrap();
        assert_eq!(a, b);
        let other = Cdrw::new(CdrwConfig::builder().seed(100).delta(0.1).build())
            .detect_all(&graph)
            .unwrap();
        // Different seed ordering: seeds differ (almost surely).
        assert_ne!(a.seeds(), other.seeds());
    }

    #[test]
    fn partition_covers_every_vertex_exactly_once() {
        let params = PpmParams::new(300, 3, 0.2, 0.005).unwrap();
        let (graph, _) = generate_ppm(&params, 40).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(7).delta(0.1).build());
        let result = cdrw.detect_all(&graph).unwrap();
        let p = result.partition();
        assert_eq!(p.num_vertices(), 300);
        assert_eq!(p.community_sizes().iter().sum::<usize>(), 300);
    }

    #[test]
    fn trace_records_growth_and_stop_reason() {
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, _) = generate_ppm(&params, 3).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).delta(0.1).build());
        let detection = cdrw.detect_community(&graph, 0).unwrap();
        let history = detection.trace.size_history();
        assert!(!history.is_empty());
        // Sizes are non-decreasing until the stop (the walk only spreads).
        let found: Vec<usize> = history.iter().copied().filter(|&s| s > 0).collect();
        for window in found.windows(2) {
            assert!(window[1] >= window[0]);
        }
        assert!(detection.trace.total_size_checks() > 0);
    }

    #[test]
    fn growth_rule_trace_ends_on_the_returned_community_size() {
        // The step that fires the growth rule finds a *larger* set that
        // Algorithm 1 discards; the trace must record the community the
        // caller actually received, not the discarded set.
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        for graph_seed in [3u64, 7, 11] {
            let (graph, _) = generate_ppm(&params, graph_seed).unwrap();
            let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).delta(0.1).build());
            for seed in [0usize, 50, 200] {
                let detection = cdrw.detect_community(&graph, seed).unwrap();
                if detection.trace.stopped_by_growth_rule {
                    assert_eq!(
                        detection.trace.size_history().last().copied(),
                        Some(detection.len()),
                        "graph seed {graph_seed}, walk seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn ensemble_detections_cover_more_of_the_block_on_sparse_ppms() {
        // A fig4a-shaped sparse 4-block PPM (p = 2(ln n)²/n, p/q = 2^0.6·ln n)
        // at half the quick-scale size: the single walk tends to stop on a
        // transient plateau; the ensemble consensus must score measurably
        // higher on average.
        let n = 512;
        let ln_n = (n as f64).ln();
        let p = 2.0 * ln_n * ln_n / n as f64;
        let q = p / (2f64.powf(0.6) * ln_n);
        let params = PpmParams::new(n, 4, p, q).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let score = |policy: crate::EnsemblePolicy, graph_seed: u64| {
            let (graph, truth) = generate_ppm(&params, graph_seed).unwrap();
            let cdrw = Cdrw::new(
                CdrwConfig::builder()
                    .seed(graph_seed)
                    .delta(delta)
                    .ensemble_policy(policy)
                    .build(),
            );
            f_score_for_detections(
                cdrw.detect_all(&graph)
                    .unwrap()
                    .detections()
                    .iter()
                    .map(|d| (d.members.as_slice(), d.seed)),
                &truth,
            )
            .f_score
        };
        let ensemble = crate::EnsemblePolicy::Ensemble {
            walks: 5,
            quorum: 2,
        };
        let mut f_single = 0.0;
        let mut f_ensemble = 0.0;
        for graph_seed in [41u64, 20190416] {
            f_single += score(crate::EnsemblePolicy::Single, graph_seed) / 2.0;
            f_ensemble += score(ensemble, graph_seed) / 2.0;
        }
        assert!(
            f_ensemble > f_single + 0.05,
            "ensemble F {f_ensemble} did not beat single F {f_single}"
        );
    }

    #[test]
    fn ensemble_trace_records_per_walk_contributions() {
        let params = PpmParams::new(256, 2, 0.25, 0.004).unwrap();
        let (graph, _) = generate_ppm(&params, 5).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(2)
                .delta(0.1)
                .ensemble(4, 2)
                .build(),
        );
        let detection = cdrw.detect_community(&graph, 0).unwrap();
        let ensemble = detection
            .trace
            .ensemble
            .as_ref()
            .expect("ensemble trace present");
        assert_eq!(ensemble.walks.len(), 4, "base walk plus three follow-ups");
        assert_eq!(ensemble.walks[0].seed, 0, "base walk first");
        assert_eq!(ensemble.consensus_size, detection.len());
        assert!(ensemble.quorum >= 1 && ensemble.quorum <= 2);
        let mut followup_seeds = Vec::new();
        for walk in &ensemble.walks {
            assert!(walk.contributed <= walk.set_size);
            assert!(walk.set_size > 0);
            followup_seeds.push(walk.seed);
        }
        followup_seeds.sort_unstable();
        followup_seeds.dedup();
        assert_eq!(followup_seeds.len(), 4, "follow-up seeds are distinct");
        // The base walk's set is always kept, so its votes all contribute.
        assert_eq!(ensemble.walks[0].contributed, ensemble.walks[0].set_size);
        // The single-walk path carries no ensemble trace.
        let single = Cdrw::new(CdrwConfig::builder().seed(2).delta(0.1).build());
        assert!(single
            .detect_community(&graph, 0)
            .unwrap()
            .trace
            .ensemble
            .is_none());
    }

    #[test]
    fn ensemble_detect_all_is_deterministic_and_total() {
        let params = PpmParams::new(300, 3, 0.2, 0.005).unwrap();
        let (graph, _) = generate_ppm(&params, 13).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(6)
                .delta(0.1)
                .ensemble(3, 2)
                .build(),
        );
        let a = cdrw.detect_all(&graph).unwrap();
        let b = cdrw.detect_all(&graph).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.partition().num_vertices(), 300);
        assert_eq!(a.partition().community_sizes().iter().sum::<usize>(), 300);
        for detection in a.detections() {
            assert!(detection.contains(detection.seed));
        }
    }

    /// A PPM graph with `isolates` extra zero-degree vertices appended.
    fn ppm_with_isolates(
        params: &PpmParams,
        graph_seed: u64,
        isolates: usize,
    ) -> (Graph, cdrw_graph::Partition) {
        let (graph, truth) = generate_ppm(params, graph_seed).unwrap();
        let n = graph.num_vertices();
        let padded = cdrw_graph::GraphBuilder::from_edges(n + isolates, graph.edges()).unwrap();
        (padded, truth)
    }

    #[test]
    fn isolated_vertices_land_in_singleton_communities() {
        // The satellite regression: zero-degree vertices must neither error
        // nor be silently swallowed into a walk's community — each becomes
        // its own singleton, under every policy combination.
        let params = PpmParams::new(256, 2, 0.25, 0.004).unwrap();
        let (graph, _) = ppm_with_isolates(&params, 11, 3);
        let n = graph.num_vertices();
        let isolates = [256usize, 257, 258];
        for (ensemble, assembly) in [
            (crate::EnsemblePolicy::Single, AssemblyPolicy::Raw),
            (
                crate::EnsemblePolicy::Ensemble {
                    walks: 3,
                    quorum: 2,
                },
                AssemblyPolicy::Raw,
            ),
            (
                crate::EnsemblePolicy::Single,
                AssemblyPolicy::Pooled {
                    reseed: 2,
                    quorum: 1,
                },
            ),
            (
                crate::EnsemblePolicy::Ensemble {
                    walks: 3,
                    quorum: 2,
                },
                AssemblyPolicy::reconcile_only(),
            ),
        ] {
            let cdrw = Cdrw::new(
                CdrwConfig::builder()
                    .seed(5)
                    .delta(0.1)
                    .ensemble_policy(ensemble)
                    .assembly_policy(assembly)
                    .build(),
            );
            let result = cdrw.detect_all(&graph).unwrap();
            let partition = result.partition();
            assert_eq!(partition.num_vertices(), n);
            assert_eq!(partition.community_sizes().iter().sum::<usize>(), n);
            for &v in &isolates {
                let community = partition.community_of(v).unwrap();
                assert_eq!(
                    partition.members(community),
                    &[v],
                    "isolate {v} must be a singleton under {ensemble:?}/{assembly:?}"
                );
            }
            // No walk detection claims an isolate it was not seeded on.
            for detection in result.detections() {
                for &v in &isolates {
                    assert!(
                        !detection.contains(v) || detection.seed == v,
                        "detection seeded at {} claims isolate {v}",
                        detection.seed
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_seed_detects_itself() {
        let params = PpmParams::new(128, 2, 0.3, 0.004).unwrap();
        let (graph, _) = ppm_with_isolates(&params, 7, 1);
        let isolate = 128;
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).delta(0.1).build());
        let detection = cdrw.detect_community(&graph, isolate).unwrap();
        assert_eq!(detection.members, vec![isolate]);
        assert!(!detection.trace.stopped_by_growth_rule);
        assert!(detection.trace.steps.is_empty());
    }

    #[test]
    fn degenerate_interior_runs_fewer_walks_with_reclamped_quorum() {
        // A 4-vertex graph cannot supply the 5 follow-up seeds the policy
        // asks for: the ensemble must fall back to the walks it can seed and
        // clamp the vote quorum to the evidence actually recorded — the
        // runtime mirror of the builder validation boundary (quorum ≤ walks).
        let graph =
            cdrw_graph::GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(2)
                .delta(0.2)
                .ensemble(6, 6)
                .build(),
        );
        let detection = cdrw.detect_community(&graph, 0).unwrap();
        assert!(detection.contains(0));
        let trace = detection.trace.ensemble.as_ref().expect("ensemble trace");
        // At most the base walk plus three follow-ups fit in the interior.
        assert!(trace.walks.len() <= 4, "{} walks", trace.walks.len());
        assert!(trace.quorum <= trace.walks.len());
        assert!(trace.quorum >= 1);
        // The consensus never empties out by construction.
        assert_eq!(trace.consensus_size, detection.len());
        assert!(!detection.is_empty());
        // detect_all on the same tiny graph also clamps without panicking.
        let result = cdrw.detect_all(&graph).unwrap();
        assert_eq!(
            result.partition().community_sizes().iter().sum::<usize>(),
            4
        );
    }

    #[test]
    fn pooled_assembly_reports_and_refines_on_a_sparse_instance() {
        // Fragmented sparse instance (seed 41 fragments into mergeable
        // groups): the pooled assembly merges fragments, runs re-seed walks
        // and emits a total partition plus a populated report.
        let n = 512;
        let ln_n = (n as f64).ln();
        let p = 2.0 * ln_n * ln_n / n as f64;
        let q = p / (2f64.powf(0.6) * ln_n);
        let params = PpmParams::new(n, 4, p, q).unwrap();
        let (graph, truth) = generate_ppm(&params, 41).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let raw = Cdrw::new(CdrwConfig::builder().seed(41).delta(delta).build());
        let pooled = Cdrw::new(
            CdrwConfig::builder()
                .seed(41)
                .delta(delta)
                .assembly(3, 2)
                .build(),
        );
        let raw_result = raw.detect_all(&graph).unwrap();
        let pooled_result = pooled.detect_all(&graph).unwrap();
        assert!(raw_result.assembly().is_none());
        let report = pooled_result.assembly().expect("assembly report");
        assert!(report.groups >= 2);
        assert!(report.merged_detections >= 2);
        assert!(report.reseed_walks > 0);
        assert_eq!(pooled_result.partition().num_vertices(), n);
        // Walk decisions of phase 1 are identical — the assembly only
        // refines member sets afterwards.
        assert_eq!(raw_result.seeds(), pooled_result.seeds());
        // And the refinement helps on this instance.
        let f = |result: &DetectionResult| {
            f_score_for_detections(
                result
                    .detections()
                    .iter()
                    .map(|d| (d.members.as_slice(), d.seed)),
                &truth,
            )
            .f_score
        };
        let f_raw = f(&raw_result);
        let f_pooled = f(&pooled_result);
        assert!(
            f_pooled >= f_raw,
            "pooled F {f_pooled} below raw F {f_raw} on the fragmented instance"
        );
    }

    proptest::proptest! {
        /// The assembled partition is always total (covers every vertex
        /// exactly once), every refined detection still contains its seed,
        /// and `AssemblyPolicy::Raw` stays bit-identical to a configuration
        /// that never mentions the assembly — on arbitrary graphs, with and
        /// without re-seed walks.
        #[test]
        fn assembled_partition_is_total_and_raw_is_pinned(
            edges in proptest::collection::vec((0usize..20, 0usize..20), 3..90),
            seed in 0u64..256,
            reseed in 0usize..4,
        ) {
            use proptest::{prop_assert, prop_assert_eq, prop_assume};

            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let graph = cdrw_graph::GraphBuilder::from_edges(20, clean).unwrap();
            let base = CdrwConfig::builder().seed(seed).delta(0.2).build();
            let raw = CdrwConfig::builder()
                .seed(seed)
                .delta(0.2)
                .assembly_policy(AssemblyPolicy::Raw)
                .build();
            let base_result = Cdrw::new(base).detect_all(&graph).unwrap();
            let raw_result = Cdrw::new(raw).detect_all(&graph).unwrap();
            prop_assert_eq!(&base_result, &raw_result, "Raw must be the default behaviour");
            // The Raw partition is exactly the historical first-claim
            // resolution of its detections.
            let reconstructed = DetectionResult::new(
                graph.num_vertices(),
                base_result.detections().to_vec(),
                base_result.delta(),
            );
            prop_assert_eq!(base_result.partition(), reconstructed.partition());

            let assembly = if reseed == 0 {
                AssemblyPolicy::reconcile_only()
            } else {
                AssemblyPolicy::Pooled { reseed, quorum: reseed.div_ceil(2) }
            };
            let pooled = CdrwConfig::builder()
                .seed(seed)
                .delta(0.2)
                .assembly_policy(assembly)
                .build();
            let pooled_result = Cdrw::new(pooled).detect_all(&graph).unwrap();
            let partition = pooled_result.partition();
            prop_assert_eq!(partition.num_vertices(), graph.num_vertices());
            prop_assert_eq!(
                partition.community_sizes().iter().sum::<usize>(),
                graph.num_vertices()
            );
            prop_assert!(pooled_result.assembly().is_some());
            for detection in pooled_result.detections() {
                prop_assert!(detection.contains(detection.seed));
            }
            // Phase-1 walk decisions are untouched by the assembly.
            prop_assert_eq!(base_result.seeds(), pooled_result.seeds());
        }
    }

    /// The pre-batching follow-up walk, reimplemented solo for the reference
    /// side of the batching pin: step, sweep, growth-rule stop on a private
    /// workspace, with no [`WalkBatch`] involved.
    fn solo_reference_walk(
        cdrw: &Cdrw,
        engine: &WalkEngine<'_>,
        seed: VertexId,
        delta: f64,
        stop_floor: usize,
        cap: usize,
    ) -> WalkAnswer {
        let graph = engine.graph();
        let n = graph.num_vertices();
        let mixing_config = cdrw.config.local_mixing_config(n);
        let max_length = cdrw.config.max_walk_length(n);
        let mut workspace = engine.workspace();
        workspace.load_point_mass(seed).unwrap();
        let mut tracker = GrowthTracker::new(stop_floor, delta, Some(cap));
        for _ in 1..=max_length {
            engine.step(&mut workspace);
            let outcome = engine.sweep(&mut workspace, &mixing_config).unwrap();
            if tracker.observe_outcome(graph, seed, outcome, mixing_config.threshold) {
                break;
            }
        }
        tracker.conclude(graph, seed)
    }

    proptest::proptest! {
        /// The batching pin: every walk of a lockstep-batched bank — member
        /// set, margin and bounded fallback — is bit-identical to the same
        /// walk run solo, across arbitrary graphs, seed banks, stop floors
        /// and criteria. The ensemble and assembly layers consume these
        /// outputs identically in both schedules, so batching their walks
        /// cannot change a detection.
        #[test]
        fn batched_ensemble_matches_the_sequential_reference(
            edges in proptest::collection::vec((0usize..18, 0usize..18), 4..100),
            seeds in proptest::collection::vec(0usize..18, 1..6),
            floor in 1usize..6,
            criterion_index in 0usize..4,
        ) {
            use proptest::{prop_assert_eq, prop_assume};

            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let graph = cdrw_graph::GraphBuilder::from_edges(18, clean).unwrap();
            let criterion = crate::MixingCriterion::all()[criterion_index];
            let cdrw = Cdrw::new(
                CdrwConfig::builder()
                    .seed(1)
                    .delta(0.2)
                    .criterion(criterion)
                    .build(),
            );
            let engine = cdrw.engine(&graph);
            let cap = graph.num_vertices() / 2;
            let mut batch = cdrw_walk::WalkBatch::for_graph(&graph);
            let batched = cdrw
                .run_walks_batched(&engine, &mut batch, &seeds, 0.2, floor, cap)
                .unwrap();
            for (lane, &walk_seed) in seeds.iter().enumerate() {
                let solo = solo_reference_walk(&cdrw, &engine, walk_seed, 0.2, floor, cap);
                prop_assert_eq!(
                    &batched[lane],
                    &solo,
                    "criterion {}, lane {} diverged from its solo walk",
                    criterion.name(),
                    lane
                );
            }
        }
    }

    proptest::proptest! {
        /// `EnsemblePolicy::Ensemble { walks: 1, .. }` takes the single-walk
        /// path, so its detections — members *and* traces — are bit-identical
        /// to `EnsemblePolicy::Single` under every mixing criterion.
        #[test]
        fn ensemble_with_one_walk_is_bit_identical_to_single(
            edges in proptest::collection::vec((0usize..20, 0usize..20), 4..100),
            seed in 0u64..512,
            criterion_index in 0usize..4,
        ) {
            use proptest::{prop_assert_eq, prop_assume};

            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let graph = cdrw_graph::GraphBuilder::from_edges(20, clean).unwrap();
            let criterion = crate::MixingCriterion::all()[criterion_index];
            let single = Cdrw::new(
                CdrwConfig::builder()
                    .seed(seed)
                    .delta(0.2)
                    .criterion(criterion)
                    .build(),
            );
            let one_walk = Cdrw::new(
                CdrwConfig::builder()
                    .seed(seed)
                    .delta(0.2)
                    .criterion(criterion)
                    .ensemble(1, 1)
                    .build(),
            );
            let a = single.detect_all(&graph).unwrap();
            let b = one_walk.detect_all(&graph).unwrap();
            prop_assert_eq!(a.detections(), b.detections(), "criterion {}", criterion.name());
            prop_assert_eq!(a.partition(), b.partition());
        }
    }
}
