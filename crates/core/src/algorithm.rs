//! The CDRW algorithm (Algorithm 1 of the paper), sequential implementation.

use cdrw_graph::{Graph, VertexId};
use cdrw_walk::{WalkEngine, WalkWorkspace};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::result::{CommunityDetection, DetectionResult, DetectionTrace, StepTrace};
use crate::{CdrwConfig, CdrwError};

/// The CDRW community detector.
///
/// Holds a validated-on-use [`CdrwConfig`]; the same instance can be applied
/// to many graphs. See the crate-level documentation for a quickstart.
///
/// # Examples
///
/// Detect a single seed's community, then all communities, on a planted
/// partition graph:
///
/// ```
/// use cdrw_core::{Cdrw, CdrwConfig, MixingCriterion};
/// use cdrw_gen::{generate_ppm, PpmParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = PpmParams::new(256, 2, 0.25, 0.002)?;
/// let (graph, truth) = generate_ppm(&params, 17)?;
///
/// let cdrw = Cdrw::new(CdrwConfig::builder().seed(4).delta(0.05).build());
/// // One seed: the detection contains the seed and roughly its block.
/// let detection = cdrw.detect_community(&graph, 0)?;
/// assert!(detection.contains(0));
/// let block = truth.members(truth.community_of(0).unwrap());
/// let inside = detection.members.iter().filter(|v| block.contains(v)).count();
/// assert!(inside * 10 >= detection.len() * 8, "≥ 80% of the set is the true block");
///
/// // All seeds (the pool loop): a total partition of the graph.
/// let result = cdrw.detect_all(&graph)?;
/// assert_eq!(result.partition().num_vertices(), 256);
///
/// // The paper's exact rule remains selectable per configuration.
/// let strict = Cdrw::new(
///     CdrwConfig::builder().seed(4).delta(0.05).criterion(MixingCriterion::Strict).build(),
/// );
/// assert!(strict.detect_community(&graph, 0)?.contains(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cdrw {
    config: CdrwConfig,
}

impl Cdrw {
    /// Creates a detector with the given configuration.
    pub fn new(config: CdrwConfig) -> Self {
        Cdrw { config }
    }

    /// Creates a detector with the paper-default configuration.
    pub fn with_defaults() -> Self {
        Cdrw::new(CdrwConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &CdrwConfig {
        &self.config
    }

    /// Detects the community containing `seed` (the inner loop of
    /// Algorithm 1: walk, local-mixing sweep, growth-rule stop).
    ///
    /// # Errors
    ///
    /// * [`CdrwError::EmptyGraph`] / [`CdrwError::NoEdges`] for degenerate
    ///   graphs.
    /// * [`CdrwError::InvalidConfig`] if the configuration fails validation.
    /// * [`CdrwError::Graph`] if `seed` is out of range.
    pub fn detect_community(
        &self,
        graph: &Graph,
        seed: VertexId,
    ) -> Result<CommunityDetection, CdrwError> {
        self.check_graph(graph)?;
        self.config.validate()?;
        graph.check_vertex(seed)?;
        let delta = self.config.resolve_delta(graph)?;
        self.detect_community_with_delta(graph, seed, delta)
    }

    /// Same as [`Cdrw::detect_community`] but with the growth threshold `δ`
    /// already resolved (used by [`Cdrw::detect_all`] to avoid re-estimating
    /// the conductance once per seed).
    pub(crate) fn detect_community_with_delta(
        &self,
        graph: &Graph,
        seed: VertexId,
        delta: f64,
    ) -> Result<CommunityDetection, CdrwError> {
        let engine = self.engine(graph);
        let mut workspace = engine.workspace();
        self.detect_community_in(&engine, &mut workspace, seed, delta)
    }

    /// The walk engine this configuration requires: lazy iff the criterion
    /// asks for a lazy walk (`laziness == 0` reproduces the simple walk
    /// exactly).
    pub(crate) fn engine<'g>(&self, graph: &'g Graph) -> WalkEngine<'g> {
        WalkEngine::lazy(graph, self.config.criterion.laziness())
    }

    /// The inner loop of Algorithm 1 on a caller-provided engine and
    /// workspace. [`Cdrw::detect_all`] reuses one workspace across every
    /// seed and [`Cdrw::detect_parallel`] keeps one per worker thread, so the
    /// per-seed cost is the walk itself — no allocations proportional to `n`.
    pub(crate) fn detect_community_in(
        &self,
        engine: &WalkEngine<'_>,
        workspace: &mut WalkWorkspace,
        seed: VertexId,
        delta: f64,
    ) -> Result<CommunityDetection, CdrwError> {
        let graph = engine.graph();
        let n = graph.num_vertices();
        let mixing_config = self.config.local_mixing_config(n);
        let max_length = self.config.max_walk_length(n);
        let min_stop_size = self.config.min_stop_size(n);

        workspace.load_point_mass(seed)?;
        let mut trace = DetectionTrace {
            steps: Vec::with_capacity(max_length),
            stopped_by_growth_rule: false,
            delta,
        };
        let mut previous: Option<Vec<VertexId>> = None;
        let mut current: Option<Vec<VertexId>> = None;

        for walk_length in 1..=max_length {
            engine.step(workspace);
            let outcome = engine.sweep(workspace, &mixing_config)?;
            trace.steps.push(StepTrace {
                walk_length,
                mixing_set_size: outcome.size(),
                sizes_checked: outcome.sizes_checked(),
            });
            if let Some(set) = outcome.set {
                previous = current.take();
                current = Some(set);
                if let (Some(prev), Some(cur)) = (&previous, &current) {
                    // Stopping rule (Algorithm 1, line 18): the mixing set
                    // stopped growing by more than a (1 + δ) factor, so the
                    // previous set is the community. Tiny sets near the
                    // minimum candidate size are excluded (see
                    // `CdrwConfig::min_stop_size_factor`).
                    if prev.len() >= min_stop_size
                        && (cur.len() as f64) < (1.0 + delta) * prev.len() as f64
                    {
                        trace.stopped_by_growth_rule = true;
                        return Ok(self.finish(seed, previous.take().expect("checked"), trace));
                    }
                }
            }
            // No mixing set at this step: keep walking. The sweep starts
            // producing sets once the walk has spread over at least `R`
            // vertices.
        }

        // Walk-length cap reached: report the best set seen (the latest one),
        // falling back to the seed alone if the walk never mixed anywhere.
        let members = current.or(previous).unwrap_or_else(|| vec![seed]);
        Ok(self.finish(seed, members, trace))
    }

    /// Detects all communities by repeatedly seeding from the pool of
    /// unassigned vertices (the outer loop of Algorithm 1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cdrw::detect_community`].
    pub fn detect_all(&self, graph: &Graph) -> Result<DetectionResult, CdrwError> {
        self.check_graph(graph)?;
        self.config.validate()?;
        let delta = self.config.resolve_delta(graph)?;
        let n = graph.num_vertices();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);

        let mut in_pool = vec![true; n];
        let mut pool: Vec<VertexId> = graph.vertices().collect();
        pool.shuffle(&mut rng);

        // One engine and one workspace serve every seed: re-seeding the
        // workspace costs O(support of the previous walk), not O(n).
        let engine = self.engine(graph);
        let mut workspace = engine.workspace();

        let mut detections = Vec::new();
        // Iterate the shuffled vertex order; skip vertices that have already
        // been claimed. This is exactly "pick a random node from pool".
        for &seed in &pool {
            if !in_pool[seed] {
                continue;
            }
            let detection = self.detect_community_in(&engine, &mut workspace, seed, delta)?;
            for &v in &detection.members {
                in_pool[v] = false;
            }
            in_pool[seed] = false;
            detections.push(detection);
        }
        Ok(DetectionResult::new(n, detections, delta))
    }

    fn finish(
        &self,
        seed: VertexId,
        mut members: Vec<VertexId>,
        trace: DetectionTrace,
    ) -> CommunityDetection {
        if members.binary_search(&seed).is_err() {
            members.push(seed);
            members.sort_unstable();
        }
        CommunityDetection {
            seed,
            members,
            trace,
        }
    }

    fn check_graph(&self, graph: &Graph) -> Result<(), CdrwError> {
        if graph.num_vertices() == 0 {
            return Err(CdrwError::EmptyGraph);
        }
        if graph.num_edges() == 0 {
            return Err(CdrwError::NoEdges);
        }
        Ok(())
    }
}

impl Default for Cdrw {
    fn default() -> Self {
        Cdrw::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaPolicy;
    use cdrw_gen::{generate_gnp, generate_ppm, special, GnpParams, PpmParams};
    use cdrw_graph::Graph;
    use cdrw_metrics::{f_score, f_score_for_detections};

    fn paper_delta(params: &PpmParams) -> f64 {
        params.expected_block_conductance().clamp(0.01, 1.0)
    }

    #[test]
    fn degenerate_graphs_are_rejected() {
        let cdrw = Cdrw::with_defaults();
        assert_eq!(
            cdrw.detect_all(&Graph::empty(0)).unwrap_err(),
            CdrwError::EmptyGraph
        );
        assert_eq!(
            cdrw.detect_all(&Graph::empty(5)).unwrap_err(),
            CdrwError::NoEdges
        );
        let (g, _) = special::complete(10).unwrap();
        assert!(cdrw.detect_community(&g, 42).is_err());
    }

    #[test]
    fn invalid_config_is_reported() {
        let config = CdrwConfig {
            max_walk_length_factor: -1.0,
            ..CdrwConfig::default()
        };
        let (g, _) = special::complete(10).unwrap();
        assert!(matches!(
            Cdrw::new(config).detect_all(&g),
            Err(CdrwError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn complete_graph_is_one_community() {
        let (g, _) = special::complete(64).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(3).delta(0.05).build());
        let result = cdrw.detect_all(&g).unwrap();
        assert_eq!(result.num_communities(), 1);
        assert_eq!(result.detections()[0].len(), 64);
    }

    #[test]
    fn detection_always_contains_the_seed() {
        let (g, _) = special::ring_of_cliques(3, 16).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).min_community_size(4).build());
        for seed in [0, 10, 47] {
            let detection = cdrw.detect_community(&g, seed).unwrap();
            assert!(detection.contains(seed));
            assert!(!detection.trace.steps.is_empty());
        }
    }

    #[test]
    fn gnp_graph_detected_as_single_community() {
        // Figure 2's premise: a G(n, p) expander is one community.
        let n = 1024;
        let p = 2.0 * (n as f64).ln() / n as f64;
        let g = generate_gnp(&GnpParams::new(n, p).unwrap(), 5).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(2).delta(0.9).build());
        let detection = cdrw.detect_community(&g, 0).unwrap();
        // Almost all of the graph should be in the detected community.
        assert!(
            detection.len() as f64 > 0.95 * n as f64,
            "detected only {} of {n} vertices",
            detection.len()
        );
    }

    #[test]
    fn ppm_two_blocks_recovered_with_high_f_score() {
        let params = PpmParams::new(512, 2, 0.2, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 17).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(4)
                .delta(paper_delta(&params))
                .build(),
        );
        let result = cdrw.detect_all(&graph).unwrap();
        // The paper's metric: score each raw detection against the ground
        // truth community of its seed.
        let report = f_score_for_detections(
            result
                .detections()
                .iter()
                .map(|d| (d.members.as_slice(), d.seed)),
            &truth,
        );
        assert!(
            report.f_score > 0.9,
            "F-score {} too low (detected {} communities)",
            report.f_score,
            result.num_communities()
        );
    }

    #[test]
    fn ppm_four_blocks_recovered() {
        let params = PpmParams::new(512, 4, 0.3, 0.003).unwrap();
        let (graph, truth) = generate_ppm(&params, 23).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(6)
                .delta(paper_delta(&params))
                .build(),
        );
        let result = cdrw.detect_all(&graph).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(
            report.f_score > 0.85,
            "F-score {} too low (detected {} communities, sizes {:?})",
            report.f_score,
            result.num_communities(),
            result.partition().community_sizes()
        );
    }

    #[test]
    fn sweep_delta_policy_also_works_on_ppm() {
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 31).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(8)
                .delta_policy(DeltaPolicy::SweepEstimate)
                .build(),
        );
        let result = cdrw.detect_all(&graph).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(report.f_score > 0.7, "F-score {}", report.f_score);
        assert!(result.delta() > 0.0);
    }

    #[test]
    fn ring_of_cliques_blocks_are_recovered() {
        let (graph, truth) = special::ring_of_cliques(4, 32).unwrap();
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(5)
                .delta(0.05)
                .min_community_size(8)
                .build(),
        );
        let result = cdrw.detect_all(&graph).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(report.f_score > 0.9, "F-score {}", report.f_score);
    }

    #[test]
    fn workspace_reuse_across_seeds_matches_fresh_workspaces() {
        // detect_all reuses one engine workspace for every seed; each of its
        // detections must be identical to a run with a fresh workspace.
        let params = PpmParams::new(256, 2, 0.25, 0.004).unwrap();
        let (graph, _) = generate_ppm(&params, 37).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(3).delta(0.1).build());
        let result = cdrw.detect_all(&graph).unwrap();
        assert!(result.num_communities() >= 2);
        for detection in result.detections() {
            let fresh = cdrw
                .detect_community_with_delta(&graph, detection.seed, result.delta())
                .unwrap();
            assert_eq!(&fresh, detection, "seed {} diverged", detection.seed);
        }
    }

    #[test]
    fn detect_all_is_deterministic_per_seed() {
        let params = PpmParams::new(256, 2, 0.2, 0.004).unwrap();
        let (graph, _) = generate_ppm(&params, 2).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(99).delta(0.1).build());
        let a = cdrw.detect_all(&graph).unwrap();
        let b = cdrw.detect_all(&graph).unwrap();
        assert_eq!(a, b);
        let other = Cdrw::new(CdrwConfig::builder().seed(100).delta(0.1).build())
            .detect_all(&graph)
            .unwrap();
        // Different seed ordering: seeds differ (almost surely).
        assert_ne!(a.seeds(), other.seeds());
    }

    #[test]
    fn partition_covers_every_vertex_exactly_once() {
        let params = PpmParams::new(300, 3, 0.2, 0.005).unwrap();
        let (graph, _) = generate_ppm(&params, 40).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(7).delta(0.1).build());
        let result = cdrw.detect_all(&graph).unwrap();
        let p = result.partition();
        assert_eq!(p.num_vertices(), 300);
        assert_eq!(p.community_sizes().iter().sum::<usize>(), 300);
    }

    #[test]
    fn trace_records_growth_and_stop_reason() {
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, _) = generate_ppm(&params, 3).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(1).delta(0.1).build());
        let detection = cdrw.detect_community(&graph, 0).unwrap();
        let history = detection.trace.size_history();
        assert!(!history.is_empty());
        // Sizes are non-decreasing until the stop (the walk only spreads).
        let found: Vec<usize> = history.iter().copied().filter(|&s| s > 0).collect();
        for window in found.windows(2) {
            assert!(window[1] >= window[0]);
        }
        assert!(detection.trace.total_size_checks() > 0);
    }
}
