//! Error type for the CDRW algorithm crate.

use std::error::Error;
use std::fmt;

use cdrw_graph::GraphError;
use cdrw_walk::WalkError;

/// Errors produced while configuring or running CDRW.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CdrwError {
    /// The input graph has no vertices.
    EmptyGraph,
    /// The input graph has no edges; random walks (and hence CDRW) are
    /// undefined.
    NoEdges,
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from the random-walk machinery.
    Walk(WalkError),
    /// A distributed shard stayed unreachable past its retry and recovery
    /// budget; the sharded run cannot complete.
    ShardFailure {
        /// The shard that was lost.
        shard: usize,
        /// The command sequence number the run had reached.
        seq: u64,
        /// Why the shard was given up on.
        reason: String,
    },
}

impl fmt::Display for CdrwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrwError::EmptyGraph => write!(f, "cdrw requires a graph with at least one vertex"),
            CdrwError::NoEdges => write!(f, "cdrw requires a graph with at least one edge"),
            CdrwError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration `{field}`: {reason}")
            }
            CdrwError::Graph(e) => write!(f, "graph error: {e}"),
            CdrwError::Walk(e) => write!(f, "random walk error: {e}"),
            CdrwError::ShardFailure { shard, seq, reason } => {
                write!(f, "shard {shard} failed at command {seq}: {reason}")
            }
        }
    }
}

impl Error for CdrwError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CdrwError::Graph(e) => Some(e),
            CdrwError::Walk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CdrwError {
    fn from(e: GraphError) -> Self {
        CdrwError::Graph(e)
    }
}

impl From<WalkError> for CdrwError {
    fn from(e: WalkError) -> Self {
        CdrwError::Walk(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(CdrwError::EmptyGraph.to_string().contains("vertex"));
        assert!(CdrwError::NoEdges.to_string().contains("edge"));
        let e: CdrwError = GraphError::EmptyGraph.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CdrwError = WalkError::NoEdges.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = CdrwError::InvalidConfig {
            field: "delta",
            reason: "must be positive".to_string(),
        };
        assert!(e.to_string().contains("delta"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CdrwError>();
    }
}
