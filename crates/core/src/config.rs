//! Configuration of the CDRW algorithm.

use cdrw_graph::Graph;
use cdrw_walk::{LocalMixingConfig, MixingCriterion, MIXING_THRESHOLD, SIZE_GROWTH_FACTOR};
use serde::{Deserialize, Serialize};

use crate::CdrwError;

/// How the growth threshold `δ` of the stopping rule is obtained.
///
/// Algorithm 1 stops growing the walk when `|S_ℓ| < (1 + δ)|S_{ℓ−1}|` with
/// `δ = Φ_G`. The paper assumes `Φ_G` "is given as input, or it can be
/// computed using a distributed algorithm"; this enum captures the choices a
/// user actually has.
///
/// Whichever policy is selected, the resolved `δ` always lies in the single
/// shared domain `[CdrwConfig::MIN_DELTA, 1.0]`: a fixed value outside it is
/// rejected by [`CdrwConfig::validate`], and the sweep estimate is clamped
/// into it, so a sweep-estimated `δ` can always be re-used verbatim as a
/// fixed one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DeltaPolicy {
    /// Use an explicitly supplied value (what the paper's experiments do:
    /// they plug in the planted conductance of the model).
    Fixed(f64),
    /// Estimate `Φ_G` with a BFS-ordered sweep cut
    /// ([`cdrw_graph::properties::conductance_sweep_estimate`]) before the
    /// first detection. This is the default: it needs no ground truth.
    #[default]
    SweepEstimate,
}

/// How many independent walks each detection aggregates evidence from.
///
/// Near the connectivity threshold (`p = Θ(ln n/n)`) with several blocks, a
/// single walk barely mixes in-block before inter-block leakage dominates:
/// the growth rule tends to fire on a small transient mixing set around the
/// seed. *Agreement across several independent walks* is a much stronger
/// signal, so [`EnsemblePolicy::Ensemble`] runs the base detection, re-seeds
/// `walks − 1` follow-up walks from high-affinity members of the detection's
/// interior, accumulates per-vertex co-occurrence votes in a
/// [`cdrw_walk::evidence::WalkEvidence`], and emits the quorum-filtered
/// consensus set (always joined with the largest single-walk set, whose walk
/// out-survived the early stop when one exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EnsemblePolicy {
    /// One walk per detection — Algorithm 1 verbatim. Bit-identical to the
    /// behaviour before the ensemble layer existed (a property test pins
    /// this).
    #[default]
    Single,
    /// Multi-seed evidence aggregation over `walks` independent walks; a
    /// vertex joins the consensus when at least `quorum` walks voted for it.
    /// `walks == 1` degenerates to [`EnsemblePolicy::Single`] exactly.
    Ensemble {
        /// Total number of walks per detection (the base walk included).
        walks: usize,
        /// Minimum number of votes a vertex needs to join the consensus.
        quorum: usize,
    },
}

impl EnsemblePolicy {
    /// Total number of walks per detection (1 for [`EnsemblePolicy::Single`]).
    pub fn walks(&self) -> usize {
        match self {
            EnsemblePolicy::Single => 1,
            EnsemblePolicy::Ensemble { walks, .. } => *walks,
        }
    }

    /// The vote quorum (1 for [`EnsemblePolicy::Single`]).
    pub fn quorum(&self) -> usize {
        match self {
            EnsemblePolicy::Single => 1,
            EnsemblePolicy::Ensemble { quorum, .. } => *quorum,
        }
    }

    /// Whether the ensemble path actually runs extra walks. An
    /// `Ensemble { walks: 1, .. }` policy is treated as single-walk, so the
    /// single path (bit-identical to the pre-ensemble behaviour) serves it.
    pub fn is_ensemble(&self) -> bool {
        self.walks() > 1
    }
}

/// How the per-seed detections of a run are assembled into the final global
/// partition.
///
/// The pool loop emits one detection per seed; detections can overlap (later
/// walks run on the full graph), conflict, or leave vertices unassigned.
/// [`AssemblyPolicy::Raw`] keeps the historical resolution — first claim
/// wins, leftovers become singletons — bit-identically.
/// [`AssemblyPolicy::Pooled`] instead pools every detection's per-vertex
/// votes and mixing margins in a [`cdrw_walk::evidence::WalkEvidence`]
/// cross-epoch view and hands them to [`crate::assembly`], which
///
/// 1. links detections whose pooled claims overlap heavily into *evidence
///    groups* (fragments of one underlying community),
/// 2. re-seeds `reseed` extra walks per multi-detection group from the
///    group's highest-margin members — the ROADMAP's *cross-detection
///    ensemble re-seeding* — and joins their quorum-filtered consensus into
///    the group's member set,
/// 3. resolves contested vertices by margin-weighted vote and absorbs
///    unassigned vertices into their highest-affinity neighbour community
///    (isolated vertices stay singletons), producing a total partition.
///
/// # Examples
///
/// ```
/// use cdrw_core::{AssemblyPolicy, Cdrw, CdrwConfig};
/// use cdrw_gen::{generate_ppm, PpmParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = PpmParams::new(256, 2, 0.25, 0.004)?;
/// let (graph, _) = generate_ppm(&params, 7)?;
/// let cdrw = Cdrw::new(
///     CdrwConfig::builder().seed(3).delta(0.1).assembly(2, 1).build(),
/// );
/// let result = cdrw.detect_all(&graph)?;
/// // The pooled assembly reports what it did and the partition is total.
/// assert!(result.assembly().is_some());
/// assert_eq!(result.partition().num_vertices(), 256);
/// // The default policy stays Raw: no report, historical behaviour.
/// let raw = Cdrw::new(CdrwConfig::builder().seed(3).delta(0.1).build());
/// assert!(raw.detect_all(&graph)?.assembly().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AssemblyPolicy {
    /// First claim wins, unclaimed vertices become singletons — the assembly
    /// layer changes nothing: a property test pins `Raw` bit-identical to a
    /// configuration that never mentions an assembly policy. (The
    /// zero-degree-vertex bugfix that shipped alongside the assembly layer
    /// applies under every policy, `Raw` included; see the paper map's
    /// deviation 10.)
    #[default]
    Raw,
    /// Cross-detection evidence pooling: group overlapping detections, run
    /// `reseed` follow-up walks per multi-detection group (a vertex needs
    /// `quorum` of their votes to join the group by re-seeding alone), and
    /// reconcile the claims into a total partition. `reseed: 0, quorum: 0`
    /// reconciles without extra walks.
    Pooled {
        /// Follow-up walks per evidence group with at least two detections.
        reseed: usize,
        /// Votes a vertex needs among the re-seeded walks to join the group's
        /// consensus (clamped at runtime to the walks actually recorded, the
        /// same discipline as [`EnsemblePolicy::Ensemble`]).
        quorum: usize,
    },
}

impl AssemblyPolicy {
    /// Whether this policy pools evidence (anything but [`AssemblyPolicy::Raw`]).
    pub fn is_pooled(&self) -> bool {
        !matches!(self, AssemblyPolicy::Raw)
    }

    /// The configured re-seed walk count (0 for [`AssemblyPolicy::Raw`]).
    pub fn reseed(&self) -> usize {
        match self {
            AssemblyPolicy::Raw => 0,
            AssemblyPolicy::Pooled { reseed, .. } => *reseed,
        }
    }

    /// The configured re-seed vote quorum (0 for [`AssemblyPolicy::Raw`]).
    pub fn quorum(&self) -> usize {
        match self {
            AssemblyPolicy::Raw => 0,
            AssemblyPolicy::Pooled { quorum, .. } => *quorum,
        }
    }

    /// Pooled reconciliation without cross-detection re-seed walks.
    pub const fn reconcile_only() -> Self {
        AssemblyPolicy::Pooled {
            reseed: 0,
            quorum: 0,
        }
    }
}

/// Configuration of CDRW (Algorithm 1).
///
/// Use [`CdrwConfig::builder`] to construct; all fields have paper-faithful
/// defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdrwConfig {
    /// RNG seed used for picking seed nodes from the pool.
    pub seed: u64,
    /// Policy for the growth threshold `δ`.
    pub delta: DeltaPolicy,
    /// Walk-length cap expressed as a multiple of `ln n` (Algorithm 1 runs
    /// the walk for `O(log n)` steps).
    pub max_walk_length_factor: f64,
    /// Minimum candidate community size `R`. `None` uses the paper's
    /// `⌈ln n⌉`.
    pub min_community_size: Option<usize>,
    /// Local-mixing threshold, `1/2e` in the paper.
    pub mixing_threshold: f64,
    /// Geometric growth factor of the candidate-size sweep, `1 + 1/8e` in the
    /// paper.
    pub size_growth_factor: f64,
    /// The growth-rule stop (`|S_ℓ| < (1+δ)|S_{ℓ−1}|`) is only applied once
    /// the previous mixing set has at least `min_stop_size_factor · R`
    /// vertices (with `R` the minimum candidate size). Very early in the
    /// walk, tiny sets of ≈ R nodes around the seed can spuriously satisfy
    /// the approximate mixing condition for a couple of steps, which would
    /// otherwise fire the stop rule long before the walk has spread over the
    /// community; the paper's analysis implicitly excludes this regime by
    /// assuming every community has at least `log n` members and analysing
    /// walk lengths up to the (local) mixing time. Set to `0.0` to apply the
    /// pseudocode's stop rule literally.
    pub min_stop_size_factor: f64,
    /// The mixing criterion the sweep applies per candidate size. Defaults to
    /// [`MixingCriterion::Renormalized`] — the rule under which the
    /// reproduction meets the paper's accuracy targets on every measured
    /// regime (the strict `1/2e` rule under-fires when the walk leaks mass
    /// across blocks faster than it equalises within one; see `ROADMAP.md`).
    /// Select [`MixingCriterion::Strict`] to run Algorithm 1 verbatim.
    pub criterion: MixingCriterion,
    /// How many independent walks each detection aggregates evidence from.
    /// Defaults to [`EnsemblePolicy::Single`] (Algorithm 1 verbatim);
    /// [`EnsemblePolicy::Ensemble`] closes the sparse-PPM accuracy frontier
    /// (`p = Θ(ln n/n)`, several blocks) — see `ROADMAP.md` for the measured
    /// comparison.
    pub ensemble: EnsemblePolicy,
    /// How a run's detections are assembled into the final partition.
    /// Defaults to [`AssemblyPolicy::Raw`] (first claim wins, bit-identical
    /// to the pre-assembly behaviour); [`AssemblyPolicy::Pooled`] pools
    /// evidence across detections, re-seeds fragmented communities and
    /// reconciles overlaps — the lever that lifts the hardest Figure 4a
    /// sparse cells past the plain ensemble (see `ROADMAP.md`).
    pub assembly: AssemblyPolicy,
}

impl CdrwConfig {
    /// Smallest growth threshold `δ` the configuration accepts — the single
    /// domain shared by both [`DeltaPolicy`] paths. A fixed `δ` below this is
    /// rejected by [`CdrwConfig::validate`], and
    /// [`CdrwConfig::resolve_delta`]'s sweep path clamps its estimate up to
    /// it (a sweep on a graph with an extremely sparse cut can estimate an
    /// arbitrarily small conductance, which would make the stopping rule
    /// `|S_ℓ| < (1 + δ)|S_{ℓ−1}|` fire on any non-growing set). The resolved
    /// `δ` therefore always lies in `[MIN_DELTA, 1.0]`, whichever policy
    /// produced it.
    pub const MIN_DELTA: f64 = 1e-6;

    /// Starts building a configuration.
    pub fn builder() -> CdrwConfigBuilder {
        CdrwConfigBuilder::default()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CdrwError::InvalidConfig`] when a field is outside its valid
    /// domain (non-positive walk-length factor, threshold, growth factor ≤ 1,
    /// a fixed δ outside `[CdrwConfig::MIN_DELTA, 1.0]`, or an ensemble
    /// policy whose quorum exceeds its walk count).
    // The negated comparisons are deliberate: NaN fails `x > 0.0` and must be
    // rejected, which `x <= 0.0` would silently accept.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), CdrwError> {
        if !(self.max_walk_length_factor > 0.0) {
            return Err(CdrwError::InvalidConfig {
                field: "max_walk_length_factor",
                reason: format!("must be positive, got {}", self.max_walk_length_factor),
            });
        }
        if !(self.mixing_threshold > 0.0) {
            return Err(CdrwError::InvalidConfig {
                field: "mixing_threshold",
                reason: format!("must be positive, got {}", self.mixing_threshold),
            });
        }
        if !(self.size_growth_factor > 1.0) {
            return Err(CdrwError::InvalidConfig {
                field: "size_growth_factor",
                reason: format!("must be greater than 1, got {}", self.size_growth_factor),
            });
        }
        if let Some(0) = self.min_community_size {
            return Err(CdrwError::InvalidConfig {
                field: "min_community_size",
                reason: "must be at least 1".to_string(),
            });
        }
        if !(self.min_stop_size_factor >= 0.0) {
            return Err(CdrwError::InvalidConfig {
                field: "min_stop_size_factor",
                reason: format!("must be non-negative, got {}", self.min_stop_size_factor),
            });
        }
        if let DeltaPolicy::Fixed(delta) = self.delta {
            // NaN fails `contains` and is rejected, as intended.
            if !(Self::MIN_DELTA..=1.0).contains(&delta) {
                return Err(CdrwError::InvalidConfig {
                    field: "delta",
                    reason: format!(
                        "a fixed δ must lie in [{}, 1] (the same domain the sweep \
                         estimate is clamped into), got {delta}",
                        Self::MIN_DELTA
                    ),
                });
            }
        }
        match self.ensemble {
            EnsemblePolicy::Single => {}
            EnsemblePolicy::Ensemble { walks, quorum } => {
                if walks == 0 {
                    return Err(CdrwError::InvalidConfig {
                        field: "ensemble",
                        reason: "an ensemble needs at least one walk".to_string(),
                    });
                }
                if quorum == 0 || quorum > walks {
                    return Err(CdrwError::InvalidConfig {
                        field: "ensemble",
                        reason: format!(
                            "the quorum must lie in [1, walks]; got quorum {quorum} \
                             with {walks} walks"
                        ),
                    });
                }
            }
        }
        match self.assembly {
            AssemblyPolicy::Raw => {}
            AssemblyPolicy::Pooled { reseed: 0, quorum } => {
                if quorum != 0 {
                    return Err(CdrwError::InvalidConfig {
                        field: "assembly",
                        reason: format!(
                            "a pooled assembly without re-seed walks takes quorum 0, \
                             got quorum {quorum}"
                        ),
                    });
                }
            }
            AssemblyPolicy::Pooled { reseed, quorum } => {
                // The same invariant as the ensemble: the quorum must be
                // satisfiable by the configured walks. At runtime a group can
                // still record fewer walks than `reseed` (degenerate-small
                // seed pools, abstaining walks); the driver then clamps the
                // quorum to the recorded count — the exact mirror of this
                // check, so validation and clamping agree at the boundary.
                if quorum == 0 || quorum > reseed {
                    return Err(CdrwError::InvalidConfig {
                        field: "assembly",
                        reason: format!(
                            "the re-seed quorum must lie in [1, reseed]; got quorum \
                             {quorum} with {reseed} re-seed walks"
                        ),
                    });
                }
            }
        }
        self.criterion
            .validate()
            .map_err(|e| CdrwError::InvalidConfig {
                field: "criterion",
                reason: e.to_string(),
            })
    }

    /// The maximum walk length for a graph of `n` vertices:
    /// `⌈max_walk_length_factor · ln n⌉` stretched by the criterion's
    /// walk-length multiplier (the lazy walk mixes `1/(1−α)` times slower),
    /// at least 2.
    pub fn max_walk_length(&self, n: usize) -> usize {
        let ln_n = (n.max(2) as f64).ln();
        let budget = self.max_walk_length_factor * self.criterion.walk_length_multiplier() * ln_n;
        (budget.ceil() as usize).max(2)
    }

    /// The smallest previous-set size at which the growth-rule stop is
    /// considered, for a graph of `n` vertices.
    pub fn min_stop_size(&self, n: usize) -> usize {
        let r = self.local_mixing_config(n).min_size;
        (self.min_stop_size_factor * r as f64).ceil() as usize
    }

    /// The [`LocalMixingConfig`] induced by this configuration for a graph of
    /// `n` vertices.
    pub fn local_mixing_config(&self, n: usize) -> LocalMixingConfig {
        let defaults = LocalMixingConfig::for_graph_size(n);
        LocalMixingConfig {
            min_size: self.min_community_size.unwrap_or(defaults.min_size),
            growth_factor: self.size_growth_factor,
            threshold: self.mixing_threshold,
            stop_at_first_failure: self.criterion.stops_at_first_failure(),
            criterion: self.criterion,
        }
    }

    /// Resolves the growth threshold `δ` for a concrete graph according to
    /// the [`DeltaPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates failures of the sweep estimator (empty graph).
    pub fn resolve_delta(&self, graph: &Graph) -> Result<f64, CdrwError> {
        match self.delta {
            DeltaPolicy::Fixed(delta) => Ok(delta),
            DeltaPolicy::SweepEstimate => {
                let estimate = cdrw_graph::properties::conductance_sweep_estimate(graph)?;
                // Clamp into the shared δ domain (see `CdrwConfig::MIN_DELTA`)
                // so the stopping rule remains usable on graphs with an
                // extremely sparse cut, and so the estimate is always a value
                // `validate` would also accept as a fixed δ.
                Ok(estimate.clamp(Self::MIN_DELTA, 1.0))
            }
        }
    }
}

impl Default for CdrwConfig {
    fn default() -> Self {
        CdrwConfig {
            seed: 0,
            delta: DeltaPolicy::default(),
            max_walk_length_factor: 3.0,
            min_community_size: None,
            mixing_threshold: MIXING_THRESHOLD,
            size_growth_factor: SIZE_GROWTH_FACTOR,
            min_stop_size_factor: 2.0,
            criterion: MixingCriterion::default(),
            ensemble: EnsemblePolicy::default(),
            assembly: AssemblyPolicy::default(),
        }
    }
}

/// Builder for [`CdrwConfig`].
#[derive(Debug, Clone, Default)]
pub struct CdrwConfigBuilder {
    config: CdrwConfig,
}

impl CdrwConfigBuilder {
    /// Sets the RNG seed used to draw seed nodes from the pool.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets a fixed growth threshold `δ` (the paper's `Φ_G`).
    pub fn delta(mut self, delta: f64) -> Self {
        self.config.delta = DeltaPolicy::Fixed(delta);
        self
    }

    /// Sets the δ policy directly.
    pub fn delta_policy(mut self, policy: DeltaPolicy) -> Self {
        self.config.delta = policy;
        self
    }

    /// Sets the walk-length cap as a multiple of `ln n`.
    pub fn max_walk_length_factor(mut self, factor: f64) -> Self {
        self.config.max_walk_length_factor = factor;
        self
    }

    /// Sets the minimum candidate community size `R`.
    pub fn min_community_size(mut self, size: usize) -> Self {
        self.config.min_community_size = Some(size);
        self
    }

    /// Sets the local-mixing threshold (paper default `1/2e`).
    pub fn mixing_threshold(mut self, threshold: f64) -> Self {
        self.config.mixing_threshold = threshold;
        self
    }

    /// Sets the candidate-size growth factor (paper default `1 + 1/8e`).
    pub fn size_growth_factor(mut self, factor: f64) -> Self {
        self.config.size_growth_factor = factor;
        self
    }

    /// Sets the minimum size (as a multiple of `R`) the previous mixing set
    /// must reach before the growth-rule stop applies (default 2.0; 0.0
    /// reproduces the pseudocode literally).
    pub fn min_stop_size_factor(mut self, factor: f64) -> Self {
        self.config.min_stop_size_factor = factor;
        self
    }

    /// Sets the mixing criterion (default [`MixingCriterion::Renormalized`];
    /// [`MixingCriterion::Strict`] runs Algorithm 1 verbatim).
    pub fn criterion(mut self, criterion: MixingCriterion) -> Self {
        self.config.criterion = criterion;
        self
    }

    /// Sets the ensemble policy directly (default [`EnsemblePolicy::Single`]).
    pub fn ensemble_policy(mut self, policy: EnsemblePolicy) -> Self {
        self.config.ensemble = policy;
        self
    }

    /// Shorthand for [`EnsemblePolicy::Ensemble`] with the given walk count
    /// and vote quorum.
    pub fn ensemble(mut self, walks: usize, quorum: usize) -> Self {
        self.config.ensemble = EnsemblePolicy::Ensemble { walks, quorum };
        self
    }

    /// Sets the assembly policy directly (default [`AssemblyPolicy::Raw`]).
    pub fn assembly_policy(mut self, policy: AssemblyPolicy) -> Self {
        self.config.assembly = policy;
        self
    }

    /// Shorthand for [`AssemblyPolicy::Pooled`] with the given re-seed walk
    /// count and vote quorum.
    pub fn assembly(mut self, reseed: usize, quorum: usize) -> Self {
        self.config.assembly = AssemblyPolicy::Pooled { reseed, quorum };
        self
    }

    /// Finishes building. Panics are avoided: validation happens when the
    /// configuration is first used (so the builder itself stays infallible).
    pub fn build(self) -> CdrwConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrw_graph::GraphBuilder;

    #[test]
    fn defaults_match_the_paper() {
        let config = CdrwConfig::default();
        assert!((config.mixing_threshold - MIXING_THRESHOLD).abs() < 1e-15);
        assert!((config.size_growth_factor - SIZE_GROWTH_FACTOR).abs() < 1e-15);
        assert_eq!(config.delta, DeltaPolicy::SweepEstimate);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn builder_sets_every_field() {
        let config = CdrwConfig::builder()
            .seed(9)
            .delta(0.25)
            .max_walk_length_factor(5.0)
            .min_community_size(16)
            .mixing_threshold(0.2)
            .size_growth_factor(1.1)
            .min_stop_size_factor(3.5)
            .criterion(MixingCriterion::Adaptive)
            .ensemble(5, 2)
            .assembly(4, 2)
            .build();
        assert_eq!(config.seed, 9);
        assert_eq!(config.delta, DeltaPolicy::Fixed(0.25));
        assert_eq!(config.max_walk_length_factor, 5.0);
        assert_eq!(config.min_community_size, Some(16));
        assert_eq!(config.mixing_threshold, 0.2);
        assert_eq!(config.size_growth_factor, 1.1);
        assert_eq!(config.min_stop_size_factor, 3.5);
        assert_eq!(config.criterion, MixingCriterion::Adaptive);
        assert_eq!(
            config.ensemble,
            EnsemblePolicy::Ensemble {
                walks: 5,
                quorum: 2
            }
        );
        assert_eq!(
            config.assembly,
            AssemblyPolicy::Pooled {
                reseed: 4,
                quorum: 2
            }
        );
        assert!(config.validate().is_ok());
        // The three policy-shaped fields are also settable via their
        // dedicated builder methods.
        let config = CdrwConfig::builder()
            .delta_policy(DeltaPolicy::SweepEstimate)
            .ensemble_policy(EnsemblePolicy::Single)
            .assembly_policy(AssemblyPolicy::Raw)
            .build();
        assert_eq!(config.delta, DeltaPolicy::SweepEstimate);
        assert_eq!(config.ensemble, EnsemblePolicy::Single);
        assert_eq!(config.assembly, AssemblyPolicy::Raw);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let bad = CdrwConfig {
            max_walk_length_factor: 0.0,
            ..CdrwConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = CdrwConfig {
            mixing_threshold: -1.0,
            ..CdrwConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = CdrwConfig {
            size_growth_factor: 1.0,
            ..CdrwConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = CdrwConfig {
            min_community_size: Some(0),
            ..CdrwConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = CdrwConfig::builder().delta(0.0).build();
        assert!(bad.validate().is_err());
        let bad = CdrwConfig::builder().delta(1.5).build();
        assert!(bad.validate().is_err());
        let bad = CdrwConfig::builder().ensemble(0, 1).build();
        assert!(bad.validate().is_err());
        let bad = CdrwConfig::builder().ensemble(3, 0).build();
        assert!(bad.validate().is_err());
        let bad = CdrwConfig::builder().ensemble(3, 4).build();
        assert!(bad.validate().is_err());
        let ok = CdrwConfig::builder().ensemble(3, 3).build();
        assert!(ok.validate().is_ok());
        let degenerate = CdrwConfig::builder().ensemble(1, 1).build();
        assert!(degenerate.validate().is_ok());
        assert!(!degenerate.ensemble.is_ensemble());
    }

    #[test]
    fn assembly_validation_boundaries_match_the_runtime_clamp() {
        // Valid side of every boundary: quorum == reseed is the largest
        // quorum the runtime clamp can ever leave in place, and the
        // reconcile-only policy takes quorum 0 exactly.
        for ok in [
            AssemblyPolicy::Raw,
            AssemblyPolicy::reconcile_only(),
            AssemblyPolicy::Pooled {
                reseed: 1,
                quorum: 1,
            },
            AssemblyPolicy::Pooled {
                reseed: 4,
                quorum: 4,
            },
        ] {
            let config = CdrwConfig::builder().assembly_policy(ok).build();
            assert!(config.validate().is_ok(), "{ok:?} must validate");
        }
        // Invalid side: a quorum the configured walks can never satisfy is
        // rejected up front — the exact condition the runtime clamp
        // `quorum.min(walks_recorded)` prevents from arising dynamically.
        for bad in [
            AssemblyPolicy::Pooled {
                reseed: 4,
                quorum: 5,
            },
            AssemblyPolicy::Pooled {
                reseed: 4,
                quorum: 0,
            },
            AssemblyPolicy::Pooled {
                reseed: 0,
                quorum: 1,
            },
        ] {
            let config = CdrwConfig::builder().assembly_policy(bad).build();
            assert!(
                matches!(
                    config.validate(),
                    Err(CdrwError::InvalidConfig {
                        field: "assembly",
                        ..
                    })
                ),
                "{bad:?} must be rejected"
            );
        }
        // The ensemble boundary mirrors it: quorum == walks valid,
        // quorum == walks + 1 invalid (both directions pinned above in
        // `validation_rejects_bad_values`).
        assert!(CdrwConfig::builder()
            .ensemble(3, 3)
            .build()
            .validate()
            .is_ok());
        assert!(CdrwConfig::builder()
            .ensemble(3, 4)
            .build()
            .validate()
            .is_err());
    }

    #[test]
    fn assembly_policy_accessors() {
        assert!(!AssemblyPolicy::Raw.is_pooled());
        assert_eq!(AssemblyPolicy::Raw.reseed(), 0);
        assert_eq!(AssemblyPolicy::Raw.quorum(), 0);
        assert_eq!(AssemblyPolicy::default(), AssemblyPolicy::Raw);
        let pooled = AssemblyPolicy::Pooled {
            reseed: 6,
            quorum: 3,
        };
        assert!(pooled.is_pooled());
        assert_eq!(pooled.reseed(), 6);
        assert_eq!(pooled.quorum(), 3);
        assert!(AssemblyPolicy::reconcile_only().is_pooled());
        assert_eq!(AssemblyPolicy::reconcile_only().reseed(), 0);
    }

    #[test]
    fn delta_domain_is_shared_by_both_policies() {
        // Fixed path: the boundary values of the shared domain are accepted,
        // anything below MIN_DELTA (or above 1) is rejected.
        assert!(CdrwConfig::builder()
            .delta(CdrwConfig::MIN_DELTA)
            .build()
            .validate()
            .is_ok());
        assert!(CdrwConfig::builder().delta(1.0).build().validate().is_ok());
        assert!(CdrwConfig::builder()
            .delta(CdrwConfig::MIN_DELTA / 2.0)
            .build()
            .validate()
            .is_err());
        assert!(CdrwConfig::builder()
            .delta(f64::NAN)
            .build()
            .validate()
            .is_err());
        // Sweep path: the estimate lands in the same domain, so it can always
        // be re-used verbatim as a fixed δ of a valid configuration.
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
                .unwrap();
        let sweep_delta = CdrwConfig::default().resolve_delta(&g).unwrap();
        assert!((CdrwConfig::MIN_DELTA..=1.0).contains(&sweep_delta));
        assert!(CdrwConfig::builder()
            .delta(sweep_delta)
            .build()
            .validate()
            .is_ok());
    }

    #[test]
    fn ensemble_policy_accessors() {
        assert_eq!(EnsemblePolicy::Single.walks(), 1);
        assert_eq!(EnsemblePolicy::Single.quorum(), 1);
        assert!(!EnsemblePolicy::Single.is_ensemble());
        let policy = EnsemblePolicy::Ensemble {
            walks: 7,
            quorum: 3,
        };
        assert_eq!(policy.walks(), 7);
        assert_eq!(policy.quorum(), 3);
        assert!(policy.is_ensemble());
        assert!(!EnsemblePolicy::Ensemble {
            walks: 1,
            quorum: 1
        }
        .is_ensemble());
        assert_eq!(EnsemblePolicy::default(), EnsemblePolicy::Single);
    }

    #[test]
    fn max_walk_length_scales_with_ln_n() {
        let config = CdrwConfig::default();
        assert!(config.max_walk_length(2) >= 2);
        let small = config.max_walk_length(128);
        let large = config.max_walk_length(128 * 128);
        assert!((large as f64 - 2.0 * small as f64).abs() <= 2.0);
    }

    #[test]
    fn local_mixing_config_respects_overrides() {
        let config = CdrwConfig::builder().min_community_size(50).build();
        let lm = config.local_mixing_config(1024);
        assert_eq!(lm.min_size, 50);
        let default_lm = CdrwConfig::default().local_mixing_config(1024);
        assert_eq!(default_lm.min_size, 7);
    }

    #[test]
    fn resolve_delta_fixed_and_sweep() {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
                .unwrap();
        let fixed = CdrwConfig::builder().delta(0.3).build();
        assert_eq!(fixed.resolve_delta(&g).unwrap(), 0.3);
        let sweep = CdrwConfig::default();
        let delta = sweep.resolve_delta(&g).unwrap();
        assert!(delta > 0.0 && delta <= 1.0);
    }
}
