//! Result types: per-seed detections, execution traces and the final
//! partition.

use cdrw_graph::{Partition, VertexId};
use serde::{Deserialize, Serialize};

use crate::assembly::AssemblyReport;

/// Trace of one step of the random walk during a single-seed detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepTrace {
    /// The walk length `ℓ` of this step.
    pub walk_length: usize,
    /// Size of the largest local mixing set found at this step (0 if none).
    /// On the step that fired the growth rule this records the size of the
    /// *returned* community — the grown set that triggered the stop is
    /// discarded by Algorithm 1, so recording it here would leave the trace
    /// disagreeing with the detection it belongs to.
    pub mixing_set_size: usize,
    /// Number of candidate sizes the sweep examined at this step.
    pub sizes_checked: usize,
}

/// One walk's contribution to an ensemble detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnsembleWalkTrace {
    /// The vertex this walk started from (the detection's own seed for the
    /// base walk, a high-affinity interior member for a follow-up walk).
    pub seed: VertexId,
    /// Size of the set this walk voted with — its detected mixing set, or,
    /// for a follow-up walk that ended up globally mixed, the last
    /// community-scale (≤ n/2 vertices) mixing set it passed through. 0 when
    /// the walk abstained because it never saw a community-scale set.
    pub set_size: usize,
    /// The walk's mixing margin: threshold minus the winning sweep check's
    /// score (0 when the walk never found a mixing set; can be negative for
    /// the adaptive criterion, whose effective threshold per check exceeds
    /// the configured one).
    pub margin: f64,
    /// How many of this walk's votes made the final consensus set.
    pub contributed: usize,
}

/// Trace of the evidence-aggregation ensemble of one detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleTrace {
    /// The effective vote quorum (the configured quorum, capped at the number
    /// of walks actually recorded — small detections can yield fewer distinct
    /// follow-up seeds than the policy asks for).
    pub quorum: usize,
    /// Per-walk contributions, base walk first.
    pub walks: Vec<EnsembleWalkTrace>,
    /// Size of the consensus set the detection emitted.
    pub consensus_size: usize,
}

/// Execution trace of a single-seed detection.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DetectionTrace {
    /// One entry per walk step, in order (the base walk's steps for an
    /// ensemble detection).
    pub steps: Vec<StepTrace>,
    /// `true` if the detection stopped because the growth rule
    /// `|S_ℓ| < (1+δ)|S_{ℓ−1}|` fired; `false` if it ran into the walk-length
    /// cap.
    pub stopped_by_growth_rule: bool,
    /// The growth threshold `δ` that was in effect.
    pub delta: f64,
    /// Per-walk evidence of the ensemble, when the detection ran under
    /// [`crate::EnsemblePolicy::Ensemble`] with more than one walk.
    pub ensemble: Option<EnsembleTrace>,
}

impl DetectionTrace {
    /// Number of walk steps performed.
    pub fn walk_length(&self) -> usize {
        self.steps.len()
    }

    /// Total number of candidate-size checks across all steps (each costs one
    /// tree aggregation in the CONGEST model).
    pub fn total_size_checks(&self) -> usize {
        self.steps.iter().map(|s| s.sizes_checked).sum()
    }

    /// The sizes of the largest mixing set over time. When the detection
    /// stopped via the growth rule, the last entry is the size of the
    /// returned community (see [`StepTrace::mixing_set_size`]), so the
    /// history always ends on the set the caller actually received.
    pub fn size_history(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.mixing_set_size).collect()
    }
}

/// The community detected from one seed node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityDetection {
    /// The seed node the walk started from.
    pub seed: VertexId,
    /// Sorted members of the detected community (always contains the seed).
    pub members: Vec<VertexId>,
    /// Step-by-step trace of the detection.
    pub trace: DetectionTrace,
}

impl CommunityDetection {
    /// Number of members of the detected community.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the detected community is empty (never true for a detection
    /// produced by [`crate::Cdrw`]; the seed is always a member).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `v` belongs to the detected community.
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }
}

/// The result of detecting all communities of a graph (the pool loop of
/// Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionResult {
    detections: Vec<CommunityDetection>,
    partition: Partition,
    delta: f64,
    /// Statistics of the global assembly, present only when the run used
    /// [`crate::AssemblyPolicy::Pooled`].
    #[serde(default)]
    assembly: Option<AssemblyReport>,
}

impl DetectionResult {
    /// Assembles the result from the raw per-seed detections.
    ///
    /// Detected communities may overlap (later walks run on the full graph);
    /// the disjoint [`Partition`] assigns every vertex to the first community
    /// that claimed it, which matches the pool semantics of Algorithm 1 (a
    /// vertex already removed from the pool is never re-assigned). Vertices
    /// claimed by no detection become singleton communities so that the
    /// partition stays total.
    ///
    /// This constructor is public so that alternative drivers (the CONGEST
    /// and k-machine simulators) can assemble results with the exact same
    /// overlap-resolution semantics as the sequential algorithm.
    pub fn new(num_vertices: usize, detections: Vec<CommunityDetection>, delta: f64) -> Self {
        let mut assignment = vec![usize::MAX; num_vertices];
        for (index, detection) in detections.iter().enumerate() {
            for &v in &detection.members {
                if v < num_vertices && assignment[v] == usize::MAX {
                    assignment[v] = index;
                }
            }
        }
        // Vertices never claimed by any detection (possible only on inputs
        // where the walk could not find a mixing set) fall back to their own
        // singleton community so the partition stays total.
        let mut next_fresh = detections.len();
        for slot in assignment.iter_mut() {
            if *slot == usize::MAX {
                *slot = next_fresh;
                next_fresh += 1;
            }
        }
        let partition =
            Partition::from_assignment(assignment).expect("assignment is total and non-empty");
        DetectionResult {
            detections,
            partition,
            delta,
            assembly: None,
        }
    }

    /// Assembles the result from detections already reconciled by the global
    /// assembly layer (`crate::assembly`): the partition was produced by
    /// margin-weighted reconciliation rather than first-claim resolution, and
    /// the report records what the assembly did.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly `num_vertices`
    /// vertices.
    pub fn assembled(
        num_vertices: usize,
        detections: Vec<CommunityDetection>,
        partition: Partition,
        report: AssemblyReport,
        delta: f64,
    ) -> Self {
        assert_eq!(
            partition.num_vertices(),
            num_vertices,
            "assembled partition must cover the whole graph"
        );
        DetectionResult {
            detections,
            partition,
            delta,
            assembly: Some(report),
        }
    }

    /// The assembly statistics, when the run used
    /// [`crate::AssemblyPolicy::Pooled`] (`None` under
    /// [`crate::AssemblyPolicy::Raw`]).
    pub fn assembly(&self) -> Option<&AssemblyReport> {
        self.assembly.as_ref()
    }

    /// The raw per-seed detections, in the order they were produced.
    pub fn detections(&self) -> &[CommunityDetection] {
        &self.detections
    }

    /// The seed node of every detection, aligned with
    /// [`DetectionResult::detections`].
    ///
    /// Note that the communities of [`DetectionResult::partition`] are *not*
    /// index-aligned with the detections (the partition relabels communities
    /// in order of first vertex appearance and may contain residual
    /// fragments). To compute the paper's seed-based F-score, score the raw
    /// detections — e.g. with `cdrw_metrics::f_score_for_detections` — rather
    /// than pairing these seeds with the partition.
    pub fn seeds(&self) -> Vec<VertexId> {
        self.detections.iter().map(|d| d.seed).collect()
    }

    /// The disjoint partition induced by the detections (first claim wins).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of detected communities.
    pub fn num_communities(&self) -> usize {
        self.detections.len()
    }

    /// The growth threshold `δ` that was used.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Total number of walk steps across all detections.
    pub fn total_walk_steps(&self) -> usize {
        self.detections.iter().map(|d| d.trace.walk_length()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detection(seed: VertexId, members: Vec<VertexId>) -> CommunityDetection {
        CommunityDetection {
            seed,
            members,
            trace: DetectionTrace::default(),
        }
    }

    #[test]
    fn step_trace_aggregation() {
        let trace = DetectionTrace {
            steps: vec![
                StepTrace {
                    walk_length: 1,
                    mixing_set_size: 0,
                    sizes_checked: 3,
                },
                StepTrace {
                    walk_length: 2,
                    mixing_set_size: 12,
                    sizes_checked: 5,
                },
            ],
            stopped_by_growth_rule: true,
            delta: 0.1,
            ensemble: None,
        };
        assert_eq!(trace.walk_length(), 2);
        assert_eq!(trace.total_size_checks(), 8);
        assert_eq!(trace.size_history(), vec![0, 12]);
    }

    #[test]
    fn community_detection_contains() {
        let d = detection(3, vec![1, 3, 5]);
        assert!(d.contains(3));
        assert!(!d.contains(2));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn partition_uses_first_claim() {
        let detections = vec![detection(0, vec![0, 1, 2]), detection(3, vec![2, 3])];
        let result = DetectionResult::new(4, detections, 0.1);
        assert_eq!(result.num_communities(), 2);
        let p = result.partition();
        // Vertex 2 was claimed first by community 0.
        assert_eq!(p.community_of(2), p.community_of(0));
        assert_eq!(p.community_of(3).unwrap(), 1);
        assert_eq!(result.seeds(), vec![0, 3]);
        assert_eq!(result.delta(), 0.1);
    }

    #[test]
    fn unclaimed_vertices_become_singletons() {
        let detections = vec![detection(0, vec![0, 1])];
        let result = DetectionResult::new(4, detections, 0.2);
        let p = result.partition();
        assert_eq!(p.num_communities(), 3);
        assert_ne!(p.community_of(2), p.community_of(3));
        assert_eq!(p.community_of(0), p.community_of(1));
    }

    #[test]
    fn total_walk_steps_sums_traces() {
        let mut a = detection(0, vec![0]);
        a.trace.steps = vec![StepTrace {
            walk_length: 1,
            mixing_set_size: 1,
            sizes_checked: 1,
        }];
        let mut b = detection(1, vec![1]);
        b.trace.steps = vec![
            StepTrace {
                walk_length: 1,
                mixing_set_size: 1,
                sizes_checked: 1,
            },
            StepTrace {
                walk_length: 2,
                mixing_set_size: 2,
                sizes_checked: 2,
            },
        ];
        let result = DetectionResult::new(2, vec![a, b], 0.5);
        assert_eq!(result.total_walk_steps(), 3);
    }
}
