//! The growth-rule stopping state of one CDRW walk, shared by every driver.
//!
//! Algorithm 1 stops a walk when the mixing set found at the current step is
//! less than `(1 + δ)` times the previous step's set (and the previous set
//! has reached the stop floor). The sequential [`crate::Cdrw`], the batched
//! multi-walk runner and the CONGEST runner all feed their per-step sweep
//! outcomes through one [`GrowthTracker`], so a walk's detected member set is
//! the same bit for bit no matter which driver executed it — the drivers
//! differ only in how steps are scheduled (solo, lockstep-batched) and what
//! costs they charge.

use cdrw_graph::{Graph, VertexId};
use cdrw_walk::evidence::retain_reachable;
use cdrw_walk::LocalMixingOutcome;

/// One walk's final answer: its member set, the mixing margin of that set,
/// and — when tracking was requested — the last community-scale mixing set
/// the walk passed through (the evidence a globally-mixed walk votes with).
pub type WalkAnswer = (Vec<VertexId>, f64, Option<(Vec<VertexId>, f64)>);

/// Per-walk growth-rule state: the last two mixing sets with their margins,
/// the bounded community-scale fallback, and the stop parameters.
///
/// Feed every step's sweep outcome to [`GrowthTracker::observe`]; once it
/// reports the stop (or the walk-length cap is reached), call
/// [`GrowthTracker::conclude`] for the walk's final member set, margin and
/// bounded vote fallback. Members are cleaned of sweep-padded isolates
/// ([`retain_reachable`]) and always contain the seed.
#[derive(Debug, Clone)]
pub struct GrowthTracker {
    /// Smallest previous-set size at which the growth rule applies.
    stop_floor: usize,
    /// The growth threshold `δ`.
    delta: f64,
    /// When set, track the last mixing set of at most this many vertices seen
    /// at any step (the evidence a globally-mixed walk votes with).
    bounded_cap: Option<usize>,
    previous: Option<(Vec<VertexId>, f64)>,
    current: Option<(Vec<VertexId>, f64)>,
    bounded: Option<(Vec<VertexId>, f64)>,
    /// Whether the growth rule has fired (freezes the tracker).
    fired: bool,
}

impl GrowthTracker {
    /// A fresh tracker: the growth rule applies once the previous set reaches
    /// `stop_floor`; `bounded_cap` enables community-scale fallback tracking
    /// (pass the driver's `n / 2` vote cap for follow-up and re-seed walks,
    /// `None` for base walks).
    pub fn new(stop_floor: usize, delta: f64, bounded_cap: Option<usize>) -> Self {
        GrowthTracker {
            stop_floor,
            delta,
            bounded_cap,
            previous: None,
            current: None,
            bounded: None,
            fired: false,
        }
    }

    /// Whether the growth rule has fired; a fired tracker ignores further
    /// observations.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Feeds one step's sweep outcome (its found set, if any, plus the
    /// winning margin); returns `true` when the growth rule fires at this
    /// step — the walk should stop and [`GrowthTracker::conclude`].
    pub fn observe(
        &mut self,
        graph: &Graph,
        seed: VertexId,
        set: Option<Vec<VertexId>>,
        margin: f64,
    ) -> bool {
        if self.fired {
            return true;
        }
        let Some(set) = set else {
            // No mixing set at this step: keep walking. The sweep starts
            // producing sets once the walk has spread over at least `R`
            // vertices.
            return false;
        };
        if let Some(cap) = self.bounded_cap {
            if set.len() <= cap {
                // The stored vote set is cleaned of isolates (the sweep's
                // score-based selection pads sets with zero-degree vertices,
                // which the walk can never reach), so every recorded vote is
                // clean at the source.
                let mut clean = set.clone();
                retain_reachable(graph, seed, &mut clean);
                self.bounded = Some((clean, margin));
            }
        }
        self.previous = self.current.take();
        self.current = Some((set, margin));
        if let (Some((prev, _)), Some((cur, _))) = (&self.previous, &self.current) {
            // Stopping rule (Algorithm 1, line 18): the mixing set stopped
            // growing by more than a (1 + δ) factor, so the previous set is
            // the community. Tiny sets near the minimum candidate size are
            // excluded (see `CdrwConfig::min_stop_size_factor`).
            if prev.len() >= self.stop_floor
                && (cur.len() as f64) < (1.0 + self.delta) * prev.len() as f64
            {
                self.fired = true;
                return true;
            }
        }
        false
    }

    /// Concludes the walk: the previous set when the growth rule fired, else
    /// the latest set seen, else the seed alone — cleaned of isolates and
    /// with the seed guaranteed present (sorted) — plus the margin and the
    /// bounded community-scale fallback.
    pub fn conclude(self, graph: &Graph, seed: VertexId) -> WalkAnswer {
        let (mut members, margin) = if self.fired {
            self.previous
                .expect("growth rule fired, so a previous set exists")
        } else {
            // Walk-length cap reached: report the best set seen (the latest
            // one), falling back to the seed alone if the walk never mixed
            // anywhere.
            self.current
                .or(self.previous)
                .unwrap_or_else(|| (vec![seed], 0.0))
        };
        retain_reachable(graph, seed, &mut members);
        if members.binary_search(&seed).is_err() {
            members.push(seed);
            members.sort_unstable();
        }
        (members, margin, self.bounded)
    }

    /// Convenience wrapper for the sweep outcome shape the drivers hold.
    pub fn observe_outcome(
        &mut self,
        graph: &Graph,
        seed: VertexId,
        outcome: LocalMixingOutcome,
        threshold: f64,
    ) -> bool {
        let margin = outcome.winning_margin(threshold);
        self.observe(graph, seed, outcome.set, margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrw_graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn fires_when_growth_stalls_past_the_floor() {
        let g = path(12);
        let mut tracker = GrowthTracker::new(3, 0.1, None);
        assert!(!tracker.observe(&g, 0, None, 0.0));
        assert!(!tracker.observe(&g, 0, Some(vec![0, 1, 2]), 0.05));
        // 3 → 6 grows by 2×: no stop.
        assert!(!tracker.observe(&g, 0, Some(vec![0, 1, 2, 3, 4, 5]), 0.04));
        // 6 → 6 is below (1 + δ): stop, previous set is the community.
        assert!(tracker.observe(&g, 0, Some(vec![0, 1, 2, 3, 4, 6]), 0.03));
        assert!(tracker.fired());
        let (members, margin, bounded) = tracker.conclude(&g, 0);
        assert_eq!(members, vec![0, 1, 2, 3, 4, 5]);
        assert!((margin - 0.04).abs() < 1e-15);
        assert!(bounded.is_none());
    }

    #[test]
    fn below_the_floor_the_rule_never_fires() {
        let g = path(8);
        let mut tracker = GrowthTracker::new(4, 0.1, None);
        assert!(!tracker.observe(&g, 0, Some(vec![0, 1]), 0.1));
        assert!(!tracker.observe(&g, 0, Some(vec![0, 1]), 0.1));
        assert!(!tracker.fired());
        let (members, _, _) = tracker.conclude(&g, 0);
        assert_eq!(members, vec![0, 1]);
    }

    #[test]
    fn conclude_without_any_set_is_the_seed_alone() {
        let g = path(4);
        let tracker = GrowthTracker::new(2, 0.1, None);
        let (members, margin, bounded) = tracker.conclude(&g, 2);
        assert_eq!(members, vec![2]);
        assert_eq!(margin, 0.0);
        assert!(bounded.is_none());
    }

    #[test]
    fn bounded_cap_tracks_the_last_community_scale_set() {
        let g = path(10);
        let mut tracker = GrowthTracker::new(100, 0.1, Some(4));
        tracker.observe(&g, 0, Some(vec![0, 1, 2]), 0.2);
        tracker.observe(&g, 0, Some(vec![0, 1, 2, 3]), 0.15);
        // Above the cap: the bounded fallback keeps the last small set.
        tracker.observe(&g, 0, Some((0..8).collect()), 0.1);
        let (members, _, bounded) = tracker.conclude(&g, 0);
        assert_eq!(members.len(), 8);
        assert_eq!(bounded, Some((vec![0, 1, 2, 3], 0.15)));
    }

    #[test]
    fn seed_is_inserted_and_isolates_are_stripped() {
        // Vertex 3 is isolated; a sweep-padded set containing it must be
        // cleaned, and the seed joins even when the set missed it.
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        let mut tracker = GrowthTracker::new(1, 0.5, None);
        tracker.observe(&g, 0, Some(vec![1, 2, 3]), 0.1);
        let (members, _, _) = tracker.conclude(&g, 0);
        assert_eq!(members, vec![0, 1, 2]);
    }
}
