//! # cdrw-core
//!
//! CDRW — *Community Detection by Random Walks* — the primary contribution of
//! *Efficient Distributed Community Detection in the Stochastic Block Model*
//! (Fathi, Molla, Pandurangan, ICDCS 2019), as a clean sequential library.
//!
//! The algorithm (Algorithm 1 of the paper) detects the community containing
//! a seed node `s` by evolving the probability distribution of a random walk
//! started at `s`, computing the largest *local mixing set* after every step,
//! and stopping as soon as the mixing-set size stops growing by more than a
//! factor `1 + δ` (with `δ = Φ_G`, the graph conductance). Detecting all
//! communities repeats this from fresh seeds drawn from the pool of vertices
//! not yet assigned to any community.
//!
//! This crate contains the algorithm itself; the distributed round/message
//! accounting lives in `cdrw-congest` (CONGEST model) and `cdrw-kmachine`
//! (k-machine model), both of which re-use the building blocks exposed here.
//!
//! # Quickstart
//!
//! ```
//! use cdrw_core::{Cdrw, CdrwConfig};
//! use cdrw_gen::{generate_ppm, PpmParams};
//! use cdrw_metrics::f_score;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = PpmParams::new(512, 4, 0.25, 0.002)?;
//! let (graph, truth) = generate_ppm(&params, 11)?;
//!
//! let config = CdrwConfig::builder().seed(1).build();
//! let result = Cdrw::new(config).detect_all(&graph)?;
//!
//! let report = f_score(result.partition(), &truth);
//! assert!(report.f_score > 0.8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
pub mod assembly;
mod config;
mod error;
pub mod growth;
mod parallel;
mod result;
pub mod service;

pub use algorithm::{shuffled_seed_pool, Cdrw};
pub use assembly::AssemblyReport;
pub use config::{AssemblyPolicy, CdrwConfig, CdrwConfigBuilder, DeltaPolicy, EnsemblePolicy};
pub use error::CdrwError;
pub use growth::GrowthTracker;
pub use result::{
    CommunityDetection, DetectionResult, DetectionTrace, EnsembleTrace, EnsembleWalkTrace,
    StepTrace,
};
pub use service::{CdrwService, RefreshKind, RefreshReport, ServiceStats};

// The mixing criterion travels inside `CdrwConfig`; re-export it so callers
// don't need a direct `cdrw_walk` dependency to select one.
pub use cdrw_walk::MixingCriterion;
