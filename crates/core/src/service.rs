//! Streaming service layer: a long-lived detector over a changing graph.
//!
//! [`CdrwService`] owns a [`DeltaGraph`] (committed CSR plus pending edge
//! churn), the last [`DetectionResult`], and the evidence-pool claims that
//! produced it. Queries ([`CdrwService::community_of`],
//! [`CdrwService::partition`]) answer from the cached assembly without any
//! walk work; [`CdrwService::refresh`] folds pending churn into the CSR and
//! re-detects **incrementally**:
//!
//! 1. Every commit reports its dirty vertices — the endpoints of edges that
//!    were added, removed or re-weighted. A cached detection is structurally
//!    affected by the churn iff its member set intersects the accumulated
//!    dirty set: the cut, volume and internal topology of a vertex set
//!    depend only on edges with an endpoint inside the set, so detections
//!    disjoint from the dirty set are bit-for-bit unaffected. An optional
//!    staleness tolerance `ε` ([`CdrwService::set_staleness_tolerance`])
//!    additionally keeps detections whose dirty members carry at most an
//!    `ε`-fraction of the set's volume — real member sets drag along a thin
//!    tail of boundary vertices from neighbouring communities, and without a
//!    tolerance those strays make *every* detection stale under localized
//!    churn.
//! 2. Stale detections are retired together with their pooled claims
//!    ([`WalkEvidence::retire_groups`]); surviving detections keep their
//!    refined member sets and their claims are re-pooled under their new
//!    indices — no walk is re-run for them.
//! 3. The uncovered region (vertices of no surviving detection) is re-seeded
//!    through the same shuffled seed pool as the one-shot driver, and the
//!    global assembly runs with the survivors *frozen*
//!    ([`crate::assembly::assemble_run_incremental`]): frozen groups skip
//!    re-seed walks and pruning, fresh detections are reconciled against
//!    them, and the result is a new total partition. The staleness
//!    tolerance `ε` doubles as the assembly's freeze tolerance: a settled
//!    group approached by an ε-negligible fresh fragment keeps its cached
//!    consensus instead of re-running its (expensive) re-seed walks.
//!
//! [`CdrwService::refresh_full`] is the reference path: it re-runs the
//! complete one-shot pipeline ([`Cdrw::detect_all`] internally) on the
//! committed graph. A refresh on a service that has never detected before
//! takes the full path too, so a *single-commit* service refresh is
//! bit-identical to [`Cdrw::detect_all`] on the same graph — the one-shot
//! API is exactly the degenerate case of the service (property-pinned in
//! this module's tests).
//!
//! The growth threshold `δ` is resolved on every full refresh and **reused**
//! by incremental refreshes: under the bounded churn the incremental path is
//! designed for (about 1% of edges), a sweep- or conductance-derived
//! threshold drifts negligibly, and re-estimating it would rewalk the whole
//! graph — defeating the point of the incremental path. Call
//! [`CdrwService::refresh_full`] to re-anchor `δ` after heavy churn.
//!
//! ## Degrading gracefully
//!
//! A refresh that fails — a poisoned commit, an invalid configuration, a
//! detection error — never poisons the cache: the previous partition stays
//! installed and every query keeps answering from it, with
//! [`ServiceStats::degraded`] raised so operators can tell stale-but-served
//! from up-to-date. Repeated failures back off: after the `f`-th consecutive
//! failure the next `2^(f-1)` (capped at 8) [`CdrwService::refresh`] calls
//! decline to re-attempt and return [`RefreshKind::Degraded`] immediately —
//! a hot query loop keeps being served from the cache instead of paying a
//! doomed detection per call. [`CdrwService::refresh_full`] bypasses the
//! backoff (the operator's explicit retry), and any successful refresh —
//! including a clean no-op — clears the flag and the failure streak.
//! [`CdrwService::discard_pending`] drops a poisoned journal so the next
//! attempt can succeed.

use cdrw_graph::{CommitReport, DeltaGraph, Graph, GraphError, Partition, VertexId};
use cdrw_walk::evidence::{PooledClaim, WalkEvidence};
use cdrw_walk::WalkBatch;

use crate::algorithm::shuffled_seed_pool;
use crate::result::{CommunityDetection, DetectionResult};
use crate::{AssemblyPolicy, Cdrw, CdrwError};

/// How a [`CdrwService::refresh`] satisfied its contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// The complete one-shot pipeline ran on the committed graph (first
    /// refresh, explicit [`CdrwService::refresh_full`], or an incremental
    /// refresh that found every cached detection stale).
    Full,
    /// Cached detections disjoint from the dirty set were kept (members,
    /// claims and all); only the dirty region was re-walked.
    Incremental,
    /// Nothing was pending and nothing was dirty: the cached result is
    /// current and no walk ran.
    Clean,
    /// A previous refresh failed and the failure backoff declined to
    /// re-attempt: the (stale) cached partition keeps being served. See the
    /// [module docs](self) on degrading gracefully.
    Degraded,
}

/// What one [`CdrwService::refresh`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshReport {
    /// Which path the refresh took.
    pub kind: RefreshKind,
    /// Dirty vertices accumulated since the previous refresh (endpoints of
    /// changed edges over all commits in between).
    pub dirty_vertices: usize,
    /// Cached detections invalidated because their members intersected the
    /// dirty set (0 on the full path).
    pub retired: usize,
    /// Cached detections carried over without re-walking (0 on the full
    /// path).
    pub surviving: usize,
    /// Detections produced by new walks this refresh.
    pub fresh: usize,
    /// Evidence groups that ran cross-detection re-seed walks during
    /// assembly — on the incremental path only groups containing fresh
    /// evidence, never frozen survivors.
    pub reseeded_groups: usize,
}

/// Cache and churn counters of a [`CdrwService`], for monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Vertices of the committed graph.
    pub num_vertices: usize,
    /// Edges of the committed graph.
    pub num_edges: usize,
    /// Edge operations buffered but not yet committed.
    pub pending_ops: usize,
    /// Dirty vertices accumulated by commits since the last refresh.
    pub dirty_vertices: usize,
    /// Whether queries are answered from a partition that predates committed
    /// or pending churn (`true` until the next refresh), or no detection has
    /// run yet.
    pub stale: bool,
    /// Whether the last refresh attempt failed and queries are being served
    /// from the previous (possibly stale) partition. Cleared by the next
    /// successful refresh.
    pub degraded: bool,
    /// Refresh attempts that have failed since the last success; drives the
    /// failure backoff (see the [module docs](self)).
    pub consecutive_failures: u32,
    /// Detections in the cached result (`None` before the first refresh).
    pub detections: Option<usize>,
    /// Total refreshes served, including clean no-ops.
    pub refreshes: usize,
    /// Refreshes that took the full path.
    pub full_refreshes: usize,
    /// Refreshes that took the incremental path.
    pub incremental_refreshes: usize,
}

struct CachedDetection {
    result: DetectionResult,
    /// The drained evidence pool behind `result` (empty under
    /// [`AssemblyPolicy::Raw`]), in flush order, indexed by detection.
    claims: Vec<PooledClaim>,
    /// The growth threshold the result was detected with; reused by
    /// incremental refreshes (see the module docs).
    delta: f64,
}

/// A long-lived community-detection service over a changing graph.
///
/// See the [module documentation](self) for the refresh semantics.
///
/// # Examples
///
/// ```
/// use cdrw_core::{Cdrw, CdrwConfig, CdrwService};
/// use cdrw_gen::{generate_ppm, PpmParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (graph, _) = generate_ppm(&PpmParams::new(256, 2, 0.25, 0.002)?, 17)?;
/// let cdrw = Cdrw::new(CdrwConfig::builder().seed(4).delta(0.05).build());
///
/// let mut service = CdrwService::new(cdrw, graph);
/// service.refresh()?; // first refresh: full detection
/// let home = service.community_of(0).expect("partition is total");
///
/// // Stream some churn, then bring the partition up to date.
/// service.remove_edge(0, 1)?;
/// service.add_edge(0, 2)?;
/// let report = service.refresh()?;
/// assert!(report.retired + report.surviving > 0);
/// assert!(service.community_of(0).is_some());
/// # let _ = home;
/// # Ok(())
/// # }
/// ```
pub struct CdrwService {
    cdrw: Cdrw,
    graph: DeltaGraph,
    cached: Option<CachedDetection>,
    /// Dirty mask accumulated over commits since the last refresh.
    dirty: Vec<bool>,
    dirty_count: usize,
    staleness_tolerance: f64,
    refreshes: usize,
    full_refreshes: usize,
    incremental_refreshes: usize,
    /// Refresh attempts failed since the last success.
    consecutive_failures: u32,
    /// `refresh()` calls left to decline before the next re-attempt.
    backoff_skips: u32,
}

impl CdrwService {
    /// Creates a service over `graph` with the given detector configuration.
    ///
    /// No detection runs until the first [`CdrwService::refresh`].
    pub fn new(cdrw: Cdrw, graph: Graph) -> Self {
        let n = graph.num_vertices();
        CdrwService {
            cdrw,
            graph: DeltaGraph::new(graph),
            cached: None,
            dirty: vec![false; n],
            dirty_count: 0,
            staleness_tolerance: 0.0,
            refreshes: 0,
            full_refreshes: 0,
            incremental_refreshes: 0,
            consecutive_failures: 0,
            backoff_skips: 0,
        }
    }

    /// The committed graph queries and detections run against.
    pub fn graph(&self) -> &Graph {
        self.graph.graph()
    }

    /// The detector configuration in use.
    pub fn detector(&self) -> &Cdrw {
        &self.cdrw
    }

    /// The staleness tolerance `ε` of the incremental refresh (0 by
    /// default — exact invalidation).
    pub fn staleness_tolerance(&self) -> f64 {
        self.staleness_tolerance
    }

    /// Sets the staleness tolerance `ε` of the incremental refresh.
    ///
    /// With `ε = 0` (the default) a cached detection is retired as soon as a
    /// single member is dirty — exact, but pessimistic on real detections,
    /// whose member sets carry a thin tail of boundary vertices from
    /// neighbouring communities: localized churn then touches *every*
    /// detection through one or two such strays and the incremental path
    /// degenerates to a full re-detection.
    ///
    /// With `ε > 0` a detection is retired only when its dirty members carry
    /// more than an `ε`-fraction of the set's (weighted) volume. The cut,
    /// volume and mixing profile of the set then move by at most that
    /// fraction, so perturbations below the growth tolerance `δ` the
    /// detection was stopped with cannot meaningfully flip its acceptance —
    /// `ε` on the order of `δ` keeps the partition within the same tolerance
    /// the detector itself works at, trading bit-exactness of survivors for
    /// locality of the refresh. The same `ε` is handed to the assembly as
    /// its freeze tolerance: an evidence group whose fresh fragments stay
    /// under an `ε`-fraction of its volume keeps its settled consensus and
    /// skips its re-seed walks (see
    /// [`crate::assembly::assemble_run_incremental`]). Negative values are
    /// clamped to 0.
    pub fn set_staleness_tolerance(&mut self, epsilon: f64) {
        self.staleness_tolerance = epsilon.max(0.0);
    }

    /// Buffers an unweighted edge addition (see [`DeltaGraph::add_edge`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeltaGraph::add_edge`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.graph.add_edge(u, v)
    }

    /// Buffers a weighted edge addition (see
    /// [`DeltaGraph::add_weighted_edge`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeltaGraph::add_weighted_edge`].
    pub fn add_weighted_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: f64,
    ) -> Result<(), GraphError> {
        self.graph.add_weighted_edge(u, v, weight)
    }

    /// Buffers an edge removal (see [`DeltaGraph::remove_edge`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeltaGraph::remove_edge`].
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.graph.remove_edge(u, v)
    }

    /// Discards buffered-but-uncommitted edge operations — the escape hatch
    /// for a poisoned journal that keeps failing to commit (see the
    /// [module docs](self) on degrading gracefully).
    pub fn discard_pending(&mut self) {
        self.graph.discard_pending();
    }

    /// Folds pending operations into the committed CSR and accumulates the
    /// reported dirty vertices towards the next refresh. Queries keep
    /// answering from the cached (now stale) partition until then. Called
    /// implicitly by the refresh methods; call it directly to batch several
    /// commits between refreshes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeltaGraph::commit`].
    pub fn commit(&mut self) -> Result<CommitReport, GraphError> {
        let report = self.graph.commit()?;
        for &v in &report.dirty {
            if !self.dirty[v] {
                self.dirty[v] = true;
                self.dirty_count += 1;
            }
        }
        Ok(report)
    }

    /// The community label of `v` in the cached partition, or `None` before
    /// the first refresh (or for an out-of-range vertex). Answers from the
    /// cache — no walk work; the label may be stale if churn was committed
    /// or buffered since the last refresh (see [`ServiceStats::stale`]).
    pub fn community_of(&self, v: VertexId) -> Option<usize> {
        self.cached.as_ref()?.result.partition().community_of(v)
    }

    /// The cached total partition, or `None` before the first refresh.
    pub fn partition(&self) -> Option<&Partition> {
        self.cached.as_ref().map(|c| c.result.partition())
    }

    /// The cached detection result, or `None` before the first refresh.
    pub fn result(&self) -> Option<&DetectionResult> {
        self.cached.as_ref().map(|c| &c.result)
    }

    /// Cache and churn counters, including the staleness of the answers
    /// [`CdrwService::community_of`] currently serves.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            num_vertices: self.graph.num_vertices(),
            num_edges: self.graph.graph().num_edges(),
            pending_ops: self.graph.pending_ops(),
            dirty_vertices: self.dirty_count,
            stale: self.cached.is_none() || self.dirty_count > 0 || self.graph.pending_ops() > 0,
            degraded: self.consecutive_failures > 0,
            consecutive_failures: self.consecutive_failures,
            detections: self.cached.as_ref().map(|c| c.result.num_communities()),
            refreshes: self.refreshes,
            full_refreshes: self.full_refreshes,
            incremental_refreshes: self.incremental_refreshes,
        }
    }

    /// Commits pending churn and brings the cached partition up to date,
    /// preferring the incremental path: detections whose members are
    /// disjoint from the accumulated dirty set are carried over without any
    /// walk work, only the dirty region is re-walked, and the assembly runs
    /// with the survivors frozen. Falls back to the full path on the first
    /// refresh; returns immediately when nothing changed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeltaGraph::commit`] and [`Cdrw::detect_all`].
    /// A failure leaves the previous partition installed and servable
    /// ([`ServiceStats::degraded`] is raised), and arms the failure backoff:
    /// follow-up calls may decline to re-attempt and return
    /// [`RefreshKind::Degraded`] instead (see the [module docs](self)).
    pub fn refresh(&mut self) -> Result<RefreshReport, CdrwError> {
        if self.backoff_skips > 0 && self.cached.is_some() {
            self.backoff_skips -= 1;
            self.refreshes += 1;
            return Ok(RefreshReport {
                kind: RefreshKind::Degraded,
                dirty_vertices: self.dirty_count,
                retired: 0,
                surviving: self
                    .cached
                    .as_ref()
                    .map_or(0, |c| c.result.num_communities()),
                fresh: 0,
                reseeded_groups: 0,
            });
        }
        let outcome = self.try_refresh();
        self.settle(outcome)
    }

    fn try_refresh(&mut self) -> Result<RefreshReport, CdrwError> {
        self.commit()?;
        if self.cached.is_none() {
            return self.run_full();
        }
        if self.dirty_count == 0 {
            self.refreshes += 1;
            return Ok(RefreshReport {
                kind: RefreshKind::Clean,
                dirty_vertices: 0,
                retired: 0,
                surviving: self
                    .cached
                    .as_ref()
                    .map_or(0, |c| c.result.num_communities()),
                fresh: 0,
                reseeded_groups: 0,
            });
        }
        self.run_incremental()
    }

    /// Books a refresh attempt's outcome into the degradation state: any
    /// success clears the failure streak, a failure extends it and arms the
    /// exponential backoff (1, 2, 4, then 8 declined calls).
    fn settle(
        &mut self,
        outcome: Result<RefreshReport, CdrwError>,
    ) -> Result<RefreshReport, CdrwError> {
        match &outcome {
            Ok(_) => {
                self.consecutive_failures = 0;
                self.backoff_skips = 0;
            }
            Err(_) => {
                self.consecutive_failures += 1;
                self.backoff_skips = 1u32 << (self.consecutive_failures - 1).min(3);
            }
        }
        outcome
    }

    /// Commits pending churn and re-runs the complete one-shot detection
    /// pipeline on the committed graph — the reference path the incremental
    /// refresh is measured against. Also re-resolves the growth threshold
    /// `δ`. Bypasses the failure backoff: this is the operator's explicit
    /// retry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeltaGraph::commit`] and [`Cdrw::detect_all`].
    pub fn refresh_full(&mut self) -> Result<RefreshReport, CdrwError> {
        let outcome = match self.commit() {
            Ok(_) => self.run_full(),
            Err(e) => Err(e.into()),
        };
        self.settle(outcome)
    }

    fn run_full(&mut self) -> Result<RefreshReport, CdrwError> {
        let graph = self.graph.graph();
        let delta = self.cdrw.config().resolve_delta(graph)?;
        let (result, claims) = self.cdrw.run_detect_all(graph)?;
        let report = RefreshReport {
            kind: RefreshKind::Full,
            dirty_vertices: self.dirty_count,
            retired: 0,
            surviving: 0,
            fresh: result.num_communities(),
            reseeded_groups: result.assembly().map_or(0, |a| a.reseeded_groups),
        };
        self.install(result, claims, delta);
        self.full_refreshes += 1;
        Ok(report)
    }

    fn run_incremental(&mut self) -> Result<RefreshReport, CdrwError> {
        // Borrow — never remove — the cached result: every fallible step
        // below must leave it installed and servable on the error path.
        let cached = self
            .cached
            .as_ref()
            .expect("incremental refresh requires a cached result");
        let graph = self.graph.graph();
        self.cdrw.check_graph(graph)?;
        self.cdrw.config().validate()?;
        let n = graph.num_vertices();
        let delta = cached.delta;
        let config = self.cdrw.config();
        let pooling = config.assembly.is_pooled();

        // 1. Split the cached detections on the dirty set. With a zero
        // tolerance a detection is stale iff it contains an endpoint of a
        // changed edge; with `ε > 0` it is stale iff its dirty members carry
        // more than an ε-fraction of its volume (see
        // [`CdrwService::set_staleness_tolerance`]). Everything else is
        // structurally untouched (or ε-perturbed at most) by the churn.
        let epsilon = self.staleness_tolerance;
        let old = cached.result.detections();
        let mut remap: Vec<u32> = vec![u32::MAX; old.len()];
        let mut stale: Vec<u32> = Vec::new();
        let mut detections: Vec<CommunityDetection> = Vec::new();
        for (index, detection) in old.iter().enumerate() {
            let mut volume = 0.0;
            let mut dirty_volume = 0.0;
            let mut dirty_members = 0usize;
            for &v in &detection.members {
                let degree = graph.weighted_degree(v);
                volume += degree;
                if self.dirty[v] {
                    dirty_volume += degree;
                    dirty_members += 1;
                }
            }
            let is_stale = if epsilon <= 0.0 {
                dirty_members > 0
            } else {
                // A zero-volume (fully disconnected) dirty set is always
                // stale: the churn is what disconnected it.
                dirty_members > 0 && (volume <= 0.0 || dirty_volume > epsilon * volume)
            };
            if is_stale {
                stale.push(index as u32);
            } else {
                remap[index] = detections.len() as u32;
                detections.push(detection.clone());
            }
        }
        let surviving = detections.len();
        let retired = stale.len();

        // 2. Re-pool the survivors' claims under their new indices; the
        // retired groups' claims die with them. No walk has run yet.
        let mut evidence =
            WalkEvidence::for_graph_if(config.ensemble.is_ensemble() || pooling, graph);
        if pooling {
            evidence.extend_pool(&cached.claims);
            evidence.retire_groups(&stale);
            let remapped: Vec<PooledClaim> = evidence
                .take_pool()
                .into_iter()
                .map(|mut claim| {
                    claim.detection = remap[claim.detection as usize];
                    claim
                })
                .collect();
            evidence.extend_pool(&remapped);
        }

        // 3. Re-walk the uncovered region through the same shuffled seed
        // pool as the one-shot driver, skipping vertices a survivor covers.
        // Coverage is ownership by the cached *partition*, not bare set
        // membership: affinity pruning and absorption leave a thin rim of
        // every community outside its detection's member set, and walking
        // those rim vertices would re-detect (and re-open) fully intact
        // communities. A vertex whose cached community survived — identified
        // by the communities of the surviving detections' seeds — is served
        // by the carried-over assembly and needs no walk.
        let mut covered = vec![false; n];
        for detection in &detections {
            for &v in &detection.members {
                covered[v] = true;
            }
        }
        {
            let partition = cached.result.partition();
            let mut surviving_communities = vec![false; partition.num_communities()];
            for detection in &detections[..surviving] {
                if let Some(c) = partition.community_of(detection.seed) {
                    surviving_communities[c] = true;
                }
            }
            for (v, slot) in covered.iter_mut().enumerate() {
                if !*slot {
                    if let Some(c) = partition.community_of(v) {
                        *slot = surviving_communities[c];
                    }
                }
            }
        }
        let engine = self.cdrw.engine(graph);
        let mut workspace = engine.workspace();
        let mut batch = WalkBatch::for_graph(graph);
        for &seed in &shuffled_seed_pool(n, config.seed) {
            if covered[seed] {
                continue;
            }
            let detection = self.cdrw.detect_community_in(
                &engine,
                &mut workspace,
                &mut batch,
                &mut evidence,
                seed,
                delta,
                pooling,
            )?;
            if pooling {
                evidence.pool_epoch(detections.len() as u32);
            }
            for &v in &detection.members {
                covered[v] = true;
            }
            covered[seed] = true;
            detections.push(detection);
        }
        let fresh = detections.len() - surviving;

        // 4. Reconcile: survivors enter the assembly frozen — their refined
        // sets and claims stand, no re-seed walks, no pruning — while fresh
        // detections are assembled exactly as in the full run.
        let (result, claims) = if let AssemblyPolicy::Pooled { reseed, quorum } = config.assembly {
            let mut frozen = vec![true; surviving];
            frozen.resize(detections.len(), false);
            self.cdrw.assemble_detections(
                &engine,
                &mut batch,
                &mut evidence,
                detections,
                &frozen,
                epsilon,
                delta,
                reseed,
                quorum,
            )?
        } else {
            (DetectionResult::new(n, detections, delta), Vec::new())
        };
        let report = RefreshReport {
            kind: RefreshKind::Incremental,
            dirty_vertices: self.dirty_count,
            retired,
            surviving,
            fresh,
            reseeded_groups: result.assembly().map_or(0, |a| a.reseeded_groups),
        };
        self.install(result, claims, delta);
        self.incremental_refreshes += 1;
        Ok(report)
    }

    fn install(&mut self, result: DetectionResult, claims: Vec<PooledClaim>, delta: f64) {
        self.cached = Some(CachedDetection {
            result,
            claims,
            delta,
        });
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.dirty_count = 0;
        self.refreshes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdrwConfig;
    use cdrw_gen::{generate_ppm, PpmParams};

    fn ppm(n: usize, blocks: usize, seed: u64) -> Graph {
        let params = PpmParams::new(n, blocks, 0.25, 0.01).unwrap();
        generate_ppm(&params, seed).unwrap().0
    }

    fn pooled_cdrw(seed: u64) -> Cdrw {
        Cdrw::new(
            CdrwConfig::builder()
                .seed(seed)
                .delta(0.05)
                .assembly_policy(AssemblyPolicy::Pooled {
                    reseed: 4,
                    quorum: 2,
                })
                .build(),
        )
    }

    #[test]
    fn first_refresh_matches_detect_all_bit_for_bit() {
        let graph = ppm(512, 4, 11);
        let cdrw = pooled_cdrw(7);
        let reference = cdrw.detect_all(&graph).unwrap();

        let mut service = CdrwService::new(cdrw, graph);
        let report = service.refresh().unwrap();
        assert_eq!(report.kind, RefreshKind::Full);
        assert_eq!(service.result(), Some(&reference));
    }

    #[test]
    fn single_commit_service_matches_detect_all_bit_for_bit() {
        // Build the edge stream through the service, commit once, refresh:
        // the result must equal detect_all on the directly committed graph.
        let graph = ppm(512, 4, 23);
        let cdrw = pooled_cdrw(5);

        let mut service = CdrwService::new(cdrw.clone(), graph.clone());
        service.remove_edge(0, 1).unwrap();
        service.add_edge(0, 2).unwrap();
        service.refresh().unwrap();

        let mut delta = DeltaGraph::new(graph);
        delta.remove_edge(0, 1).unwrap();
        delta.add_edge(0, 2).unwrap();
        delta.commit().unwrap();
        let reference = cdrw.detect_all(delta.graph()).unwrap();
        assert_eq!(service.result(), Some(&reference));
    }

    #[test]
    fn clean_refresh_is_a_no_op() {
        let graph = ppm(256, 2, 3);
        let mut service = CdrwService::new(pooled_cdrw(9), graph);
        service.refresh().unwrap();
        let before = service.result().cloned();
        let report = service.refresh().unwrap();
        assert_eq!(report.kind, RefreshKind::Clean);
        assert_eq!(service.result().cloned(), before);
    }

    #[test]
    fn incremental_refresh_keeps_untouched_detections() {
        let graph = ppm(1024, 4, 41);
        let mut service = CdrwService::new(pooled_cdrw(13), graph);
        service.refresh().unwrap();
        let before = service.result().unwrap().clone();

        // Churn inside the community of vertex 0 only: drop one real
        // in-community edge.
        let home: Vec<VertexId> = before
            .detections()
            .iter()
            .find(|d| d.contains(0))
            .unwrap()
            .members
            .clone();
        let (u, v) = home
            .iter()
            .flat_map(|&u| home.iter().map(move |&v| (u, v)))
            .find(|&(u, v)| u < v && service.graph().has_edge(u, v))
            .expect("a detected community contains at least one internal edge");
        service.remove_edge(u, v).unwrap();
        let report = service.refresh().unwrap();
        assert_eq!(report.kind, RefreshKind::Incremental);
        assert!(report.retired >= 1, "the churned community must retire");
        assert!(
            report.surviving >= 1,
            "communities away from the churn must survive"
        );

        // Survivors are carried over member-for-member.
        let after = service.result().unwrap();
        for old in before.detections() {
            if old.members.iter().all(|&v| !home.contains(&v)) {
                assert!(
                    after
                        .detections()
                        .iter()
                        .any(|new| new.members == old.members),
                    "untouched detection (seed {}) must survive unchanged",
                    old.seed
                );
            }
        }
        let stats = service.stats();
        assert_eq!(stats.incremental_refreshes, 1);
        assert!(!stats.stale);
    }

    #[test]
    fn staleness_tolerance_keeps_epsilon_perturbed_detections() {
        // Same churn as `incremental_refresh_keeps_untouched_detections`,
        // but with ε = 5%: one removed edge perturbs well under 5% of the
        // home community's volume, so *nothing* retires and no walk runs.
        let graph = ppm(1024, 4, 41);
        let mut service = CdrwService::new(pooled_cdrw(13), graph);
        service.set_staleness_tolerance(0.05);
        assert_eq!(service.staleness_tolerance(), 0.05);
        service.refresh().unwrap();
        let communities = service.result().unwrap().num_communities();

        let home: Vec<VertexId> = service
            .result()
            .unwrap()
            .detections()
            .iter()
            .find(|d| d.contains(0))
            .unwrap()
            .members
            .clone();
        let (u, v) = home
            .iter()
            .flat_map(|&u| home.iter().map(move |&v| (u, v)))
            .find(|&(u, v)| u < v && service.graph().has_edge(u, v))
            .expect("a detected community contains at least one internal edge");
        service.remove_edge(u, v).unwrap();
        let report = service.refresh().unwrap();
        assert_eq!(report.kind, RefreshKind::Incremental);
        assert_eq!(
            report.retired, 0,
            "one edge is an ε-negligible perturbation"
        );
        assert_eq!(report.surviving, communities);
        assert_eq!(report.fresh, 0);
        assert_eq!(service.partition().unwrap().num_vertices(), 1024);
        assert!(!service.stats().stale);
    }

    #[test]
    fn incremental_refresh_under_raw_policy() {
        let graph = ppm(512, 4, 19);
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(3)
                .delta(0.05)
                .assembly_policy(AssemblyPolicy::Raw)
                .build(),
        );
        let mut service = CdrwService::new(cdrw, graph);
        service.refresh().unwrap();
        service.remove_edge(0, 2).unwrap();
        service.add_edge(1, 3).unwrap();
        let report = service.refresh().unwrap();
        assert_eq!(report.kind, RefreshKind::Incremental);
        let partition = service.partition().unwrap();
        assert_eq!(partition.num_vertices(), 512);
    }

    proptest::proptest! {
        /// The one-shot pin: on arbitrary graphs under arbitrary buffered
        /// churn, a single-commit service refresh is bit-identical to
        /// `Cdrw::detect_all` on the directly committed graph, and
        /// `detect_parallel` sees the exact same CSR through the service as
        /// through a from-scratch build. Both assembly policies are covered.
        #[test]
        fn single_commit_refresh_is_pinned_to_the_one_shot_api(
            edges in proptest::collection::vec((0usize..16, 0usize..16), 8..60),
            ops in proptest::collection::vec((0usize..2, (0usize..16, 0usize..16)), 0..12),
            seed in 0u64..128,
            pooled in proptest::arbitrary::any::<bool>(),
        ) {
            use proptest::{prop_assert_eq, prop_assume};

            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let graph = cdrw_graph::GraphBuilder::from_edges(16, clean).unwrap();
            let assembly = if pooled {
                AssemblyPolicy::Pooled { reseed: 3, quorum: 2 }
            } else {
                AssemblyPolicy::Raw
            };
            let cdrw = Cdrw::new(
                CdrwConfig::builder().seed(seed).delta(0.2).assembly_policy(assembly).build(),
            );

            let mut service = CdrwService::new(cdrw.clone(), graph.clone());
            let mut reference = DeltaGraph::new(graph);
            for &(kind, (u, v)) in &ops {
                if u == v {
                    continue;
                }
                if kind == 0 {
                    service.add_edge(u, v).unwrap();
                    reference.add_edge(u, v).unwrap();
                } else {
                    service.remove_edge(u, v).unwrap();
                    reference.remove_edge(u, v).unwrap();
                }
            }
            reference.commit().unwrap();
            prop_assume!(reference.graph().num_edges() > 0);

            service.refresh().unwrap();
            let expected = cdrw.detect_all(reference.graph()).unwrap();
            prop_assert_eq!(service.result(), Some(&expected));

            let via_service = cdrw.detect_parallel_with_workers(service.graph(), 3, 2).unwrap();
            let direct = cdrw.detect_parallel_with_workers(reference.graph(), 3, 2).unwrap();
            prop_assert_eq!(via_service, direct);
        }
    }

    /// A weighted PPM-like graph: the weight lane must be engaged for
    /// `add_weighted_edge` (and its poisoned-commit failure mode) to apply.
    fn weighted_graph() -> Graph {
        let base = ppm(256, 2, 29);
        let mut builder = cdrw_graph::GraphBuilder::new(base.num_vertices());
        for (u, v) in base.edges() {
            builder.add_weighted_edge(u, v, 1.0).unwrap();
        }
        builder.build()
    }

    #[test]
    fn failed_refresh_serves_the_previous_partition_degraded() {
        let mut service = CdrwService::new(pooled_cdrw(3), weighted_graph());
        service.refresh().unwrap();
        let before = service.result().unwrap().clone();
        assert!(!service.stats().degraded);

        // Poison the journal: stacking two f64::MAX weights folds to +inf in
        // the pending buffer, which the commit-time builder rejects.
        service.add_weighted_edge(0, 1, f64::MAX).unwrap();
        service.add_weighted_edge(0, 1, f64::MAX).unwrap();
        let err = service.refresh().unwrap_err();
        assert!(matches!(err, CdrwError::Graph(_)), "got {err:?}");

        // The failure is visible, but the previous partition still serves.
        let stats = service.stats();
        assert!(stats.degraded);
        assert_eq!(stats.consecutive_failures, 1);
        assert_eq!(service.result(), Some(&before));
        assert!(service.community_of(0).is_some());

        // The journal survived the failed commit (nothing was half-applied).
        assert!(service.stats().pending_ops > 0);

        // First follow-up call is declined by the backoff — no re-attempt,
        // no error, the degraded cache answers.
        let report = service.refresh().unwrap();
        assert_eq!(report.kind, RefreshKind::Degraded);
        assert_eq!(service.result(), Some(&before));

        // The next call re-attempts, fails again, and doubles the backoff.
        assert!(service.refresh().is_err());
        assert_eq!(service.stats().consecutive_failures, 2);
        assert_eq!(service.refresh().unwrap().kind, RefreshKind::Degraded);
        assert_eq!(service.refresh().unwrap().kind, RefreshKind::Degraded);

        // Drop the poison; the explicit full refresh bypasses the backoff,
        // succeeds, and clears the degradation.
        service.discard_pending();
        let report = service.refresh_full().unwrap();
        assert_eq!(report.kind, RefreshKind::Full);
        let stats = service.stats();
        assert!(!stats.degraded);
        assert_eq!(stats.consecutive_failures, 0);
        assert!(!stats.stale);
    }

    #[test]
    fn refresh_full_failure_also_degrades_without_poisoning() {
        let mut service = CdrwService::new(pooled_cdrw(11), weighted_graph());
        service.refresh().unwrap();
        let before = service.result().unwrap().clone();

        service.add_weighted_edge(2, 3, f64::MAX).unwrap();
        service.add_weighted_edge(2, 3, f64::MAX).unwrap();
        assert!(service.refresh_full().is_err());
        assert!(service.stats().degraded);
        assert_eq!(service.result(), Some(&before));

        // refresh_full keeps re-attempting (no backoff): still failing.
        assert!(service.refresh_full().is_err());
        assert_eq!(service.stats().consecutive_failures, 2);

        // A successful *incremental* path also clears the degradation: drop
        // the poison, stream a benign weighted change, refresh.
        service.discard_pending();
        let (u, v) = {
            let g = service.graph();
            let mut found = None;
            'outer: for u in 0..g.num_vertices() {
                for v in (u + 1)..g.num_vertices() {
                    if g.has_edge(u, v) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            found.expect("graph has edges")
        };
        service.add_weighted_edge(u, v, 0.5).unwrap();
        // Burn the remaining backoff skips, then the real attempt runs.
        let mut last = service.refresh().unwrap();
        while last.kind == RefreshKind::Degraded {
            last = service.refresh().unwrap();
        }
        assert!(matches!(
            last.kind,
            RefreshKind::Incremental | RefreshKind::Full
        ));
        let stats = service.stats();
        assert!(!stats.degraded);
        assert_eq!(stats.consecutive_failures, 0);
        assert!(service.community_of(0).is_some());
    }

    #[test]
    fn queries_before_first_refresh_are_none_and_stats_track_staleness() {
        let graph = ppm(256, 2, 5);
        let mut service = CdrwService::new(pooled_cdrw(1), graph);
        assert_eq!(service.community_of(0), None);
        assert!(service.partition().is_none());
        assert!(service.stats().stale);

        service.refresh().unwrap();
        assert!(service.community_of(0).is_some());
        assert!(!service.stats().stale);

        let far = (1..256)
            .find(|&v| !service.graph().has_edge(0, v))
            .expect("vertex 0 is not adjacent to everything");
        service.add_edge(0, far).unwrap();
        assert!(service.stats().stale, "pending churn marks the cache stale");
        service.commit().unwrap();
        assert!(service.stats().stale, "dirty vertices mark the cache stale");
        service.refresh().unwrap();
        assert!(!service.stats().stale);
    }
}
