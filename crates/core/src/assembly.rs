//! Global partition assembly via cross-detection evidence pooling.
//!
//! The pool loop of Algorithm 1 emits one detection per seed. Those
//! detections are *independent*: later walks run on the full graph, so
//! detections can overlap, conflict about a vertex, or — on degenerate
//! inputs — leave vertices unassigned. The paper's headline claim is full
//! community recovery, which needs a single consistent global partition; the
//! distributed SBM literature frames exactly this step as evidence
//! aggregation across local detections (Wu, Li & Zhu 2020's pseudo-likelihood
//! aggregation; Wanye et al. 2023's exact distributed block partitioning).
//!
//! [`assemble_run`] is that layer. It consumes the cross-epoch pooled view of
//! a [`WalkEvidence`] accumulator (one [`PooledClaim`] per detection per
//! vertex its walks voted for) and proceeds in three stages:
//!
//! 1. **Evidence grouping** ([`evidence_groups`]): detections whose member
//!    sets overlap by at least [`LINK_FRACTION`] of the smaller set are
//!    linked, and the connected components of the link graph become *evidence
//!    groups* — fragments of one underlying community. Near the connectivity
//!    threshold a single detection covers only a transient plateau of its
//!    block; the pool loop then re-seeds inside the same block and produces
//!    several heavily-overlapping fragments, which is precisely the signature
//!    the grouping keys on.
//! 2. **Cross-detection re-seeding**: for every group holding at least two
//!    detections, up to `reseed` follow-up walks are started from the
//!    group's highest-pooled-margin members (strided across the margin
//!    ranking, the cross-detection analogue of
//!    [`cdrw_walk::evidence::select_interior_seeds`]) with the growth-rule
//!    floor raised past the largest fragment, so they cannot stop on any
//!    fragment's plateau. Their quorum-filtered consensus joins the group's
//!    member union. This is the ROADMAP's "ensemble seeding across multiple
//!    base detections" — the accuracy lever for the hardest sparse
//!    Figure 4a cells.
//! 3. **Reconciliation**: every vertex claimed by exactly one group keeps it;
//!    contested vertices (claimed by several groups) go to the group with
//!    the largest pooled margin (ties by vote count, then by lowest group
//!    representative); unassigned vertices are absorbed round by round into
//!    the neighbouring community holding most of their neighbours (ties to
//!    the lowest group label; rounds are synchronous, so the result is
//!    deterministic and independent of vertex iteration order). Vertices no
//!    round can absorb — isolated vertices in particular — become singleton
//!    communities, keeping the partition total.
//!
//! The walks of stage 2 are executed by the *driver* through a callback, so
//! the sequential [`crate::Cdrw`] and the CONGEST runner share every decision
//! bit for bit while the latter charges its own communication costs.

use cdrw_graph::{Graph, Partition, VertexId};
use cdrw_walk::evidence::{PooledClaim, WalkEvidence};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::CdrwError;

/// Fraction of the *smaller* member set two detections must share to be
/// linked into one evidence group by overlap alone. One half is a
/// conservative reading of "these walks explored the same region": a
/// fragment re-covered by a later, larger detection of the same block clears
/// it easily, while incidental inter-block leakage stays well below it.
pub const LINK_FRACTION: f64 = 0.5;

/// Fraction of a merged group's mean in-group degree a member must reach to
/// survive affinity pruning. Fragments of one block are wired to each other
/// at the intra-block rate, so genuine members sit near the mean; interlopers
/// that leaked in from another block connect at the far lower inter-block
/// rate and fall clearly below it. Pruned vertices are not lost — the
/// absorption stage re-assigns them to their highest-affinity neighbour
/// community.
pub const PRUNE_FRACTION: f64 = 0.75;

/// One cross-detection re-seed walk's vote: the community-scale member set
/// it votes with plus its mixing margin, or `None` when the walk abstained
/// (it mixed globally without passing a community-scale set).
pub type GroupVote = Option<(Vec<VertexId>, f64)>;

/// Statistics of one global assembly, carried by
/// [`crate::DetectionResult::assembly`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssemblyReport {
    /// Number of evidence groups (= communities of the assembled partition
    /// before singleton fallback).
    pub groups: usize,
    /// Detections that shared their group with at least one other detection.
    pub merged_detections: usize,
    /// Groups that ran cross-detection re-seed walks.
    pub reseeded_groups: usize,
    /// Total re-seed walks executed (abstaining walks included).
    pub reseed_walks: usize,
    /// Vertices claimed by more than one group, resolved by margin vote.
    pub contested: usize,
    /// Unassigned vertices absorbed into a neighbouring community.
    pub absorbed: usize,
    /// Vertices no absorption round could reach; kept as singletons.
    pub singletons: usize,
    /// Synchronous absorption rounds executed.
    pub absorption_rounds: usize,
}

/// Everything [`assemble_run`] produces for the driver.
#[derive(Debug, Clone)]
pub struct AssemblyOutcome {
    /// Refined member sets, one per input detection (every detection of a
    /// group carries the group's full consensus set).
    pub refined: Vec<Vec<VertexId>>,
    /// The assembled total partition.
    pub partition: Partition,
    /// Assembly statistics.
    pub report: AssemblyReport,
    /// Sum of degrees over the still-unassigned vertices at the start of
    /// each absorption round — the per-round message volume a CONGEST driver
    /// charges for the neighbourhood polls.
    pub absorption_volumes: Vec<u64>,
    /// The drained evidence pool — phase-1 claims followed by the re-seed
    /// walks' claims, in flush order. One-shot drivers discard this; the
    /// incremental service caches it so surviving groups' evidence can be
    /// re-pooled on the next refresh instead of re-walked.
    pub claims: Vec<PooledClaim>,
}

/// Links detections into evidence groups and returns the group
/// representative (the smallest detection index of the component) for every
/// detection. Groups are the connected components of the link relation, so
/// the result is independent of any processing order.
///
/// Two community-scale detections are linked when they share at least
/// `LINK_FRACTION · min(|members_i|, |members_j|)` vertices — one detection
/// re-covered a substantial part of the other, the signature of the pool
/// loop fragmenting a single block into several plateau-sized detections.
///
/// Detections beyond community scale (more than two thirds of the graph)
/// are kept out of the link graph entirely: a set that large overlaps
/// *every* fragment almost fully and would chain all groups into one — the
/// same reason a globally-mixed ensemble walk abstains from voting
/// (`cdrw_walk::evidence::community_scale_vote`). Two thirds rather than one
/// half because on a two-block instance a legitimate block detection is
/// `n/2` vertices plus leakage, which must stay linkable. Excluded
/// detections stay in their own singleton group.
pub fn evidence_groups(graph: &Graph, members: &[Vec<VertexId>]) -> Vec<usize> {
    let num_vertices = graph.num_vertices();
    let d = members.len();
    // Occupancy lists: which detections claim each vertex, ascending.
    let mut claimants: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
    for (index, set) in members.iter().enumerate() {
        if 3 * set.len() > 2 * num_vertices {
            continue;
        }
        for &v in set {
            if v < num_vertices {
                claimants[v].push(index as u32);
            }
        }
    }
    // Pairwise shared-vertex counts: every (vertex, claiming detection)
    // incidence is walked once, so the cost is O(Σ|members| · k) with k the
    // typical number of detections claiming a vertex — near-linear in
    // practice.
    let mut shared: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for list in &claimants {
        for (i, &a) in list.iter().enumerate() {
            for &b in &list[i + 1..] {
                *shared.entry((a, b)).or_insert(0) += 1;
            }
        }
    }

    let mut parent: Vec<usize> = (0..d).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (&(a, b), &count) in &shared {
        let smaller = members[a as usize].len().min(members[b as usize].len());
        if count > 0 && count as f64 >= LINK_FRACTION * smaller as f64 {
            let ra = find(&mut parent, a as usize);
            let rb = find(&mut parent, b as usize);
            if ra != rb {
                // Union by smaller root so the representative is always the
                // minimum index of the component.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi] = lo;
            }
        }
    }
    (0..d).map(|x| find(&mut parent, x)).collect()
}

/// Ranks `union_members` by pooled margin (descending; ties by vote count
/// descending, then vertex id ascending) and picks up to `count` distinct
/// seeds strided across the ranking — the cross-detection analogue of
/// [`cdrw_walk::evidence::select_interior_seeds`], reading confidence from
/// the pooled evidence instead of one walk's final distribution.
fn select_pooled_seeds(
    union_members: &[VertexId],
    weight: impl Fn(VertexId) -> (f64, u32),
    count: usize,
) -> Vec<VertexId> {
    let mut ranked: Vec<(f64, u32, VertexId)> = union_members
        .iter()
        .map(|&v| {
            let (margin, votes) = weight(v);
            (margin, votes, v)
        })
        .collect();
    ranked.sort_unstable_by(|&(ma, va, a), &(mb, vb, b)| {
        mb.partial_cmp(&ma)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(vb.cmp(&va))
            .then(a.cmp(&b))
    });
    if ranked.len() <= count {
        return ranked.into_iter().map(|(_, _, v)| v).collect();
    }
    (0..count)
        .map(|k| ranked[k * ranked.len() / count].2)
        .collect()
}

/// Folds claims into a per-`(vertex, group representative)` margin and vote
/// weight map, with detections mapped onto their groups.
fn fold_weights_into(
    weights: &mut BTreeMap<(VertexId, usize), (f64, u32)>,
    claims: &[PooledClaim],
    group_of: &[usize],
) {
    for claim in claims {
        // Re-seed claims are tagged with the group representative itself,
        // which is a valid detection index, so this lookup covers both.
        let rep = group_of
            .get(claim.detection as usize)
            .copied()
            .unwrap_or(claim.detection as usize);
        let entry = weights.entry((claim.vertex, rep)).or_insert((0.0, 0));
        entry.0 += claim.margin;
        entry.1 += claim.votes;
    }
}

/// Assembles one run's detections into a total partition.
///
/// `members` are the phase-1 member sets in run order, `evidence` holds the
/// pooled claims of every detection (and receives the re-seed walks' claims),
/// and `reseed_walks(seeds, stop_floor)` executes one merged group's
/// cross-detection follow-up walks — all of them at once, so the driver can
/// batch them through one `cdrw_walk::WalkBatch` CSR traversal — returning,
/// per seed in order, the community-scale set the walk votes with (or `None`
/// to abstain). The driver supplies the callback so sequential and CONGEST
/// executions share every decision while charging their own costs.
///
/// The configured `quorum` is clamped at runtime to the walks a group
/// actually recorded (small seed pools and abstentions can leave fewer than
/// `reseed`), mirroring [`crate::EnsemblePolicy`]'s discipline; with no
/// recorded walks the group's consensus is simply its member union.
///
/// # Errors
///
/// Propagates failures of `reseed_walks` and of evidence recording.
pub fn assemble_run<W>(
    graph: &Graph,
    reseed: usize,
    quorum: usize,
    members: &[Vec<VertexId>],
    seeds: &[VertexId],
    evidence: &mut WalkEvidence,
    reseed_walks: W,
) -> Result<AssemblyOutcome, CdrwError>
where
    W: FnMut(&[VertexId], usize) -> Result<Vec<GroupVote>, CdrwError>,
{
    assemble_run_incremental(
        graph,
        reseed,
        quorum,
        members,
        seeds,
        &[],
        0.0,
        evidence,
        reseed_walks,
    )
}

/// [`assemble_run`] with per-detection *frozen* flags — the incremental
/// service's entry point.
///
/// A frozen detection is a cached survivor of a previous assembly: its
/// member set is already its group's consensus and its pooled claims were
/// re-injected into `evidence` by the caller. A group whose detections are
/// **all** frozen skips both the cross-detection re-seed walks and affinity
/// pruning — its refined set is exactly the cached union, so untouched
/// groups cost no walk work at all; the global reconciliation (contest
/// resolution, absorption, singleton fallback) still runs over every group,
/// keeping the partition total and deterministic. A group containing at
/// least one fresh (unfrozen) detection is in principle re-opened and
/// processed exactly as in the full run — fresh evidence near a cached group
/// invalidates its settled consensus.
///
/// `freeze_tolerance` relaxes that re-opening the same way the service's
/// staleness tolerance relaxes retirement: a *mixed* group (frozen and fresh
/// detections together) stays frozen when its fresh detections contribute at
/// most a `freeze_tolerance`-fraction of the group's volume outside the
/// frozen consensus. Without it, every stray-tail fragment the fresh region
/// emits links into some settled group and re-opens it, and the re-seed
/// walks — the dominant cost of assembly at scale — re-run for groups whose
/// consensus cannot meaningfully change. An ε-frozen group keeps exactly its
/// frozen consensus; the fresh fragments' unique vertices fall through to
/// contest resolution and absorption like any other unclaimed vertex.
///
/// `frozen` is indexed like `members`; an empty slice (or missing tail)
/// means nothing is frozen, which makes this function identical to
/// [`assemble_run`] bit for bit regardless of `freeze_tolerance`.
///
/// # Errors
///
/// Propagates failures of `reseed_walks` and of evidence recording.
#[allow(clippy::too_many_arguments)]
pub fn assemble_run_incremental<W>(
    graph: &Graph,
    reseed: usize,
    quorum: usize,
    members: &[Vec<VertexId>],
    seeds: &[VertexId],
    frozen: &[bool],
    freeze_tolerance: f64,
    evidence: &mut WalkEvidence,
    mut reseed_walks: W,
) -> Result<AssemblyOutcome, CdrwError>
where
    W: FnMut(&[VertexId], usize) -> Result<Vec<GroupVote>, CdrwError>,
{
    let n = graph.num_vertices();
    let group_of = evidence_groups(graph, members);

    // Group representatives in ascending order; per-group member unions.
    let mut reps: Vec<usize> = group_of.clone();
    reps.sort_unstable();
    reps.dedup();
    let group_index: BTreeMap<usize, usize> =
        reps.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut unions: Vec<Vec<VertexId>> = vec![Vec::new(); reps.len()];
    for (detection, &rep) in group_of.iter().enumerate() {
        unions[group_index[&rep]].extend(members[detection].iter().copied());
    }
    for union in &mut unions {
        union.sort_unstable();
        union.dedup();
    }
    let mut group_sizes: Vec<usize> = vec![0; reps.len()];
    for &rep in &group_of {
        group_sizes[group_index[&rep]] += 1;
    }
    let merged_detections = group_of
        .iter()
        .filter(|&&rep| group_sizes[group_index[&rep]] > 1)
        .count();

    // A group is frozen when every one of its detections is frozen: its
    // union is already the consensus refined set from the cached assembly,
    // so re-seed walks and pruning would only redo settled work. A mixed
    // group is normally re-opened by its fresh detections; under a positive
    // `freeze_tolerance` it stays frozen — on its *frozen* consensus alone —
    // when the fresh detections reach at most an ε-fraction of the group's
    // volume beyond that consensus.
    let mut group_has_fresh = vec![false; reps.len()];
    let mut group_has_frozen = vec![false; reps.len()];
    for (detection, &rep) in group_of.iter().enumerate() {
        let g = group_index[&rep];
        if frozen.get(detection).copied().unwrap_or(false) {
            group_has_frozen[g] = true;
        } else {
            group_has_fresh[g] = true;
        }
    }
    let mut group_frozen: Vec<bool> = (0..reps.len())
        .map(|g| group_has_frozen[g] && !group_has_fresh[g])
        .collect();
    if freeze_tolerance > 0.0 {
        for (g, &rep) in reps.iter().enumerate() {
            if !(group_has_frozen[g] && group_has_fresh[g]) {
                continue;
            }
            let mut frozen_union: Vec<VertexId> = Vec::new();
            for (detection, &r) in group_of.iter().enumerate() {
                if r == rep && frozen.get(detection).copied().unwrap_or(false) {
                    frozen_union.extend(members[detection].iter().copied());
                }
            }
            frozen_union.sort_unstable();
            frozen_union.dedup();
            let union_volume: f64 = unions[g].iter().map(|&v| graph.weighted_degree(v)).sum();
            let fresh_outside: f64 = unions[g]
                .iter()
                .filter(|v| frozen_union.binary_search(v).is_err())
                .map(|&v| graph.weighted_degree(v))
                .sum();
            if union_volume > 0.0 && fresh_outside <= freeze_tolerance * union_volume {
                // The fresh fragments cannot meaningfully move this group's
                // consensus: keep the cached one and let their few unique
                // vertices fall through to contest resolution / absorption.
                group_frozen[g] = true;
                unions[g] = frozen_union;
            }
        }
    }

    // Phase-1 weights drive the re-seed ranking; the re-seed walks' own
    // claims are folded in on top afterwards, so no claim is folded twice.
    let phase1_claims = evidence.pooled_claims().len();
    let mut weights: BTreeMap<(VertexId, usize), (f64, u32)> = BTreeMap::new();
    fold_weights_into(&mut weights, evidence.pooled_claims(), &group_of);

    // Cross-detection re-seeding, one evidence epoch per eligible group. The
    // group's walks are handed to the driver together so it can run them in
    // lockstep; votes come back in seed order, so the recorded evidence is
    // identical to walking them one at a time.
    let mut refined_groups: Vec<Vec<VertexId>> = Vec::with_capacity(reps.len());
    let mut reseeded_groups = 0usize;
    let mut total_reseed_walks = 0usize;
    for (g, &rep) in reps.iter().enumerate() {
        let union = std::mem::take(&mut unions[g]);
        if reseed == 0 || group_sizes[g] < 2 || group_frozen[g] {
            refined_groups.push(union);
            continue;
        }
        let floor = group_of
            .iter()
            .enumerate()
            .filter(|&(_, r)| *r == rep)
            .map(|(detection, _)| members[detection].len())
            .max()
            .unwrap_or(0)
            + 1;
        let seeds = select_pooled_seeds(
            &union,
            |v| weights.get(&(v, rep)).copied().unwrap_or((0.0, 0)),
            reseed,
        );
        evidence.begin();
        let votes = reseed_walks(&seeds, floor)?;
        debug_assert_eq!(votes.len(), seeds.len(), "one vote slot per re-seed walk");
        total_reseed_walks += votes.len();
        for (set, margin) in votes.into_iter().flatten() {
            evidence.record_walk(&set, margin)?;
        }
        reseeded_groups += 1;
        let recorded = evidence.walks_recorded();
        let refined = if recorded == 0 {
            union
        } else {
            // The runtime clamp mirroring the builder validation: the quorum
            // can never exceed the walks actually recorded.
            evidence.consensus_with(quorum.min(recorded) as u32, &union)
        };
        evidence.pool_epoch(rep as u32);
        refined_groups.push(refined);
    }

    // Affinity pruning: a vertex of a merged group whose edges into the
    // group fall clearly below the group's typical in-group degree is an
    // interloper from another block; unclaim it and let the absorption stage
    // re-assign it by neighbour affinity. Detection seeds are never pruned.
    {
        let mut group_seeds: Vec<Vec<VertexId>> = vec![Vec::new(); reps.len()];
        for (detection, &rep) in group_of.iter().enumerate() {
            if let Some(&seed) = seeds.get(detection) {
                group_seeds[group_index[&rep]].push(seed);
            }
        }
        for (g, refined) in refined_groups.iter_mut().enumerate() {
            if group_sizes[g] < 2 || refined.len() < 3 || group_frozen[g] {
                continue;
            }
            // Weighted in-group degree; on an unweighted graph each in-group
            // edge contributes exactly 1.0, so this is the in-group edge
            // count bit for bit.
            let in_degree: Vec<f64> = refined
                .iter()
                .map(|&v| {
                    let row = graph.neighbor_slice(v);
                    match graph.weight_slice(v) {
                        None => row
                            .iter()
                            .filter(|u| refined.binary_search(u).is_ok())
                            .count() as f64,
                        Some(row_weights) => row
                            .iter()
                            .zip(row_weights)
                            .filter(|(u, _)| refined.binary_search(u).is_ok())
                            .fold(0.0, |acc, (_, &w)| acc + w),
                    }
                })
                .collect();
            let mean = in_degree.iter().fold(0.0, |acc, d| acc + d) / refined.len() as f64;
            let keep: Vec<VertexId> = refined
                .iter()
                .zip(&in_degree)
                .filter(|&(&v, &din)| din >= PRUNE_FRACTION * mean || group_seeds[g].contains(&v))
                .map(|(&v, _)| v)
                .collect();
            *refined = keep;
        }
    }

    // Fold the re-seed walks' claims on top of the phase-1 weights: the
    // full map decides contested vertices below. The pool is drained so a
    // reused accumulator starts the next run clean.
    let claims = evidence.take_pool();
    fold_weights_into(&mut weights, &claims[phase1_claims..], &group_of);

    // Membership marking with margin-weighted contest resolution.
    let mut assignment: Vec<usize> = vec![usize::MAX; n];
    let mut contested = 0usize;
    {
        let mut claimed_by: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (g, refined) in refined_groups.iter().enumerate() {
            for &v in refined {
                if v < n {
                    claimed_by[v].push(g);
                }
            }
        }
        for (v, groups) in claimed_by.iter().enumerate() {
            match groups.as_slice() {
                [] => {}
                [only] => assignment[v] = *only,
                _ => {
                    contested += 1;
                    let best = groups
                        .iter()
                        .map(|&g| {
                            let (margin, votes) =
                                weights.get(&(v, reps[g])).copied().unwrap_or((0.0, 0));
                            // Normalise by the community's size: a mixing
                            // margin spread over a near-global set is far
                            // weaker per-vertex evidence than the same margin
                            // concentrated on one block.
                            (margin / refined_groups[g].len().max(1) as f64, votes, g)
                        })
                        // Highest margin wins; ties by vote count, then by
                        // the lowest group (deterministic).
                        .reduce(|a, b| {
                            if b.0 > a.0 || (b.0 == a.0 && b.1 > a.1) {
                                b
                            } else {
                                a
                            }
                        })
                        .expect("at least two claimants");
                    assignment[v] = best.2;
                }
            }
        }
    }

    // Synchronous absorption of unassigned vertices.
    let mut absorbed = 0usize;
    let mut absorption_volumes: Vec<u64> = Vec::new();
    let mut unassigned: Vec<VertexId> = (0..n).filter(|&v| assignment[v] == usize::MAX).collect();
    loop {
        // Each unassigned vertex polls its neighbourhood; a vertex with no
        // assigned neighbour this round stays for the next one.
        let mut updates: Vec<(VertexId, usize)> = Vec::new();
        for &v in &unassigned {
            // Weighted neighbour vote: each assigned neighbour contributes
            // its edge weight (1.0 per edge unweighted, so the vote is the
            // neighbour count bit for bit).
            let mut counts: BTreeMap<usize, f64> = BTreeMap::new();
            let row = graph.neighbor_slice(v);
            match graph.weight_slice(v) {
                None => {
                    for &u in row {
                        if assignment[u] != usize::MAX {
                            *counts.entry(assignment[u]).or_insert(0.0) += 1.0;
                        }
                    }
                }
                Some(row_weights) => {
                    for (&u, &w) in row.iter().zip(row_weights) {
                        if assignment[u] != usize::MAX {
                            *counts.entry(assignment[u]).or_insert(0.0) += w;
                        }
                    }
                }
            }
            // Heaviest neighbourhood wins; ties go to the lowest group label
            // (BTreeMap iterates ascending, strict `>` keeps the first).
            let mut best: Option<(usize, f64)> = None;
            for (&g, &count) in &counts {
                if best.map(|(_, c)| count > c).unwrap_or(true) {
                    best = Some((g, count));
                }
            }
            if let Some((g, _)) = best {
                updates.push((v, g));
            }
        }
        if updates.is_empty() {
            break;
        }
        absorption_volumes.push(
            unassigned
                .iter()
                .map(|&v| graph.degree(v) as u64)
                .sum::<u64>(),
        );
        for &(v, g) in &updates {
            assignment[v] = g;
        }
        absorbed += updates.len();
        unassigned.retain(|&v| assignment[v] == usize::MAX);
        if unassigned.is_empty() {
            break;
        }
    }
    let singletons = unassigned.len();

    // Total labelling: groups keep their index, leftovers get fresh labels.
    let mut next_fresh = refined_groups.len();
    for slot in assignment.iter_mut() {
        if *slot == usize::MAX {
            *slot = next_fresh;
            next_fresh += 1;
        }
    }
    let partition =
        Partition::from_assignment(assignment).expect("assembly assignment is total and non-empty");

    let refined = group_of
        .iter()
        .map(|&rep| refined_groups[group_index[&rep]].clone())
        .collect();
    let report = AssemblyReport {
        groups: refined_groups.len(),
        merged_detections,
        reseeded_groups,
        reseed_walks: total_reseed_walks,
        contested,
        absorbed,
        singletons,
        absorption_rounds: absorption_volumes.len(),
    };
    Ok(AssemblyOutcome {
        refined,
        partition,
        report,
        absorption_volumes,
        claims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrw_graph::GraphBuilder;

    fn seeds_of(members: &[Vec<VertexId>]) -> Vec<VertexId> {
        members.iter().map(|set| set[0]).collect()
    }

    fn no_walks(seeds: &[VertexId], _floor: usize) -> Result<Vec<GroupVote>, CdrwError> {
        Ok(vec![None; seeds.len()])
    }

    fn evidence_for(n: usize, members: &[Vec<VertexId>]) -> WalkEvidence {
        let mut evidence = WalkEvidence::with_len(n);
        for (index, set) in members.iter().enumerate() {
            evidence.begin();
            evidence.record_walk(set, 0.1).unwrap();
            evidence.pool_epoch(index as u32);
        }
        evidence
    }

    /// An edgeless-but-valid sparse graph so the overlap rule is exercised
    /// without density links (every internal density is 0).
    fn sparse_graph(n: usize) -> Graph {
        GraphBuilder::from_edges(n, [(n - 2, n - 1)]).unwrap()
    }

    #[test]
    fn heavily_overlapping_detections_group_together() {
        let members = vec![
            vec![0, 1, 2, 3],
            vec![2, 3, 4, 5], // shares 2 of 4 with the first — linked
            vec![8, 9],       // disjoint — own group
        ];
        let groups = evidence_groups(&sparse_graph(12), &members);
        assert_eq!(groups, vec![0, 0, 2]);
    }

    #[test]
    fn light_overlap_stays_separate() {
        let members = vec![vec![0, 1, 2, 3, 4, 5, 6, 7], vec![7, 8, 9, 10, 11, 12]];
        // Shared: one vertex of a 6-member set — below LINK_FRACTION.
        let groups = evidence_groups(&sparse_graph(16), &members);
        assert_eq!(groups, vec![0, 1]);
    }

    #[test]
    fn singleton_claimed_by_a_later_detection_joins_its_group() {
        let members = vec![vec![3], vec![2, 3, 4, 5]];
        let groups = evidence_groups(&sparse_graph(8), &members);
        assert_eq!(groups, vec![0, 0]);
    }

    #[test]
    fn whole_graph_detections_never_link() {
        // A complete graph: one detection covers everything (beyond
        // community scale), another a small fragment. Without the
        // community-scale guard the giant set would chain every group.
        let mut edges = Vec::new();
        for u in 0..8 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let g = GraphBuilder::from_edges(8, edges).unwrap();
        let members = vec![(0..8).collect::<Vec<_>>(), vec![0, 1, 2]];
        let groups = evidence_groups(&g, &members);
        assert_eq!(groups, vec![0, 1]);
    }

    #[test]
    fn reconcile_only_unions_groups_and_totalises_the_partition() {
        // Path 0-1-2-3-4-5 plus an isolated vertex 6.
        let g = GraphBuilder::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let members = vec![vec![0, 1, 2], vec![1, 2, 3], vec![5]];
        let mut evidence = evidence_for(7, &members);
        let outcome = assemble_run(
            &g,
            0,
            0,
            &members,
            &seeds_of(&members),
            &mut evidence,
            no_walks,
        )
        .unwrap();
        // Detections 0 and 1 merge; both carry the pruned union: the path
        // endpoint 3 has one in-group edge against a mean of 1.5 and is
        // pruned back out (it is no detection's seed), to be re-absorbed by
        // neighbour affinity below.
        assert_eq!(outcome.refined[0], vec![0, 1, 2]);
        assert_eq!(outcome.refined[1], vec![0, 1, 2]);
        assert_eq!(outcome.refined[2], vec![5]);
        assert_eq!(outcome.report.groups, 2);
        assert_eq!(outcome.report.merged_detections, 2);
        assert_eq!(outcome.report.reseed_walks, 0);
        // Vertices 3 and 4 are absorbed in one synchronous round (3 sees
        // group 0 through vertex 2, 4 sees group 1 through vertex 5); the
        // isolated vertex 6 stays a singleton.
        assert_eq!(outcome.report.absorbed, 2);
        assert_eq!(outcome.report.absorption_rounds, 1);
        assert_eq!(outcome.report.singletons, 1);
        let p = &outcome.partition;
        assert_eq!(p.num_vertices(), 7);
        assert_eq!(p.community_sizes().iter().sum::<usize>(), 7);
        assert_eq!(p.community_of(3), p.community_of(0));
        assert_eq!(p.community_of(4), p.community_of(5));
        assert_ne!(p.community_of(6), p.community_of(5));
        assert_ne!(p.community_of(6), p.community_of(0));
    }

    #[test]
    fn contested_vertices_follow_the_larger_pooled_margin() {
        let g =
            GraphBuilder::from_edges(8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (3, 4)]).unwrap();
        // Vertex 3 belongs to both (disjoint enough not to group: shares 1 of
        // 4). Detection 1 votes for it with a larger margin.
        let members = vec![vec![0, 1, 2, 3], vec![3, 4, 5, 6]];
        let mut evidence = WalkEvidence::with_len(8);
        evidence.begin();
        evidence.record_walk(&members[0], 0.05).unwrap();
        evidence.pool_epoch(0);
        evidence.begin();
        evidence.record_walk(&members[1], 0.2).unwrap();
        evidence.pool_epoch(1);
        let outcome = assemble_run(
            &g,
            0,
            0,
            &members,
            &seeds_of(&members),
            &mut evidence,
            no_walks,
        )
        .unwrap();
        assert_eq!(outcome.report.groups, 2);
        assert_eq!(outcome.report.contested, 1);
        assert_eq!(
            outcome.partition.community_of(3),
            outcome.partition.community_of(4),
            "vertex 3 must follow the higher-margin claim"
        );
        // Refined sets still carry the overlap (they are per-detection
        // answers); only the partition is disjoint.
        assert!(outcome.refined[0].contains(&3));
        assert!(outcome.refined[1].contains(&3));
    }

    #[test]
    fn margin_ties_resolve_to_votes_then_lowest_group() {
        let g =
            GraphBuilder::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]).unwrap();
        // Equal-size communities (so the size normalisation divides both
        // margins by 4) with identical pooled margins on the contested
        // vertex 3 (shared 1 of 4 — no link), but detection 1 voted twice.
        let members = vec![vec![0, 1, 2, 3], vec![3, 4, 5, 6]];
        let mut evidence = WalkEvidence::with_len(7);
        evidence.begin();
        evidence.record_walk(&members[0], 0.1).unwrap();
        evidence.pool_epoch(0);
        evidence.begin();
        evidence.record_walk(&[3, 4, 5], 0.05).unwrap();
        evidence.record_walk(&[3, 5, 6], 0.05).unwrap();
        evidence.pool_epoch(1);
        let outcome = assemble_run(
            &g,
            0,
            0,
            &members,
            &seeds_of(&members),
            &mut evidence,
            no_walks,
        )
        .unwrap();
        assert_eq!(outcome.report.contested, 1);
        assert_eq!(
            outcome.partition.community_of(3),
            outcome.partition.community_of(4),
            "equal normalised margins: more votes win"
        );
    }

    #[test]
    fn reseed_walks_extend_the_group_consensus_with_quorum_clamping() {
        let g = GraphBuilder::from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
            ],
        )
        .unwrap();
        let members = vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5]];
        let mut evidence = evidence_for(10, &members);
        let mut floors = Vec::new();
        // Two of the requested three walks abstain: the recorded count is 1,
        // so the configured quorum of 2 must clamp down to 1 and the voted
        // vertices 6 and 7 still join the consensus.
        let outcome = assemble_run(
            &g,
            3,
            2,
            &members,
            &seeds_of(&members),
            &mut evidence,
            |seeds, floor| {
                assert!(seeds.iter().all(|&seed| seed < 10));
                floors.extend(seeds.iter().map(|_| floor));
                let mut votes: Vec<GroupVote> = vec![None; seeds.len()];
                votes[0] = Some((vec![2, 3, 6, 7], 0.3));
                Ok(votes)
            },
        )
        .unwrap();
        assert_eq!(outcome.report.reseeded_groups, 1);
        assert_eq!(outcome.report.reseed_walks, 3);
        // The floor is raised past the largest fragment (4 members → 5). The
        // path endpoint 7 of the extended consensus is pruned back out (one
        // in-group edge against a mean of 1.75) and re-absorbed below.
        assert!(floors.iter().all(|&f| f == 5));
        assert_eq!(outcome.refined[0], vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(outcome.refined[0], outcome.refined[1]);
        let p = &outcome.partition;
        assert_eq!(p.community_of(6), p.community_of(0));
        assert_eq!(p.community_of(7), p.community_of(0));
        assert_eq!(p.community_sizes().iter().sum::<usize>(), 10);
    }

    #[test]
    fn no_detections_means_all_singletons() {
        let g = GraphBuilder::from_edges(3, [(0, 1)]).unwrap();
        let mut evidence = WalkEvidence::with_len(3);
        let outcome = assemble_run(&g, 2, 1, &[], &[], &mut evidence, no_walks).unwrap();
        assert_eq!(outcome.report.groups, 0);
        assert_eq!(outcome.report.singletons, 3);
        assert_eq!(outcome.partition.num_communities(), 3);
    }

    #[test]
    fn absorption_propagates_over_multiple_rounds() {
        // Path 0-1-2-3-4; only vertex 0 is detected, the rest are absorbed
        // one hop per round.
        let g = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let members = vec![vec![0]];
        let mut evidence = evidence_for(5, &members);
        let outcome = assemble_run(
            &g,
            0,
            0,
            &members,
            &seeds_of(&members),
            &mut evidence,
            no_walks,
        )
        .unwrap();
        assert_eq!(outcome.report.absorbed, 4);
        assert_eq!(outcome.report.absorption_rounds, 4);
        assert_eq!(outcome.absorption_volumes.len(), 4);
        // Round volumes shrink as vertices are absorbed: degrees of the
        // still-unassigned vertices are 2+2+2+1, then 2+2+1, 2+1, 1.
        assert_eq!(outcome.absorption_volumes, vec![7, 5, 3, 1]);
        assert_eq!(outcome.partition.num_communities(), 1);
    }
}
