//! Parallel community detection (the extension sketched in Section V).
//!
//! The paper's conclusion notes that CDRW "can also be extended to find
//! communities even faster (by finding communities in parallel), assuming we
//! know an (estimate) of r". This module implements that extension for the
//! sequential library: `r` seed nodes are drawn up front and the per-seed
//! detections run concurrently on a bounded pool of scoped OS threads (the
//! graph is shared read-only). Concurrency is capped at
//! [`std::thread::available_parallelism`] — seeds are striped across the
//! workers rather than spawning one thread per seed — and every worker owns a
//! single reusable [`cdrw_walk::WalkWorkspace`] for all the seeds it
//! processes. Overlaps are resolved exactly like the sequential pool loop
//! (first claim wins, in seed order).

use cdrw_graph::{Graph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::result::{CommunityDetection, DetectionResult};
use crate::{Cdrw, CdrwError};

impl Cdrw {
    /// Detects communities from `num_seeds` seeds in parallel.
    ///
    /// `num_seeds` plays the role of the estimate of `r`; passing the exact
    /// number of planted blocks reproduces the sequential result up to seed
    /// selection. Vertices claimed by no parallel detection are assigned by
    /// the same fallback as the sequential algorithm (each becomes a
    /// singleton community), so the resulting partition is always total.
    ///
    /// At most `min(available_parallelism, num_seeds)` worker threads run at
    /// any time, regardless of `num_seeds`; each worker reuses one walk
    /// workspace for all the seeds assigned to it.
    ///
    /// Under [`crate::AssemblyPolicy::Pooled`], each worker pools its
    /// detections' evidence locally; the claims are merged in seed order and
    /// the assembly phase runs once, sequentially, so the result is
    /// independent of the worker count (a property test pins this).
    ///
    /// # Errors
    ///
    /// * [`CdrwError::InvalidConfig`] when `num_seeds == 0` (and all
    ///   conditions of [`Cdrw::detect_community`]).
    pub fn detect_parallel(
        &self,
        graph: &Graph,
        num_seeds: usize,
    ) -> Result<DetectionResult, CdrwError> {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.detect_parallel_with_workers(graph, num_seeds, workers)
    }

    /// [`Cdrw::detect_parallel`] with an explicit worker-thread cap (at least
    /// one worker is always used). The detections and the assembled result
    /// are identical for every `workers` value; exposing the knob lets tests
    /// pin that invariance and lets embedders bound the thread pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cdrw::detect_parallel`].
    pub fn detect_parallel_with_workers(
        &self,
        graph: &Graph,
        num_seeds: usize,
        workers: usize,
    ) -> Result<DetectionResult, CdrwError> {
        if num_seeds == 0 {
            return Err(CdrwError::InvalidConfig {
                field: "num_seeds",
                reason: "parallel detection needs at least one seed".to_string(),
            });
        }
        if graph.num_vertices() == 0 {
            return Err(CdrwError::EmptyGraph);
        }
        if graph.num_edges() == 0 {
            return Err(CdrwError::NoEdges);
        }
        self.config().validate()?;
        let delta = self.config().resolve_delta(graph)?;

        // Draw distinct seeds uniformly at random, like the pool loop does.
        let mut rng = SmallRng::seed_from_u64(self.config().seed);
        let mut vertices: Vec<VertexId> = graph.vertices().collect();
        vertices.shuffle(&mut rng);
        let seeds: Vec<VertexId> = vertices
            .into_iter()
            .take(num_seeds.min(graph.num_vertices()))
            .collect();

        let workers = workers.min(seeds.len()).max(1);
        let pooling = self.config().assembly.is_pooled();

        // The engine is shared (it holds only the graph borrow and the
        // degree-sorted order); each worker owns its workspace.
        let engine = self.engine(graph);
        type Slot = (
            Result<CommunityDetection, CdrwError>,
            Vec<cdrw_walk::evidence::PooledClaim>,
        );
        let mut slots: Vec<Option<Slot>> = (0..seeds.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let engine = &engine;
                let seeds = &seeds;
                handles.push(scope.spawn(move || {
                    let mut workspace = engine.workspace();
                    // Each worker owns one walk batch: the ensemble
                    // follow-ups of all its striped seeds run through the
                    // same reusable lanes.
                    let mut batch = cdrw_walk::WalkBatch::for_graph(engine.graph());
                    let mut evidence = cdrw_walk::WalkEvidence::for_graph_if(
                        self.config().ensemble.is_ensemble() || pooling,
                        engine.graph(),
                    );
                    // Stripe the seeds across workers: worker w takes seeds
                    // w, w + workers, w + 2·workers, …
                    (worker..seeds.len())
                        .step_by(workers)
                        .map(|index| {
                            let result = self.detect_community_in(
                                engine,
                                &mut workspace,
                                &mut batch,
                                &mut evidence,
                                seeds[index],
                                delta,
                                pooling,
                            );
                            // Drain the worker-local pool per detection so
                            // the claims can be merged in seed order on the
                            // main thread, independent of the striping.
                            let claims = if pooling && result.is_ok() {
                                evidence.pool_epoch(index as u32);
                                evidence.take_pool()
                            } else {
                                Vec::new()
                            };
                            (index, (result, claims))
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                for (index, slot) in handle.join().expect("detection threads do not panic") {
                    slots[index] = Some(slot);
                }
            }
        });

        let mut detections = Vec::with_capacity(slots.len());
        let mut evidence = cdrw_walk::WalkEvidence::for_graph_if(pooling, graph);
        for slot in slots {
            let (result, claims) = slot.expect("every slot is filled");
            detections.push(result?);
            evidence.extend_pool(&claims);
        }
        if let crate::AssemblyPolicy::Pooled { reseed, quorum } = self.config().assembly {
            let mut batch = cdrw_walk::WalkBatch::for_graph(graph);
            return self.assemble_detections(
                &engine,
                &mut batch,
                &mut evidence,
                detections,
                delta,
                reseed,
                quorum,
            );
        }
        Ok(DetectionResult::new(
            graph.num_vertices(),
            detections,
            delta,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdrwConfig, MixingCriterion};
    use cdrw_gen::{generate_ppm, special, PpmParams};
    use cdrw_metrics::f_score;

    #[test]
    fn zero_seeds_is_rejected() {
        let (g, _) = special::complete(8).unwrap();
        let cdrw = Cdrw::with_defaults();
        assert!(matches!(
            cdrw.detect_parallel(&g, 0),
            Err(CdrwError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn degenerate_graphs_are_rejected() {
        let cdrw = Cdrw::with_defaults();
        assert!(cdrw
            .detect_parallel(&cdrw_graph::Graph::empty(0), 2)
            .is_err());
        assert!(cdrw
            .detect_parallel(&cdrw_graph::Graph::empty(5), 2)
            .is_err());
    }

    #[test]
    fn parallel_detection_recovers_ppm_blocks() {
        let params = PpmParams::new(512, 4, 0.3, 0.003).unwrap();
        let (graph, truth) = generate_ppm(&params, 19).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        // Pinned to the strict criterion: this test's partition-F floor was
        // calibrated for it, and the first-claim residue that oversampling
        // leaves behind depends on the criterion's exact set sizes.
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(11)
                .delta(delta)
                .criterion(MixingCriterion::Strict)
                .build(),
        );
        // Oversample seeds: 2r seeds still resolve into roughly r communities
        // after first-claim de-duplication.
        let result = cdrw.detect_parallel(&graph, 8).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(
            report.f_score > 0.7,
            "parallel F-score {} too low",
            report.f_score
        );
        assert_eq!(result.detections().len(), 8);
    }

    #[test]
    fn parallel_detections_are_accurate_under_the_default_criterion() {
        // The default (renormalised) criterion produces tight per-seed
        // detections; score the raw detections against each seed's true
        // block — the paper's own metric — rather than the first-claim
        // partition, which shreds duplicate detections of the same block.
        let params = PpmParams::new(512, 4, 0.3, 0.003).unwrap();
        let (graph, truth) = generate_ppm(&params, 19).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(11).delta(delta).build());
        let result = cdrw.detect_parallel(&graph, 8).unwrap();
        let report = cdrw_metrics::f_score_for_detections(
            result
                .detections()
                .iter()
                .map(|d| (d.members.as_slice(), d.seed)),
            &truth,
        );
        assert!(
            report.f_score > 0.85,
            "per-seed parallel F-score {} too low",
            report.f_score
        );
    }

    #[test]
    fn parallel_ensemble_detections_match_the_sequential_per_seed_results() {
        // The ensemble path runs through the same per-seed code in both
        // drivers; each parallel ensemble detection (votes, consensus and
        // trace included) must equal its sequential counterpart.
        let params = PpmParams::new(256, 4, 0.2, 0.01).unwrap();
        let (graph, _) = generate_ppm(&params, 31).unwrap();
        let delta = 0.1;
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(13)
                .delta(delta)
                .ensemble(4, 2)
                .build(),
        );
        let parallel = cdrw.detect_parallel(&graph, 6).unwrap();
        for detection in parallel.detections() {
            let sequential = cdrw
                .detect_community_with_delta(&graph, detection.seed, delta)
                .unwrap();
            assert_eq!(&sequential, detection, "seed {} diverged", detection.seed);
            assert!(detection.trace.ensemble.is_some());
        }
    }

    #[test]
    fn more_seeds_than_vertices_is_clamped() {
        let (g, _) = special::ring_of_cliques(2, 8).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(2).delta(0.2).build());
        let result = cdrw.detect_parallel(&g, 100).unwrap();
        assert_eq!(result.detections().len(), 16);
        assert_eq!(result.partition().num_vertices(), 16);
    }

    #[test]
    fn many_more_seeds_than_cores_stays_bounded_and_deterministic() {
        // 64 seeds on a 16-vertex graph exercises the striped worker pool
        // (before the cap this spawned 64 OS threads at once). The result
        // must not depend on how many workers the host machine offers.
        let (g, _) = special::ring_of_cliques(2, 8).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(5).delta(0.2).build());
        let a = cdrw.detect_parallel(&g, 64).unwrap();
        let b = cdrw.detect_parallel(&g, 64).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.detections().len(), 16);
    }

    #[test]
    fn pooled_parallel_assembly_merges_duplicate_detections() {
        // Oversampled parallel seeds land several detections in each block;
        // the pooled assembly merges them instead of letting first-claim
        // shred the duplicates.
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 23).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(3)
                .delta(delta)
                .assembly(2, 1)
                .build(),
        );
        let result = cdrw.detect_parallel(&graph, 6).unwrap();
        let report = result.assembly().expect("assembly report");
        assert!(
            report.merged_detections >= 2,
            "oversampled seeds must merge: {report:?}"
        );
        assert_eq!(result.partition().num_vertices(), 256);
        let f = cdrw_metrics::f_score_weighted(result.partition(), &truth).f_score;
        assert!(f > 0.8, "weighted partition F {f}");
    }

    proptest::proptest! {
        /// The parallel driver's result — detections, assembled partition
        /// and report — is identical for every worker count, with and
        /// without the pooled assembly and the batched multi-walk ensemble.
        #[test]
        fn detect_parallel_is_invariant_across_worker_counts(
            edges in proptest::collection::vec((0usize..16, 0usize..16), 3..60),
            seed in 0u64..128,
            num_seeds in 1usize..9,
            pooled in 0usize..2,
            ensemble in 0usize..2,
        ) {
            use proptest::{prop_assert_eq, prop_assume};

            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let graph = cdrw_graph::GraphBuilder::from_edges(16, clean).unwrap();
            let assembly = if pooled == 1 {
                crate::AssemblyPolicy::Pooled { reseed: 2, quorum: 1 }
            } else {
                crate::AssemblyPolicy::Raw
            };
            let ensemble = if ensemble == 1 {
                crate::EnsemblePolicy::Ensemble { walks: 3, quorum: 2 }
            } else {
                crate::EnsemblePolicy::Single
            };
            let cdrw = Cdrw::new(
                CdrwConfig::builder()
                    .seed(seed)
                    .delta(0.2)
                    .assembly_policy(assembly)
                    .ensemble_policy(ensemble)
                    .build(),
            );
            let single = cdrw.detect_parallel_with_workers(&graph, num_seeds, 1).unwrap();
            for workers in [2usize, 3, 7] {
                let other = cdrw.detect_parallel_with_workers(&graph, num_seeds, workers).unwrap();
                prop_assert_eq!(&single, &other, "workers = {} diverged", workers);
            }
            // The partition is always total.
            prop_assert_eq!(
                single.partition().community_sizes().iter().sum::<usize>(),
                graph.num_vertices()
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_partition_quality() {
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 23).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(3).delta(delta).build());
        let sequential = cdrw.detect_all(&graph).unwrap();
        let parallel = cdrw.detect_parallel(&graph, 2).unwrap();
        let f_seq = f_score(sequential.partition(), &truth).f_score;
        let f_par = f_score(parallel.partition(), &truth).f_score;
        assert!((f_seq - f_par).abs() < 0.25, "seq = {f_seq}, par = {f_par}");
    }

    #[test]
    fn parallel_detections_match_the_sequential_per_seed_results() {
        // Per-seed detections are computed by the same engine code path, so
        // each parallel detection must equal its sequential counterpart.
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, _) = generate_ppm(&params, 29).unwrap();
        let delta = 0.1;
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(7).delta(delta).build());
        let parallel = cdrw.detect_parallel(&graph, 6).unwrap();
        for detection in parallel.detections() {
            let sequential = cdrw
                .detect_community_with_delta(&graph, detection.seed, delta)
                .unwrap();
            assert_eq!(&sequential, detection);
        }
    }
}
