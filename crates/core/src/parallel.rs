//! Parallel community detection (the extension sketched in Section V).
//!
//! The paper's conclusion notes that CDRW "can also be extended to find
//! communities even faster (by finding communities in parallel), assuming we
//! know an (estimate) of r". This module implements that extension for the
//! sequential library: `r` seed nodes are drawn up front, the per-seed
//! detections run concurrently on OS threads (crossbeam scoped threads — the
//! graph is shared read-only), and overlaps are resolved exactly like the
//! sequential pool loop (first claim wins, in seed order).

use cdrw_graph::{Graph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::result::{CommunityDetection, DetectionResult};
use crate::{Cdrw, CdrwError};

impl Cdrw {
    /// Detects communities from `num_seeds` seeds in parallel.
    ///
    /// `num_seeds` plays the role of the estimate of `r`; passing the exact
    /// number of planted blocks reproduces the sequential result up to seed
    /// selection. Vertices claimed by no parallel detection are assigned by
    /// the same fallback as the sequential algorithm (each becomes a
    /// singleton community), so the resulting partition is always total.
    ///
    /// # Errors
    ///
    /// * [`CdrwError::InvalidConfig`] when `num_seeds == 0` (and all
    ///   conditions of [`Cdrw::detect_community`]).
    pub fn detect_parallel(
        &self,
        graph: &Graph,
        num_seeds: usize,
    ) -> Result<DetectionResult, CdrwError> {
        if num_seeds == 0 {
            return Err(CdrwError::InvalidConfig {
                field: "num_seeds",
                reason: "parallel detection needs at least one seed".to_string(),
            });
        }
        if graph.num_vertices() == 0 {
            return Err(CdrwError::EmptyGraph);
        }
        if graph.num_edges() == 0 {
            return Err(CdrwError::NoEdges);
        }
        self.config().validate()?;
        let delta = self.config().resolve_delta(graph)?;

        // Draw distinct seeds uniformly at random, like the pool loop does.
        let mut rng = SmallRng::seed_from_u64(self.config().seed);
        let mut vertices: Vec<VertexId> = graph.vertices().collect();
        vertices.shuffle(&mut rng);
        let seeds: Vec<VertexId> = vertices
            .into_iter()
            .take(num_seeds.min(graph.num_vertices()))
            .collect();

        let mut slots: Vec<Option<Result<CommunityDetection, CdrwError>>> =
            (0..seeds.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (index, &seed) in seeds.iter().enumerate() {
                let detector = self.clone();
                handles.push((
                    index,
                    scope.spawn(move |_| detector.detect_community_with_delta(graph, seed, delta)),
                ));
            }
            for (index, handle) in handles {
                slots[index] = Some(handle.join().expect("detection threads do not panic"));
            }
        })
        .expect("crossbeam scope does not panic");

        let mut detections = Vec::with_capacity(slots.len());
        for slot in slots {
            detections.push(slot.expect("every slot is filled")?);
        }
        Ok(DetectionResult::new(
            graph.num_vertices(),
            detections,
            delta,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdrwConfig;
    use cdrw_gen::{generate_ppm, special, PpmParams};
    use cdrw_metrics::f_score;

    #[test]
    fn zero_seeds_is_rejected() {
        let (g, _) = special::complete(8).unwrap();
        let cdrw = Cdrw::with_defaults();
        assert!(matches!(
            cdrw.detect_parallel(&g, 0),
            Err(CdrwError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn degenerate_graphs_are_rejected() {
        let cdrw = Cdrw::with_defaults();
        assert!(cdrw.detect_parallel(&cdrw_graph::Graph::empty(0), 2).is_err());
        assert!(cdrw.detect_parallel(&cdrw_graph::Graph::empty(5), 2).is_err());
    }

    #[test]
    fn parallel_detection_recovers_ppm_blocks() {
        let params = PpmParams::new(512, 4, 0.3, 0.003).unwrap();
        let (graph, truth) = generate_ppm(&params, 19).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(11).delta(delta).build());
        // Oversample seeds: 2r seeds still resolve into roughly r communities
        // after first-claim de-duplication.
        let result = cdrw.detect_parallel(&graph, 8).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(
            report.f_score > 0.7,
            "parallel F-score {} too low",
            report.f_score
        );
        assert_eq!(result.detections().len(), 8);
    }

    #[test]
    fn more_seeds_than_vertices_is_clamped() {
        let (g, _) = special::ring_of_cliques(2, 8).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(2).delta(0.2).build());
        let result = cdrw.detect_parallel(&g, 100).unwrap();
        assert_eq!(result.detections().len(), 16);
        assert_eq!(result.partition().num_vertices(), 16);
    }

    #[test]
    fn parallel_matches_sequential_partition_quality() {
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 23).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(3).delta(delta).build());
        let sequential = cdrw.detect_all(&graph).unwrap();
        let parallel = cdrw.detect_parallel(&graph, 2).unwrap();
        let f_seq = f_score(sequential.partition(), &truth).f_score;
        let f_par = f_score(parallel.partition(), &truth).f_score;
        assert!((f_seq - f_par).abs() < 0.25, "seq = {f_seq}, par = {f_par}");
    }
}
