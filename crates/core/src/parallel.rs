//! Parallel community detection (the extension sketched in Section V).
//!
//! The paper's conclusion notes that CDRW "can also be extended to find
//! communities even faster (by finding communities in parallel), assuming we
//! know an (estimate) of r". This module implements that extension for the
//! sequential library: `r` seed nodes are drawn up front and the per-seed
//! detections run concurrently on a bounded pool of scoped OS threads (the
//! graph is shared read-only). Concurrency is capped at
//! [`std::thread::available_parallelism`] — workers claim seeds from a
//! shared atomic-cursor queue rather than spawning one thread per seed — and
//! every worker owns a single reusable [`cdrw_walk::WalkWorkspace`] for all
//! the seeds it processes. Overlaps are resolved exactly like the sequential
//! pool loop (first claim wins, in seed order).
//!
//! # Scheduling: work stealing over static stripes
//!
//! Seeds used to be striped statically (worker `w` took seeds `w`,
//! `w + workers`, …). Per-seed detection cost is heavily skewed — a seed in
//! a large or badly-mixing block walks far longer than one whose growth rule
//! fires early — so a stripe that happened to collect the expensive seeds
//! kept every other worker idle at the barrier. Workers now claim small
//! contiguous index chunks from a shared [`AtomicUsize`] cursor (chunks of
//! roughly `seeds / (8 · workers)`, clamped into `[1, 32]`, so claims stay
//! rare while the tail stays balanced); a worker that drew cheap seeds
//! simply claims again. Determinism is untouched: *which* worker
//! computes a detection is scheduling-dependent, but each detection depends
//! only on its seed, and results are written into per-seed slots merged in
//! seed order afterwards — the worker-count-invariance property test pins
//! exactly this.

use std::sync::atomic::{AtomicUsize, Ordering};

use cdrw_graph::{Graph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::result::{CommunityDetection, DetectionResult};
use crate::{Cdrw, CdrwError};

impl Cdrw {
    /// Detects communities from `num_seeds` seeds in parallel.
    ///
    /// `num_seeds` plays the role of the estimate of `r`; passing the exact
    /// number of planted blocks reproduces the sequential result up to seed
    /// selection. Vertices claimed by no parallel detection are assigned by
    /// the same fallback as the sequential algorithm (each becomes a
    /// singleton community), so the resulting partition is always total.
    ///
    /// At most `min(available_parallelism, num_seeds)` worker threads run at
    /// any time, regardless of `num_seeds`; each worker reuses one walk
    /// workspace for all the seeds assigned to it.
    ///
    /// Under [`crate::AssemblyPolicy::Pooled`], each worker pools its
    /// detections' evidence locally; the claims are merged in seed order and
    /// the assembly phase runs once, sequentially, so the result is
    /// independent of the worker count (a property test pins this).
    ///
    /// # Errors
    ///
    /// * [`CdrwError::InvalidConfig`] when `num_seeds == 0` (and all
    ///   conditions of [`Cdrw::detect_community`]).
    pub fn detect_parallel(
        &self,
        graph: &Graph,
        num_seeds: usize,
    ) -> Result<DetectionResult, CdrwError> {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.detect_parallel_with_workers(graph, num_seeds, workers)
    }

    /// [`Cdrw::detect_parallel`] with an explicit worker-thread cap (at least
    /// one worker is always used). The detections and the assembled result
    /// are identical for every `workers` value; exposing the knob lets tests
    /// pin that invariance and lets embedders bound the thread pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cdrw::detect_parallel`].
    pub fn detect_parallel_with_workers(
        &self,
        graph: &Graph,
        num_seeds: usize,
        workers: usize,
    ) -> Result<DetectionResult, CdrwError> {
        if num_seeds == 0 {
            return Err(CdrwError::InvalidConfig {
                field: "num_seeds",
                reason: "parallel detection needs at least one seed".to_string(),
            });
        }
        if graph.num_vertices() == 0 {
            return Err(CdrwError::EmptyGraph);
        }
        if graph.num_edges() == 0 {
            return Err(CdrwError::NoEdges);
        }
        self.config().validate()?;
        let delta = self.config().resolve_delta(graph)?;

        // Draw distinct seeds uniformly at random, like the pool loop does.
        let mut rng = SmallRng::seed_from_u64(self.config().seed);
        let seeds = draw_distinct_seeds(
            &mut rng,
            graph.num_vertices(),
            num_seeds.min(graph.num_vertices()),
        );

        let workers = workers.min(seeds.len()).max(1);
        let pooling = self.config().assembly.is_pooled();

        // The engine is shared (it holds only the graph borrow and the
        // degree-sorted order); each worker owns its workspace.
        let engine = self.engine(graph);
        type Slot = (
            Result<CommunityDetection, CdrwError>,
            Vec<cdrw_walk::evidence::PooledClaim>,
        );
        let mut slots: Vec<Option<Slot>> = (0..seeds.len()).map(|_| None).collect();
        // The shared work-stealing queue: workers claim contiguous index
        // chunks with one `fetch_add` per claim. Chunks of ≈ seeds/(8·w)
        // keep claim traffic rare (≈ 8 claims per worker) while leaving the
        // tail fine-grained enough that one slow seed cannot strand a large
        // remainder behind a single worker.
        let cursor = AtomicUsize::new(0);
        let chunk = (seeds.len() / (workers * 8)).clamp(1, 32);
        // One worker batch survives the scope so the pooled assembly below
        // can reuse its lanes instead of allocating a third full-size bank.
        let mut recycled_batch: Option<cdrw_walk::WalkBatch> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let engine = &engine;
                let seeds = &seeds;
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut workspace = engine.workspace();
                    // Each worker owns one walk batch: the ensemble
                    // follow-ups of all the seeds it claims run through the
                    // same reusable lanes.
                    let mut batch = cdrw_walk::WalkBatch::for_graph(engine.graph());
                    let mut evidence = cdrw_walk::WalkEvidence::for_graph_if(
                        self.config().ensemble.is_ensemble() || pooling,
                        engine.graph(),
                    );
                    let mut produced = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= seeds.len() {
                            break;
                        }
                        let end = (start + chunk).min(seeds.len());
                        for (index, &seed) in seeds.iter().enumerate().take(end).skip(start) {
                            let result = self.detect_community_in(
                                engine,
                                &mut workspace,
                                &mut batch,
                                &mut evidence,
                                seed,
                                delta,
                                pooling,
                            );
                            // Drain the worker-local pool per detection so
                            // the claims can be merged in seed order on the
                            // main thread, independent of the scheduling.
                            let claims = if pooling && result.is_ok() {
                                evidence.pool_epoch(index as u32);
                                evidence.take_pool()
                            } else {
                                Vec::new()
                            };
                            produced.push((index, (result, claims)));
                        }
                    }
                    (produced, batch)
                }));
            }
            for handle in handles {
                let (produced, batch) = handle.join().expect("detection threads do not panic");
                for (index, slot) in produced {
                    slots[index] = Some(slot);
                }
                recycled_batch.get_or_insert(batch);
            }
        });

        let mut detections = Vec::with_capacity(slots.len());
        let mut evidence = cdrw_walk::WalkEvidence::for_graph_if(pooling, graph);
        for slot in slots {
            let (result, claims) = slot.expect("every slot is filled");
            detections.push(result?);
            evidence.extend_pool(&claims);
        }
        if let crate::AssemblyPolicy::Pooled { reseed, quorum } = self.config().assembly {
            // Reuse a worker's batch for the assembly's re-seed walks: its
            // lanes are re-seeded per merged group anyway, and recycling
            // saves a third full-size lane bank at million-vertex scale.
            let mut batch =
                recycled_batch.unwrap_or_else(|| cdrw_walk::WalkBatch::for_graph(graph));
            return self
                .assemble_detections(
                    &engine,
                    &mut batch,
                    &mut evidence,
                    detections,
                    &[],
                    0.0,
                    delta,
                    reseed,
                    quorum,
                )
                .map(|(result, _)| result);
        }
        Ok(DetectionResult::new(
            graph.num_vertices(),
            detections,
            delta,
        ))
    }
}

/// Draws `k` distinct vertices uniformly at random from `0..n` with a
/// partial Fisher–Yates over a sparse displacement map.
///
/// The previous implementation materialised all `n` vertex ids and ran a
/// full shuffle just to keep the first `k` — an `O(n)` allocation plus
/// `n − 1` RNG draws per parallel call, which is pure overhead at
/// `n = 2²⁰` when `k` is a few dozen. This runs the first `k` iterations of
/// the front-to-back Fisher–Yates and keeps only the displaced positions in
/// a hash map: `O(k)` time, `O(k)` space, `k` RNG draws, and exactly the
/// uniform distribution over ordered `k`-subsets the full shuffle gave
/// (each draw picks position `i`'s value uniformly from the not-yet-drawn
/// remainder). The concrete seed *sequence* for a given RNG seed differs
/// from the full-shuffle implementation — per-seed detections are
/// unaffected, only which seeds a run draws.
///
/// # Panics
///
/// Panics if `k > n` (callers clamp).
fn draw_distinct_seeds<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<VertexId> {
    assert!(k <= n, "cannot draw {k} distinct seeds from {n} vertices");
    // displaced[p] is the value currently at position p, for the O(k)
    // positions that no longer hold their own index.
    let mut displaced: std::collections::HashMap<usize, VertexId> =
        std::collections::HashMap::with_capacity(2 * k);
    let mut seeds = Vec::with_capacity(k);
    for i in 0..k {
        let j = rng.gen_range(i..n);
        let value_j = displaced.get(&j).copied().unwrap_or(j);
        // Position j inherits position i's value. Position i is never
        // sampled again (future draws are over i+1..n), so its own entry
        // need not be updated.
        let value_i = displaced.get(&i).copied().unwrap_or(i);
        displaced.insert(j, value_i);
        seeds.push(value_j);
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdrwConfig, MixingCriterion};
    use cdrw_gen::{generate_ppm, special, PpmParams};
    use cdrw_metrics::f_score;

    #[test]
    fn partial_fisher_yates_draws_distinct_in_range_seeds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for (n, k) in [(1usize, 1usize), (10, 10), (100, 7), (1 << 16, 48)] {
            let seeds = draw_distinct_seeds(&mut rng, n, k);
            assert_eq!(seeds.len(), k);
            assert!(seeds.iter().all(|&s| s < n), "n = {n}");
            let mut sorted = seeds.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicate seeds at n = {n}, k = {k}");
        }
        // k == n is a full permutation.
        let all = draw_distinct_seeds(&mut rng, 50, 50);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(all, sorted, "a 50-draw being the identity is negligible");
        // Deterministic per RNG state.
        let a = draw_distinct_seeds(&mut SmallRng::seed_from_u64(7), 1000, 20);
        let b = draw_distinct_seeds(&mut SmallRng::seed_from_u64(7), 1000, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn partial_fisher_yates_is_roughly_uniform() {
        // Each vertex should be drawn with probability k/n; over many trials
        // the per-vertex hit counts concentrate. 2000 trials of 4-of-16
        // gives an expected 500 hits per vertex; a 5σ band is ±~100.
        let n = 16;
        let k = 4;
        let trials = 2000;
        let mut rng = SmallRng::seed_from_u64(99);
        let mut hits = vec![0usize; n];
        for _ in 0..trials {
            for s in draw_distinct_seeds(&mut rng, n, k) {
                hits[s] += 1;
            }
        }
        let expected = trials * k / n;
        for (v, &h) in hits.iter().enumerate() {
            assert!(
                h.abs_diff(expected) < 110,
                "vertex {v} drawn {h} times, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn zero_seeds_is_rejected() {
        let (g, _) = special::complete(8).unwrap();
        let cdrw = Cdrw::with_defaults();
        assert!(matches!(
            cdrw.detect_parallel(&g, 0),
            Err(CdrwError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn degenerate_graphs_are_rejected() {
        let cdrw = Cdrw::with_defaults();
        assert!(cdrw
            .detect_parallel(&cdrw_graph::Graph::empty(0), 2)
            .is_err());
        assert!(cdrw
            .detect_parallel(&cdrw_graph::Graph::empty(5), 2)
            .is_err());
    }

    #[test]
    fn parallel_detection_recovers_ppm_blocks() {
        let params = PpmParams::new(512, 4, 0.3, 0.003).unwrap();
        let (graph, truth) = generate_ppm(&params, 19).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        // Pinned to the strict criterion: this test's partition-F floor was
        // calibrated for it, and the first-claim residue that oversampling
        // leaves behind depends on the criterion's exact set sizes.
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(11)
                .delta(delta)
                .criterion(MixingCriterion::Strict)
                .build(),
        );
        // Oversample seeds: 2r seeds still resolve into roughly r communities
        // after first-claim de-duplication.
        let result = cdrw.detect_parallel(&graph, 8).unwrap();
        let report = f_score(result.partition(), &truth);
        assert!(
            report.f_score > 0.7,
            "parallel F-score {} too low",
            report.f_score
        );
        assert_eq!(result.detections().len(), 8);
    }

    #[test]
    fn parallel_detections_are_accurate_under_the_default_criterion() {
        // The default (renormalised) criterion produces tight per-seed
        // detections; score the raw detections against each seed's true
        // block — the paper's own metric — rather than the first-claim
        // partition, which shreds duplicate detections of the same block.
        let params = PpmParams::new(512, 4, 0.3, 0.003).unwrap();
        let (graph, truth) = generate_ppm(&params, 19).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(11).delta(delta).build());
        let result = cdrw.detect_parallel(&graph, 8).unwrap();
        let report = cdrw_metrics::f_score_for_detections(
            result
                .detections()
                .iter()
                .map(|d| (d.members.as_slice(), d.seed)),
            &truth,
        );
        assert!(
            report.f_score > 0.85,
            "per-seed parallel F-score {} too low",
            report.f_score
        );
    }

    #[test]
    fn parallel_ensemble_detections_match_the_sequential_per_seed_results() {
        // The ensemble path runs through the same per-seed code in both
        // drivers; each parallel ensemble detection (votes, consensus and
        // trace included) must equal its sequential counterpart.
        let params = PpmParams::new(256, 4, 0.2, 0.01).unwrap();
        let (graph, _) = generate_ppm(&params, 31).unwrap();
        let delta = 0.1;
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(13)
                .delta(delta)
                .ensemble(4, 2)
                .build(),
        );
        let parallel = cdrw.detect_parallel(&graph, 6).unwrap();
        for detection in parallel.detections() {
            let sequential = cdrw
                .detect_community_with_delta(&graph, detection.seed, delta)
                .unwrap();
            assert_eq!(&sequential, detection, "seed {} diverged", detection.seed);
            assert!(detection.trace.ensemble.is_some());
        }
    }

    #[test]
    fn more_seeds_than_vertices_is_clamped() {
        let (g, _) = special::ring_of_cliques(2, 8).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(2).delta(0.2).build());
        let result = cdrw.detect_parallel(&g, 100).unwrap();
        assert_eq!(result.detections().len(), 16);
        assert_eq!(result.partition().num_vertices(), 16);
    }

    #[test]
    fn many_more_seeds_than_cores_stays_bounded_and_deterministic() {
        // 64 seeds on a 16-vertex graph exercises the striped worker pool
        // (before the cap this spawned 64 OS threads at once). The result
        // must not depend on how many workers the host machine offers.
        let (g, _) = special::ring_of_cliques(2, 8).unwrap();
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(5).delta(0.2).build());
        let a = cdrw.detect_parallel(&g, 64).unwrap();
        let b = cdrw.detect_parallel(&g, 64).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.detections().len(), 16);
    }

    #[test]
    fn pooled_parallel_assembly_merges_duplicate_detections() {
        // Oversampled parallel seeds land several detections in each block;
        // the pooled assembly merges them instead of letting first-claim
        // shred the duplicates.
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 23).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(
            CdrwConfig::builder()
                .seed(3)
                .delta(delta)
                .assembly(2, 1)
                .build(),
        );
        let result = cdrw.detect_parallel(&graph, 6).unwrap();
        let report = result.assembly().expect("assembly report");
        assert!(
            report.merged_detections >= 2,
            "oversampled seeds must merge: {report:?}"
        );
        assert_eq!(result.partition().num_vertices(), 256);
        let f = cdrw_metrics::f_score_weighted(result.partition(), &truth).f_score;
        assert!(f > 0.8, "weighted partition F {f}");
    }

    proptest::proptest! {
        /// The parallel driver's result — detections, assembled partition
        /// and report — is identical for every worker count, with and
        /// without the pooled assembly and the batched multi-walk ensemble.
        #[test]
        fn detect_parallel_is_invariant_across_worker_counts(
            edges in proptest::collection::vec((0usize..16, 0usize..16), 3..60),
            seed in 0u64..128,
            num_seeds in 1usize..9,
            pooled in 0usize..2,
            ensemble in 0usize..2,
        ) {
            use proptest::{prop_assert_eq, prop_assume};

            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            prop_assume!(!clean.is_empty());
            let graph = cdrw_graph::GraphBuilder::from_edges(16, clean).unwrap();
            let assembly = if pooled == 1 {
                crate::AssemblyPolicy::Pooled { reseed: 2, quorum: 1 }
            } else {
                crate::AssemblyPolicy::Raw
            };
            let ensemble = if ensemble == 1 {
                crate::EnsemblePolicy::Ensemble { walks: 3, quorum: 2 }
            } else {
                crate::EnsemblePolicy::Single
            };
            let cdrw = Cdrw::new(
                CdrwConfig::builder()
                    .seed(seed)
                    .delta(0.2)
                    .assembly_policy(assembly)
                    .ensemble_policy(ensemble)
                    .build(),
            );
            let single = cdrw.detect_parallel_with_workers(&graph, num_seeds, 1).unwrap();
            for workers in [2usize, 3, 7] {
                let other = cdrw.detect_parallel_with_workers(&graph, num_seeds, workers).unwrap();
                prop_assert_eq!(&single, &other, "workers = {} diverged", workers);
            }
            // The partition is always total.
            prop_assert_eq!(
                single.partition().community_sizes().iter().sum::<usize>(),
                graph.num_vertices()
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_partition_quality() {
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, truth) = generate_ppm(&params, 23).unwrap();
        let delta = params.expected_block_conductance().clamp(0.01, 1.0);
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(3).delta(delta).build());
        let sequential = cdrw.detect_all(&graph).unwrap();
        let parallel = cdrw.detect_parallel(&graph, 2).unwrap();
        let f_seq = f_score(sequential.partition(), &truth).f_score;
        let f_par = f_score(parallel.partition(), &truth).f_score;
        assert!((f_seq - f_par).abs() < 0.25, "seq = {f_seq}, par = {f_par}");
    }

    #[test]
    fn parallel_detections_match_the_sequential_per_seed_results() {
        // Per-seed detections are computed by the same engine code path, so
        // each parallel detection must equal its sequential counterpart.
        let params = PpmParams::new(256, 2, 0.25, 0.002).unwrap();
        let (graph, _) = generate_ppm(&params, 29).unwrap();
        let delta = 0.1;
        let cdrw = Cdrw::new(CdrwConfig::builder().seed(7).delta(delta).build());
        let parallel = cdrw.detect_parallel(&graph, 6).unwrap();
        for detection in parallel.detections() {
            let sequential = cdrw
                .detect_community_with_delta(&graph, detection.seed, delta)
                .unwrap();
            assert_eq!(&sequential, detection);
        }
    }
}
