//! The paper's seed-based precision / recall / F-score.

use cdrw_graph::{Partition, VertexId};
use serde::{Deserialize, Serialize};

/// Precision, recall and F-score of one detected community.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityScore {
    /// Index of the detected community within the detected partition.
    pub detected_community: usize,
    /// Index of the matched ground-truth community.
    pub ground_truth_community: usize,
    /// `|Cˢ ∩ C_g| / |Cˢ|`.
    pub precision: f64,
    /// `|Cˢ ∩ C_g| / |C_g|`.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f_score: f64,
}

/// Aggregate F-score report over all detected communities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FScoreReport {
    /// Per-community scores, one entry per detected community.
    pub per_community: Vec<CommunityScore>,
    /// Average F-score (the number the paper plots).
    pub f_score: f64,
    /// Average precision.
    pub precision: f64,
    /// Average recall.
    pub recall: f64,
}

impl FScoreReport {
    fn from_scores(per_community: Vec<CommunityScore>) -> Self {
        let k = per_community.len().max(1) as f64;
        let f_score = per_community.iter().map(|s| s.f_score).sum::<f64>() / k;
        let precision = per_community.iter().map(|s| s.precision).sum::<f64>() / k;
        let recall = per_community.iter().map(|s| s.recall).sum::<f64>() / k;
        FScoreReport {
            per_community,
            f_score,
            precision,
            recall,
        }
    }
}

fn harmonic(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

fn intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    // Both member lists are sorted (Partition guarantees it).
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Scores one detected community against the ground-truth community of its
/// seed node, exactly as in Section IV of the paper.
pub fn score_seeded_community(
    detected_index: usize,
    detected_members: &[VertexId],
    seed: VertexId,
    ground_truth: &Partition,
) -> CommunityScore {
    let truth_id = ground_truth.community_of(seed).unwrap_or(0);
    let truth_members = ground_truth.members(truth_id);
    let overlap = intersection_size(detected_members, truth_members) as f64;
    let precision = if detected_members.is_empty() {
        0.0
    } else {
        overlap / detected_members.len() as f64
    };
    let recall = if truth_members.is_empty() {
        0.0
    } else {
        overlap / truth_members.len() as f64
    };
    CommunityScore {
        detected_community: detected_index,
        ground_truth_community: truth_id,
        precision,
        recall,
        f_score: harmonic(precision, recall),
    }
}

/// Scores a detected partition against the ground truth using, for each
/// detected community, the ground-truth community of the given seed node.
///
/// `seeds[i]` must be the seed node from which detected community `i` was
/// grown — this is the information CDRW naturally produces. When seeds are
/// not available use [`f_score`], which matches each detected community to
/// the ground-truth community of its best-overlapping member.
pub fn f_score_for_seeds(
    detected: &Partition,
    seeds: &[VertexId],
    ground_truth: &Partition,
) -> FScoreReport {
    let scores = detected
        .communities()
        .map(|(index, members)| {
            let seed = seeds
                .get(index)
                .copied()
                .unwrap_or_else(|| members.first().copied().unwrap_or(0));
            score_seeded_community(index, members, seed, ground_truth)
        })
        .collect();
    FScoreReport::from_scores(scores)
}

/// Scores raw (possibly overlapping) seeded detections against the ground
/// truth — the exact quantity plotted in the paper's figures.
///
/// CDRW detects communities one seed at a time on the *full* graph, so a
/// later detection can legitimately re-cover vertices an earlier one already
/// claimed. The paper's F-score averages `F(Cˢ)` over the detected
/// communities as detected (not after overlap resolution), each scored
/// against the ground-truth community of its seed; this function computes
/// that average directly from `(members, seed)` pairs.
pub fn f_score_for_detections<'a, I>(detections: I, ground_truth: &Partition) -> FScoreReport
where
    I: IntoIterator<Item = (&'a [VertexId], VertexId)>,
{
    let scores = detections
        .into_iter()
        .enumerate()
        .map(|(index, (members, seed))| score_seeded_community(index, members, seed, ground_truth))
        .collect();
    FScoreReport::from_scores(scores)
}

/// Scores a detected partition against the ground truth.
///
/// Each detected community is matched to the ground-truth community with
/// which it overlaps the most (the natural choice when no seed information is
/// available — e.g. for the LPA and spectral baselines), then precision,
/// recall and F are computed per community and averaged.
pub fn f_score(detected: &Partition, ground_truth: &Partition) -> FScoreReport {
    FScoreReport::from_scores(best_overlap_scores(detected, ground_truth))
}

/// Scores a detected partition against the ground truth, weighting every
/// community by its share of the vertices.
///
/// The unweighted [`f_score`] averages per-community scores, so a partition
/// of one near-perfect giant community and dozens of stray singletons is
/// dominated by the singletons. Total partitions produced by the global
/// assembly layer (`cdrw_core::assembly`) legitimately contain singleton
/// fallbacks — isolated vertices, absorption leftovers — and the
/// size-weighted mean is the faithful summary of how much of the *graph* was
/// recovered: each community contributes its F-score times `|C| / n`. The
/// per-community scores in the returned report are identical to
/// [`f_score`]'s; only the aggregate `f_score`/`precision`/`recall` fields
/// weight them.
pub fn f_score_weighted(detected: &Partition, ground_truth: &Partition) -> FScoreReport {
    let per_community = best_overlap_scores(detected, ground_truth);
    let total: f64 = detected.num_vertices().max(1) as f64;
    let weight = |index: usize| detected.members(index).len() as f64 / total;
    let f_score = per_community
        .iter()
        .map(|s| s.f_score * weight(s.detected_community))
        .sum();
    let precision = per_community
        .iter()
        .map(|s| s.precision * weight(s.detected_community))
        .sum();
    let recall = per_community
        .iter()
        .map(|s| s.recall * weight(s.detected_community))
        .sum();
    FScoreReport {
        per_community,
        f_score,
        precision,
        recall,
    }
}

/// The shared matching step of [`f_score`] and [`f_score_weighted`]: each
/// detected community scored against its best-overlapping ground-truth
/// community.
fn best_overlap_scores(detected: &Partition, ground_truth: &Partition) -> Vec<CommunityScore> {
    detected
        .communities()
        .map(|(index, members)| {
            // Find the ground-truth community with maximum overlap.
            let mut best_truth = 0usize;
            let mut best_overlap = 0usize;
            for (truth_id, truth_members) in ground_truth.communities() {
                let overlap = intersection_size(members, truth_members);
                if overlap > best_overlap {
                    best_overlap = overlap;
                    best_truth = truth_id;
                }
            }
            let truth_members = ground_truth.members(best_truth);
            let overlap = best_overlap as f64;
            let precision = if members.is_empty() {
                0.0
            } else {
                overlap / members.len() as f64
            };
            let recall = if truth_members.is_empty() {
                0.0
            } else {
                overlap / truth_members.len() as f64
            };
            CommunityScore {
                detected_community: index,
                ground_truth_community: best_truth,
                precision,
                recall,
                f_score: harmonic(precision, recall),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn partition(assignment: Vec<usize>) -> Partition {
        Partition::from_assignment(assignment).unwrap()
    }

    #[test]
    fn perfect_detection_scores_one() {
        let truth = partition(vec![0, 0, 0, 1, 1, 1]);
        let detected = partition(vec![0, 0, 0, 1, 1, 1]);
        let report = f_score(&detected, &truth);
        assert!((report.f_score - 1.0).abs() < 1e-12);
        assert!((report.precision - 1.0).abs() < 1e-12);
        assert!((report.recall - 1.0).abs() < 1e-12);
        assert_eq!(report.per_community.len(), 2);
    }

    #[test]
    fn label_permutation_does_not_matter() {
        let truth = partition(vec![0, 0, 0, 1, 1, 1]);
        let detected = partition(vec![5, 5, 5, 2, 2, 2]);
        let report = f_score(&detected, &truth);
        assert!((report.f_score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn everything_in_one_community_has_perfect_recall_low_precision() {
        let truth = partition(vec![0, 0, 1, 1]);
        let detected = partition(vec![0, 0, 0, 0]);
        let report = f_score(&detected, &truth);
        assert_eq!(report.per_community.len(), 1);
        let score = &report.per_community[0];
        assert!((score.precision - 0.5).abs() < 1e-12);
        assert!((score.recall - 1.0).abs() < 1e-12);
        assert!((score.f_score - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn over_segmentation_has_perfect_precision_low_recall() {
        let truth = partition(vec![0, 0, 0, 0]);
        let detected = partition(vec![0, 0, 1, 1]);
        let report = f_score(&detected, &truth);
        for score in &report.per_community {
            assert!((score.precision - 1.0).abs() < 1e-12);
            assert!((score.recall - 0.5).abs() < 1e-12);
        }
        assert!((report.f_score - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn seeded_scoring_uses_the_seed_community() {
        let truth = partition(vec![0, 0, 0, 1, 1, 1]);
        // Detected community 0 mostly covers truth block 1 but its seed (5)
        // belongs to block 1, so the match is forced to block 1.
        let detected = Partition::from_communities(6, &[vec![0, 4, 5], vec![1, 2, 3]]).unwrap();
        let report = f_score_for_seeds(&detected, &[5, 1], &truth);
        let first = &report.per_community[0];
        assert_eq!(first.ground_truth_community, 1);
        assert!((first.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((first.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn seeded_scoring_falls_back_to_first_member_without_seed() {
        let truth = partition(vec![0, 0, 1, 1]);
        let detected = partition(vec![0, 0, 1, 1]);
        // Provide no seeds at all; fall back to first member of each community.
        let report = f_score_for_seeds(&detected, &[], &truth);
        assert!((report.f_score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_detection_scores_zero() {
        let truth = Partition::from_communities(4, &[vec![0, 1], vec![2, 3]]).unwrap();
        // A detected community that misses its seed's block entirely.
        let detected = Partition::from_communities(4, &[vec![0, 1, 2, 3]]).unwrap();
        let report = f_score_for_seeds(&detected, &[0], &truth);
        // precision 0.5, recall 1.0 → F = 2/3 (seed block is {0,1}).
        assert!((report.f_score - 2.0 / 3.0).abs() < 1e-12);
        let empty_score = score_seeded_community(0, &[], 0, &truth);
        assert_eq!(empty_score.f_score, 0.0);
    }

    #[test]
    fn raw_detections_are_scored_independently_of_overlap() {
        let truth = partition(vec![0, 0, 0, 1, 1, 1]);
        // Two detections that both (re)cover block 0 perfectly, plus one for
        // block 1: the average F must be 1.0 even though they overlap.
        let block0: Vec<usize> = vec![0, 1, 2];
        let block1: Vec<usize> = vec![3, 4, 5];
        let detections: Vec<(&[usize], usize)> = vec![(&block0, 0), (&block0, 2), (&block1, 4)];
        let report = f_score_for_detections(detections, &truth);
        assert_eq!(report.per_community.len(), 3);
        assert!((report.f_score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_f_score_follows_community_mass() {
        // One 8-vertex block recovered perfectly plus two stray singletons
        // split off a second 2-vertex block: the unweighted mean is dragged
        // to (1 + 2·(2/3)) / 3 ≈ 0.78 by the singletons, while the weighted
        // mean charges them only their 2 of 10 vertices.
        let truth = partition(vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1]);
        let detected = partition(vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 2]);
        let unweighted = f_score(&detected, &truth);
        let weighted = f_score_weighted(&detected, &truth);
        // Singleton vs its 2-vertex block: precision 1, recall 1/2, F = 2/3.
        let expected_unweighted = (1.0 + 2.0 * (2.0 / 3.0)) / 3.0;
        let expected_weighted = 0.8 + 2.0 * 0.1 * (2.0 / 3.0);
        assert!((unweighted.f_score - expected_unweighted).abs() < 1e-12);
        assert!((weighted.f_score - expected_weighted).abs() < 1e-12);
        assert!(weighted.f_score > unweighted.f_score);
        // The per-community scores are shared between the two reports.
        assert_eq!(weighted.per_community, unweighted.per_community);
        // A perfect partition scores 1 under both.
        let perfect = f_score_weighted(&truth, &truth);
        assert!((perfect.f_score - 1.0).abs() < 1e-12);
        assert!((perfect.precision - 1.0).abs() < 1e-12);
        assert!((perfect.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_edge_cases() {
        assert_eq!(harmonic(0.0, 0.0), 0.0);
        assert!((harmonic(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_of_sorted_slices() {
        assert_eq!(intersection_size(&[1, 3, 5, 7], &[2, 3, 4, 5]), 2);
        assert_eq!(intersection_size(&[], &[1, 2]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    proptest! {
        /// F-score is always within [0, 1] and equals 1 when detection equals
        /// ground truth.
        #[test]
        fn f_score_is_bounded(assignment in proptest::collection::vec(0usize..4, 2..40)) {
            let truth = partition(assignment.clone());
            let detected = partition(assignment);
            let self_report = f_score(&detected, &truth);
            prop_assert!((self_report.f_score - 1.0).abs() < 1e-12);

            let merged = Partition::single_community(truth.num_vertices()).unwrap();
            let merged_report = f_score(&merged, &truth);
            prop_assert!(merged_report.f_score >= 0.0 && merged_report.f_score <= 1.0 + 1e-12);
            prop_assert!(merged_report.recall >= 1.0 - 1e-12);
        }

        /// Precision and recall are individually bounded for arbitrary pairs
        /// of partitions over the same vertex set.
        #[test]
        fn precision_recall_bounded(
            truth_raw in proptest::collection::vec(0usize..3, 2..30),
            detected_raw in proptest::collection::vec(0usize..5, 2..30),
        ) {
            let n = truth_raw.len().min(detected_raw.len());
            let truth = partition(truth_raw[..n].to_vec());
            let detected = partition(detected_raw[..n].to_vec());
            let report = f_score(&detected, &truth);
            for score in &report.per_community {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&score.precision));
                prop_assert!((0.0..=1.0 + 1e-12).contains(&score.recall));
                prop_assert!((0.0..=1.0 + 1e-12).contains(&score.f_score));
            }
        }
    }
}
