//! Partition-similarity metrics: NMI and adjusted Rand index.
//!
//! These are not used by the paper itself but are the standard companions of
//! the F-score in the community-detection literature; the baseline-comparison
//! bench reports them alongside the paper's metric so that CDRW, LPA and the
//! spectral baselines can be compared on neutral ground.

use cdrw_graph::Partition;

/// Builds the contingency table `n_ij = |A_i ∩ B_j|` between two partitions.
///
/// Vertices only present in one partition (different lengths) are ignored —
/// callers are expected to compare partitions over the same vertex set.
fn contingency(a: &Partition, b: &Partition) -> Vec<Vec<usize>> {
    let mut table = vec![vec![0usize; b.num_communities()]; a.num_communities()];
    let n = a.num_vertices().min(b.num_vertices());
    for v in 0..n {
        let (ca, cb) = (
            a.community_of(v).expect("v < num_vertices"),
            b.community_of(v).expect("v < num_vertices"),
        );
        table[ca][cb] += 1;
    }
    table
}

/// Normalised mutual information between two partitions, in `[0, 1]`.
///
/// Uses the arithmetic-mean normalisation `2·I(A;B) / (H(A) + H(B))`. Two
/// identical partitions score 1.0; independent partitions score close to 0.
/// When both partitions are the single trivial community (zero entropy on
/// both sides) the NMI is defined as 1.0.
pub fn nmi(a: &Partition, b: &Partition) -> f64 {
    let n = a.num_vertices().min(b.num_vertices());
    if n == 0 {
        return 1.0;
    }
    let table = contingency(a, b);
    let nf = n as f64;
    let row_sums: Vec<usize> = table.iter().map(|row| row.iter().sum()).collect();
    let col_sums: Vec<usize> = (0..b.num_communities())
        .map(|j| table.iter().map(|row| row[j]).sum())
        .collect();

    let entropy = |sums: &[usize]| -> f64 {
        sums.iter()
            .filter(|&&s| s > 0)
            .map(|&s| {
                let p = s as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let h_a = entropy(&row_sums);
    let h_b = entropy(&col_sums);

    let mut mutual = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &count) in row.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let p_ij = count as f64 / nf;
            let p_i = row_sums[i] as f64 / nf;
            let p_j = col_sums[j] as f64 / nf;
            mutual += p_ij * (p_ij / (p_i * p_j)).ln();
        }
    }

    if h_a + h_b == 0.0 {
        // Both partitions are the trivial single community.
        1.0
    } else {
        (2.0 * mutual / (h_a + h_b)).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand index between two partitions, in `[-1, 1]`.
///
/// 1.0 for identical partitions, around 0 for independent ones; negative
/// values indicate less agreement than expected by chance. When the expected
/// index equals the maximum index (e.g. both partitions trivial) the ARI is
/// defined as 1.0.
pub fn adjusted_rand_index(a: &Partition, b: &Partition) -> f64 {
    let n = a.num_vertices().min(b.num_vertices());
    if n < 2 {
        return 1.0;
    }
    let table = contingency(a, b);
    let choose2 = |x: usize| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };

    let row_sums: Vec<usize> = table.iter().map(|row| row.iter().sum()).collect();
    let col_sums: Vec<usize> = (0..b.num_communities())
        .map(|j| table.iter().map(|row| row[j]).sum())
        .collect();

    let index: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        .sum();
    let sum_rows: f64 = row_sums.iter().map(|&s| choose2(s)).sum();
    let sum_cols: f64 = col_sums.iter().map(|&s| choose2(s)).sum();
    let total = choose2(n);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);

    if (max_index - expected).abs() < 1e-15 {
        1.0
    } else {
        (index - expected) / (max_index - expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn partition(assignment: Vec<usize>) -> Partition {
        Partition::from_assignment(assignment).unwrap()
    }

    #[test]
    fn identical_partitions_score_one() {
        let p = partition(vec![0, 0, 1, 1, 2, 2]);
        assert!((nmi(&p, &p) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        let a = partition(vec![0, 0, 1, 1, 2, 2]);
        let b = partition(vec![2, 2, 0, 0, 1, 1]);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_vs_trivial_is_one() {
        let a = partition(vec![0; 10]);
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_vs_structured_is_low() {
        let truth = partition(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let merged = partition(vec![0; 8]);
        assert!(nmi(&merged, &truth) < 0.1);
        assert!(adjusted_rand_index(&merged, &truth).abs() < 0.1);
    }

    #[test]
    fn half_agreement_is_between_zero_and_one() {
        let truth = partition(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let half = partition(vec![0, 0, 1, 1, 0, 0, 1, 1]);
        let score = nmi(&half, &truth);
        assert!((0.0..0.5).contains(&score), "nmi = {score}");
        let ari = adjusted_rand_index(&half, &truth);
        assert!(ari.abs() < 0.5, "ari = {ari}");
    }

    #[test]
    fn ari_detects_anti_correlation_is_still_bounded() {
        let a = partition(vec![0, 1, 0, 1, 0, 1]);
        let b = partition(vec![0, 0, 1, 1, 2, 2]);
        let ari = adjusted_rand_index(&a, &b);
        assert!((-1.0..=1.0).contains(&ari));
    }

    #[test]
    fn single_vertex_partitions() {
        let a = partition(vec![0]);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert_eq!(nmi(&a, &a), 1.0);
    }

    #[test]
    fn nmi_is_symmetric_on_example() {
        let a = partition(vec![0, 0, 1, 1, 2, 2, 2]);
        let b = partition(vec![0, 1, 1, 1, 0, 0, 2]);
        assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }

    proptest! {
        /// Both metrics are symmetric and bounded for arbitrary partitions.
        #[test]
        fn metrics_are_symmetric_and_bounded(
            a_raw in proptest::collection::vec(0usize..4, 2..40),
            b_raw in proptest::collection::vec(0usize..4, 2..40),
        ) {
            let n = a_raw.len().min(b_raw.len());
            let a = partition(a_raw[..n].to_vec());
            let b = partition(b_raw[..n].to_vec());
            let nmi_ab = nmi(&a, &b);
            let nmi_ba = nmi(&b, &a);
            prop_assert!((nmi_ab - nmi_ba).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&nmi_ab));
            let ari_ab = adjusted_rand_index(&a, &b);
            let ari_ba = adjusted_rand_index(&b, &a);
            prop_assert!((ari_ab - ari_ba).abs() < 1e-9);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ari_ab));
        }

        /// Self-comparison is always perfect.
        #[test]
        fn self_comparison_is_perfect(raw in proptest::collection::vec(0usize..5, 2..40)) {
            let p = partition(raw);
            prop_assert!((nmi(&p, &p) - 1.0).abs() < 1e-9);
            prop_assert!((adjusted_rand_index(&p, &p) - 1.0).abs() < 1e-9);
        }
    }
}
