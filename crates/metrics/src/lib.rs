//! # cdrw-metrics
//!
//! Accuracy metrics for community detection, matching Section IV of
//! *Efficient Distributed Community Detection in the Stochastic Block Model*
//! (ICDCS 2019).
//!
//! The paper scores a detection against the planted ground truth with the
//! seed-based F-score: for a community `Cˢ` detected from seed `s`, with
//! ground-truth community `C_g ∋ s`,
//!
//! ```text
//! precision(Cˢ) = |Cˢ ∩ C_g| / |Cˢ|
//! recall(Cˢ)    = |Cˢ ∩ C_g| / |C_g|
//! F(Cˢ)         = 2·precision·recall / (precision + recall)
//! ```
//!
//! and the overall score is the average F over all detected communities.
//! This crate implements that metric ([`f_score`], [`f_score_for_seeds`]) plus
//! two standard partition-similarity metrics used by the baseline comparison
//! bench: normalised mutual information ([`nmi`]) and the adjusted Rand index
//! ([`adjusted_rand_index`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fscore;
mod pairwise;

pub use fscore::{
    f_score, f_score_for_detections, f_score_for_seeds, f_score_weighted, score_seeded_community,
    CommunityScore, FScoreReport,
};
pub use pairwise::{adjusted_rand_index, nmi};
