//! Conformance suite of the k-machine execution engine.
//!
//! Three pillars, mirroring the engine's contract:
//!
//! 1. **Bit-identity** — the sharded pipeline's [`cdrw_core::DetectionResult`]
//!    (members, traces, partition, assembly report) compares equal to the
//!    sequential [`cdrw_core::Cdrw::detect_all`] for every criterion /
//!    ensemble / assembly combination, across shard counts `k ∈ {1, 2, 3, 8}`
//!    and arbitrary graphs (property-pinned).
//! 2. **Message conformance** — the *measured* per-round edge-delta counts
//!    equal the `cdrw-congest` exact-delta model (`sparse_walk_step_cost`),
//!    round by round, and the per-detection totals equal the CONGEST runner's
//!    `flood` accounts on the same instances.
//! 3. **Intentional deviations** (documented in `docs/PAPER_MAP.md`) are
//!    asserted, not assumed: physical rounds ≤ modelled lane rounds (batched
//!    lanes share one exchange), and the flood is a strict *subset* of the
//!    full modelled cost (coordination waves stay modelled-only).

use cdrw_congest::{CongestCdrw, CongestConfig};
use cdrw_core::{AssemblyPolicy, Cdrw, CdrwConfig, EnsemblePolicy, MixingCriterion};
use cdrw_gen::{generate_ppm, PpmParams};
use cdrw_graph::{Graph, GraphBuilder};
use cdrw_kmachine::{KMachineConfig, KMachineEngine, KMachineRunReport};
use proptest::prelude::*;

fn engine_for(config: CdrwConfig, k: usize, partition_seed: u64) -> KMachineEngine {
    KMachineEngine::new(
        KMachineConfig::new(k)
            .with_congest(CongestConfig::new(config))
            .with_partition_seed(partition_seed),
    )
    .unwrap()
}

/// Runs the engine and checks the full contract against the sequential
/// driver: bit-identical result, measured == modelled flood per physical
/// round, and the batching deviation (physical ≤ lane rounds).
fn assert_matches_sequential(
    graph: &Graph,
    config: CdrwConfig,
    k: usize,
    partition_seed: u64,
) -> KMachineRunReport {
    let expected = Cdrw::new(config).detect_all(graph).unwrap();
    let report = engine_for(config, k, partition_seed).run(graph).unwrap();
    assert_eq!(report.num_machines, k);
    assert_eq!(report.result, expected, "k = {k} diverged from sequential");
    let ledger = &report.conformance;
    for round in &ledger.per_round {
        assert_eq!(
            round.measured_messages, round.modelled_messages,
            "round {} of k = {k}",
            round.round
        );
    }
    assert_eq!(ledger.measured_messages, ledger.modelled_messages);
    assert_eq!(ledger.physical_rounds, ledger.per_round.len() as u64);
    assert!(ledger.physical_rounds <= ledger.lane_rounds);
    report
}

/// Diffs the engine's measured ledger against the CONGEST runner's `flood`
/// accounts, detection by detection, and asserts the modelled-only
/// coordination deviation.
fn assert_matches_congest_model(graph: &Graph, config: CdrwConfig, k: usize, partition_seed: u64) {
    let congest = CongestCdrw::new(CongestConfig::new(config))
        .detect_all(graph)
        .unwrap();
    let report = assert_matches_sequential(graph, config, k, partition_seed);
    // The CONGEST runner reports the same decisions without per-step traces,
    // so compare the decision content rather than the full trace-bearing
    // result (which `assert_matches_sequential` already pinned bit-identical
    // to the sequential driver).
    assert_eq!(report.result.partition(), congest.result.partition());
    assert_eq!(
        report.result.detections().len(),
        congest.result.detections().len()
    );
    for (ours, theirs) in report
        .result
        .detections()
        .iter()
        .zip(congest.result.detections())
    {
        assert_eq!(ours.seed, theirs.seed);
        assert_eq!(ours.members, theirs.members);
    }

    let ledger = &report.conformance;
    assert_eq!(ledger.per_detection.len(), congest.per_community.len());
    for (flood, community) in ledger.per_detection.iter().zip(&congest.per_community) {
        assert_eq!(flood.seed, community.seed);
        assert_eq!(
            flood.measured_messages, community.flood.messages,
            "seed {}: measured flood diverged from the congest model",
            community.seed
        );
        assert_eq!(flood.lane_rounds, community.flood.rounds);
        assert_eq!(flood.measured_messages, flood.modelled_messages);
        // Deviation: batched lanes share a physical exchange.
        assert!(flood.physical_rounds <= flood.lane_rounds);
        // Deviation: sweeps/coordination are modelled-only, so the flood is
        // never the whole charged cost (any walk also pays size checks).
        assert!(community.flood.rounds <= community.cost.rounds);
        assert!(community.flood.messages <= community.cost.messages);
    }
    match (&ledger.assembly, &congest.assembly) {
        (Some(flood), Some(assembly)) => {
            assert_eq!(flood.measured_messages, assembly.flood.messages);
            assert_eq!(flood.lane_rounds, assembly.flood.rounds);
            assert!(flood.physical_rounds <= flood.lane_rounds);
        }
        (None, None) => {}
        (engine, congest) => panic!(
            "assembly ledgers out of sync: engine = {}, congest = {}",
            engine.is_some(),
            congest.is_some()
        ),
    }
}

fn complete_graph(n: usize) -> Graph {
    GraphBuilder::from_edges(n, (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v)))).unwrap()
}

/// Re-builds `graph` with a deterministic heterogeneous weight on every edge
/// (a function of the endpoints only, so every driver sees the same lane).
fn with_synthetic_weights(graph: &Graph) -> Graph {
    let mut b = GraphBuilder::new(graph.num_vertices());
    for u in graph.vertices() {
        for &v in graph.neighbor_slice(u) {
            if u < v {
                let w = 0.5 + ((u * 31 + v * 7) % 8) as f64 * 0.25;
                b.add_weighted_edge(u, v, w).unwrap();
            }
        }
    }
    b.build()
}

/// Re-builds `graph` with an explicit all-ones weight lane.
fn with_unit_weights(graph: &Graph) -> Graph {
    let mut b = GraphBuilder::new(graph.num_vertices());
    for u in graph.vertices() {
        for &v in graph.neighbor_slice(u) {
            if u < v {
                b.add_weighted_edge(u, v, 1.0).unwrap();
            }
        }
    }
    b.build()
}

fn ppm_instance() -> (Graph, f64) {
    let n = 96;
    let p = 12.0 * (n as f64).ln() / n as f64;
    let q = p / 40.0;
    let params = PpmParams::new(n, 2, p.min(1.0), q).unwrap();
    let (graph, _) = generate_ppm(&params, 7).unwrap();
    let delta = params.expected_block_conductance().clamp(0.01, 1.0);
    (graph, delta)
}

#[test]
fn complete_graph_measured_messages_match_the_congest_model() {
    let graph = complete_graph(10);
    let config = CdrwConfig::builder().seed(3).delta(0.2).build();
    for k in [1, 2, 3, 8] {
        assert_matches_congest_model(&graph, config, k, 11);
    }
}

#[test]
fn ppm_measured_messages_match_the_congest_model() {
    let (graph, delta) = ppm_instance();
    let config = CdrwConfig::builder().seed(5).delta(delta).build();
    assert_matches_congest_model(&graph, config, 4, 1);
}

#[test]
fn ppm_ensemble_and_assembly_match_the_congest_model() {
    let (graph, delta) = ppm_instance();
    let config = CdrwConfig::builder()
        .seed(5)
        .delta(delta)
        .ensemble(3, 2)
        .assembly(2, 1)
        .build();
    assert_matches_congest_model(&graph, config, 4, 9);
}

#[test]
fn every_policy_combination_is_bit_identical_on_a_ppm() {
    let (graph, delta) = ppm_instance();
    let combos: [(MixingCriterion, EnsemblePolicy, AssemblyPolicy); 4] = [
        (
            MixingCriterion::Renormalized,
            EnsemblePolicy::Single,
            AssemblyPolicy::Raw,
        ),
        (
            MixingCriterion::Strict,
            EnsemblePolicy::Ensemble {
                walks: 3,
                quorum: 2,
            },
            AssemblyPolicy::Raw,
        ),
        (
            MixingCriterion::Lazy(0.5),
            EnsemblePolicy::Single,
            AssemblyPolicy::Pooled {
                reseed: 0,
                quorum: 0,
            },
        ),
        (
            MixingCriterion::Renormalized,
            EnsemblePolicy::Ensemble {
                walks: 2,
                quorum: 1,
            },
            AssemblyPolicy::Pooled {
                reseed: 2,
                quorum: 1,
            },
        ),
    ];
    for (criterion, ensemble, assembly) in combos {
        let config = CdrwConfig::builder()
            .seed(2)
            .delta(delta)
            .criterion(criterion)
            .ensemble_policy(ensemble)
            .assembly_policy(assembly)
            .build();
        assert_matches_sequential(&graph, config, 3, 4);
    }
}

#[test]
fn weighted_ppm_measured_messages_match_the_congest_model() {
    // The cost model is weight-neutral: one message per edge traversal, so
    // the measured-vs-modelled identity must hold unchanged on a weighted
    // instance.
    let (graph, delta) = ppm_instance();
    let weighted = with_synthetic_weights(&graph);
    assert!(weighted.is_weighted());
    let config = CdrwConfig::builder().seed(5).delta(delta).build();
    assert_matches_congest_model(&weighted, config, 4, 1);
}

#[test]
fn weighted_ensemble_and_assembly_match_the_congest_model() {
    let (graph, delta) = ppm_instance();
    let weighted = with_synthetic_weights(&graph);
    let config = CdrwConfig::builder()
        .seed(5)
        .delta(delta)
        .ensemble(3, 2)
        .assembly(2, 1)
        .build();
    assert_matches_congest_model(&weighted, config, 4, 9);
}

#[test]
fn unit_weight_lane_is_bit_identical_to_the_unweighted_run() {
    // All-weights-1.0 must reproduce the unweighted run exactly — results
    // and message ledgers — across the distributed drivers.
    let (graph, delta) = ppm_instance();
    let unit = with_unit_weights(&graph);
    assert!(unit.is_weighted());
    let config = CdrwConfig::builder()
        .seed(5)
        .delta(delta)
        .ensemble(2, 1)
        .assembly(1, 1)
        .build();
    for k in [1usize, 3] {
        let plain = engine_for(config, k, 11).run(&graph).unwrap();
        let weighted = engine_for(config, k, 11).run(&unit).unwrap();
        assert_eq!(plain.result, weighted.result, "k = {k}");
        assert_eq!(
            plain.conformance.measured_messages,
            weighted.conformance.measured_messages
        );
        assert_eq!(
            plain.conformance.physical_rounds,
            weighted.conformance.physical_rounds
        );
    }
}

proptest! {
    /// Weighted conformance: the sharded pipeline stays bit-identical to the
    /// sequential driver on arbitrary *weighted* graphs, and the weight-
    /// neutral message model still matches the measured counts.
    #[test]
    fn sharded_pipeline_is_bit_identical_on_weighted_graphs(
        edges in proptest::collection::vec((0usize..10, 0usize..10, 1u8..12), 1..30),
        algo_seed in 0u64..1_000,
        partition_seed in 0u64..1_000,
    ) {
        let clean: Vec<_> = edges
            .into_iter()
            .filter(|(u, v, _)| u != v)
            .map(|(u, v, w)| (u, v, w as f64 * 0.25))
            .collect();
        prop_assume!(!clean.is_empty());
        let graph = GraphBuilder::from_weighted_edges(10, clean).unwrap();
        let config = CdrwConfig::builder()
            .seed(algo_seed)
            .delta(0.2)
            .ensemble(2, 1)
            .assembly(1, 1)
            .build();
        for k in [1usize, 2, 4] {
            assert_matches_sequential(&graph, config, k, partition_seed);
        }
    }

    /// Satellite 1: the sharded pipeline is bit-identical to the sequential
    /// driver over arbitrary graphs and partitions, for `k ∈ {1, 2, 3, 8}`
    /// and all three assembly policies (with and without the ensemble).
    #[test]
    fn sharded_pipeline_is_bit_identical_to_detect_all(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 1..40),
        algo_seed in 0u64..1_000,
        partition_seed in 0u64..1_000,
    ) {
        let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
        prop_assume!(!clean.is_empty());
        let graph = GraphBuilder::from_edges(12, clean).unwrap();
        let combos: [(EnsemblePolicy, AssemblyPolicy); 4] = [
            (EnsemblePolicy::Single, AssemblyPolicy::Raw),
            (
                EnsemblePolicy::Ensemble { walks: 3, quorum: 2 },
                AssemblyPolicy::Pooled { reseed: 0, quorum: 0 },
            ),
            (
                EnsemblePolicy::Single,
                AssemblyPolicy::Pooled { reseed: 2, quorum: 1 },
            ),
            (
                EnsemblePolicy::Ensemble { walks: 2, quorum: 1 },
                AssemblyPolicy::Pooled { reseed: 1, quorum: 1 },
            ),
        ];
        for (ensemble, assembly) in combos {
            let config = CdrwConfig::builder()
                .seed(algo_seed)
                .delta(0.2)
                .ensemble_policy(ensemble)
                .assembly_policy(assembly)
                .build();
            for k in [1usize, 2, 3, 8] {
                assert_matches_sequential(&graph, config, k, partition_seed);
            }
        }
    }
}
