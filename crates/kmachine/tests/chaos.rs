//! Chaos suite of the fault-tolerant sharded runtime.
//!
//! The contract under test (ISSUE 10 tentpole):
//!
//! * **Recoverable plans are invisible in the result.** For any seeded
//!   drop/delay/duplicate schedule — and crashes within the recovery
//!   budget — `run_chaos` returns a [`cdrw_core::DetectionResult`] that
//!   compares `PartialEq`-equal to the sequential driver's, and the
//!   conformance ledger still shows measured == modelled per physical round
//!   (retries and replays are charged to the [`FaultLog`], not the ledger).
//! * **Unrecoverable plans are a typed error, never a hang.** A shard
//!   crashed more times than [`ResiliencePolicy::max_recoveries`] fails the
//!   run with [`CdrwError::ShardFailure`]; a watchdog asserts the engine
//!   returns promptly instead of wedging.
//! * **The zero plan is free.** A fault-free [`FaultPlan`] leaves a clean
//!   fault log and the inert transport wrapper changes nothing.

use std::time::Duration;

use cdrw_congest::CongestConfig;
use cdrw_core::{Cdrw, CdrwConfig, CdrwError, DetectionResult};
use cdrw_graph::{Graph, GraphBuilder};
use cdrw_kmachine::{FaultPlan, KMachineConfig, KMachineEngine, KMachineRunReport};
use proptest::prelude::*;

fn small_graph() -> Graph {
    // Two dense pockets joined by a bridge: enough structure for several
    // detections and message rounds while staying fast under fault schedules
    // full of retry backoffs.
    GraphBuilder::from_edges(
        10,
        [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (5, 7),
            (6, 7),
            (6, 8),
            (7, 8),
            (8, 9),
            (5, 9),
        ],
    )
    .unwrap()
}

fn config() -> CdrwConfig {
    CdrwConfig::builder().seed(9).delta(0.2).build()
}

fn engine(k: usize) -> KMachineEngine {
    KMachineEngine::new(
        KMachineConfig::new(k)
            .with_congest(CongestConfig::new(config()))
            .with_partition_seed(3),
    )
    .unwrap()
}

fn expected(graph: &Graph) -> DetectionResult {
    Cdrw::new(config()).detect_all(graph).unwrap()
}

/// Runs the plan and pins the full recoverable contract.
fn assert_chaos_is_invisible(k: usize, plan: &FaultPlan) -> KMachineRunReport {
    let graph = small_graph();
    let want = expected(&graph);
    let report = engine(k).run_chaos(&graph, plan).unwrap();
    assert_eq!(
        report.result, want,
        "k = {k}, plan seed {} diverged from sequential",
        plan.seed
    );
    for round in &report.conformance.per_round {
        assert_eq!(
            round.measured_messages, round.modelled_messages,
            "k = {k}: conformance ledger polluted by retries in round {}",
            round.round
        );
    }
    report
}

#[test]
fn a_fault_free_plan_leaves_a_clean_fault_log() {
    let graph = small_graph();
    let want = expected(&graph);
    for k in [1usize, 3] {
        let report = engine(k)
            .with_fault_plan(FaultPlan::fault_free())
            .run(&graph)
            .unwrap();
        assert_eq!(report.result, want);
        assert!(
            report.fault_log.is_clean(),
            "k = {k}: {:?}",
            report.fault_log
        );
    }
}

#[test]
fn crash_recovery_restores_the_exact_result() {
    // Kill shard 1 mid-run: the coordinator must re-materialise it from its
    // checkpoint and finish with the bit-identical answer.
    let plan = FaultPlan::seeded(41).with_crash(1, 6);
    let report = assert_chaos_is_invisible(2, &plan);
    assert_eq!(report.fault_log.recoveries.len(), 1);
    let recovery = report.fault_log.recoveries[0];
    assert_eq!(recovery.shard, 1);
    assert!(recovery.at_seq >= 6);
    assert!(recovery.replay_from <= recovery.at_seq);
    assert!(report.fault_log.timeouts > 0);
}

#[test]
fn single_shard_crash_recovers_from_its_own_checkpoint() {
    // k = 1: no peers to assist, so recovery leans entirely on the
    // checkpoint plus the coordinator's command log.
    let plan = FaultPlan::seeded(5).with_crash(0, 7);
    let report = assert_chaos_is_invisible(1, &plan);
    assert_eq!(report.fault_log.recoveries.len(), 1);
}

#[test]
fn repeated_crashes_within_budget_all_recover() {
    // Two separate crashes of the same shard (the second fires during the
    // post-recovery run), still within the aggressive budget of 3.
    let plan = FaultPlan::seeded(13).with_crash(0, 4).with_crash(0, 12);
    let report = assert_chaos_is_invisible(2, &plan);
    assert_eq!(report.fault_log.recoveries.len(), 2);
}

#[test]
fn exhausted_recovery_budget_is_a_typed_error_not_a_hang() {
    // More crashes than `max_recoveries` (aggressive allows 3): the run must
    // fail with `ShardFailure` — inside a watchdog so a wedged coordinator
    // fails the test instead of hanging the suite.
    let plan = FaultPlan::seeded(2)
        .with_crash(0, 2)
        .with_crash(0, 3)
        .with_crash(0, 4)
        .with_crash(0, 5)
        .with_crash(0, 6);
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let graph = small_graph();
        let _ = tx.send(engine(2).run_chaos(&graph, &plan));
    });
    let outcome = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("the engine hung instead of failing over");
    match outcome {
        Err(CdrwError::ShardFailure { shard, seq, .. }) => {
            assert_eq!(shard, 0);
            assert!(seq >= 2);
        }
        other => panic!("expected ShardFailure, got {other:?}"),
    }
}

#[test]
fn invalid_plans_are_rejected_up_front() {
    let graph = small_graph();
    let plan = FaultPlan::seeded(1).with_drop_rate(1.5);
    match engine(2).run_chaos(&graph, &plan) {
        Err(CdrwError::InvalidConfig { field, .. }) => assert_eq!(field, "fault_plan"),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

proptest! {
    /// The tentpole property: any recoverable seeded plan — mixed drops,
    /// delays, duplicates, and up to one in-budget crash — yields a
    /// `DetectionResult` equal to the sequential driver's, with the
    /// conformance ledger intact.
    #[test]
    fn recoverable_plans_never_change_the_answer(
        seed in 0u64..10_000,
        drop_rate in 0.0f64..0.12,
        delay_rate in 0.0f64..0.08,
        duplicate_rate in 0.0f64..0.08,
        delay_ops in 1u32..5,
        k in 1usize..4,
        crash_shard in 0usize..3,
        // `< 2` means "no crash": roughly half the cases crash a shard.
        crash_at in 0u64..12,
    ) {
        let mut plan = FaultPlan::seeded(seed)
            .with_drop_rate(drop_rate)
            .with_delay(delay_rate, delay_ops)
            .with_duplicate_rate(duplicate_rate);
        if crash_at >= 2 {
            plan = plan.with_crash(crash_shard % k, crash_at);
        }
        assert_chaos_is_invisible(k, &plan);
    }
}
