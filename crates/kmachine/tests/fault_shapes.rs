//! Fault-shape tests: adversarial partition layouts the random vertex
//! partition is unlikely to produce, built deterministically with
//! [`RandomVertexPartition::from_assignment`] and pinned bit-identical to the
//! sequential driver.
//!
//! * more shards than vertices (`k > n`, some shards own nothing),
//! * a shard owning only an isolated vertex,
//! * a boundary vertex whose neighbours are *all* remote (a star centre
//!   homed alone — every edge delta it emits crosses a shard boundary).

use cdrw_congest::CongestConfig;
use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_graph::{Graph, GraphBuilder};
use cdrw_kmachine::{KMachineConfig, KMachineEngine, RandomVertexPartition};

fn run_pinned(graph: &Graph, assignment: Vec<usize>, k: usize) {
    let config = CdrwConfig::builder().seed(9).delta(0.2).build();
    let expected = Cdrw::new(config).detect_all(graph).unwrap();
    let partition = RandomVertexPartition::from_assignment(assignment, k);
    let engine =
        KMachineEngine::new(KMachineConfig::new(k).with_congest(CongestConfig::new(config)))
            .unwrap();
    let report = engine.run_with_partition(graph, &partition).unwrap();
    assert_eq!(report.result, expected);
    for round in &report.conformance.per_round {
        assert_eq!(round.measured_messages, round.modelled_messages);
    }
}

#[test]
fn more_shards_than_vertices_leaves_empty_shards_harmless() {
    // A 4-vertex path on 7 shards: shards 1, 2, 4 and 6 own nothing and must
    // still participate in every exchange barrier.
    let graph = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    run_pinned(&graph, vec![5, 0, 3, 6], 7);
}

#[test]
fn a_shard_owning_only_an_isolate_never_sends_mass() {
    // Vertex 4 is isolated and homed alone on shard 2; its detection is the
    // zero-degree singleton path and must not disturb the message protocol.
    let graph = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
    run_pinned(&graph, vec![0, 0, 1, 1, 2], 3);
}

#[test]
fn a_boundary_vertex_with_all_neighbours_remote_is_exact() {
    // Star centre 0 homed alone on shard 0, all five leaves on shard 1:
    // every delta the centre emits crosses the boundary, and every delta it
    // receives comes from remote leaves.
    let graph = GraphBuilder::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
    run_pinned(&graph, vec![0, 1, 1, 1, 1, 1], 2);
}

#[test]
fn single_shard_degenerates_to_the_sequential_driver() {
    // k = 1 exercises the full protocol against a single worker: every
    // delta is shard-local, the exchange barrier is empty.
    let graph = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    run_pinned(&graph, vec![0, 0, 0, 0, 0], 1);
}
