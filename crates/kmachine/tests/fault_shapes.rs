//! Fault-shape tests: adversarial partition layouts the random vertex
//! partition is unlikely to produce, built deterministically with
//! [`RandomVertexPartition::from_assignment`] and pinned bit-identical to the
//! sequential driver.
//!
//! * more shards than vertices (`k > n`, some shards own nothing),
//! * a shard owning only an isolated vertex,
//! * a boundary vertex whose neighbours are *all* remote (a star centre
//!   homed alone — every edge delta it emits crosses a shard boundary).

use cdrw_congest::CongestConfig;
use cdrw_core::{Cdrw, CdrwConfig};
use cdrw_graph::{Graph, GraphBuilder};
use cdrw_kmachine::{FaultPlan, KMachineConfig, KMachineEngine, RandomVertexPartition};

fn run_pinned(graph: &Graph, assignment: Vec<usize>, k: usize) {
    run_pinned_chaos(graph, assignment, k, None);
}

fn run_pinned_chaos(graph: &Graph, assignment: Vec<usize>, k: usize, plan: Option<&FaultPlan>) {
    let config = CdrwConfig::builder().seed(9).delta(0.2).build();
    let expected = Cdrw::new(config).detect_all(graph).unwrap();
    let partition = RandomVertexPartition::from_assignment(assignment, k);
    let engine =
        KMachineEngine::new(KMachineConfig::new(k).with_congest(CongestConfig::new(config)))
            .unwrap();
    let report = match plan {
        Some(plan) => engine
            .run_chaos_with_partition(graph, &partition, plan)
            .unwrap(),
        None => engine.run_with_partition(graph, &partition).unwrap(),
    };
    assert_eq!(report.result, expected);
    for round in &report.conformance.per_round {
        assert_eq!(round.measured_messages, round.modelled_messages);
    }
}

#[test]
fn more_shards_than_vertices_leaves_empty_shards_harmless() {
    // A 4-vertex path on 7 shards: shards 1, 2, 4 and 6 own nothing and must
    // still participate in every exchange barrier.
    let graph = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    run_pinned(&graph, vec![5, 0, 3, 6], 7);
}

#[test]
fn a_shard_owning_only_an_isolate_never_sends_mass() {
    // Vertex 4 is isolated and homed alone on shard 2; its detection is the
    // zero-degree singleton path and must not disturb the message protocol.
    let graph = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
    run_pinned(&graph, vec![0, 0, 1, 1, 2], 3);
}

#[test]
fn a_boundary_vertex_with_all_neighbours_remote_is_exact() {
    // Star centre 0 homed alone on shard 0, all five leaves on shard 1:
    // every delta the centre emits crosses the boundary, and every delta it
    // receives comes from remote leaves.
    let graph = GraphBuilder::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
    run_pinned(&graph, vec![0, 1, 1, 1, 1, 1], 2);
}

#[test]
fn single_shard_degenerates_to_the_sequential_driver() {
    // k = 1 exercises the full protocol against a single worker: every
    // delta is shard-local, the exchange barrier is empty.
    let graph = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    run_pinned(&graph, vec![0, 0, 0, 0, 0], 1);
}

// ---- chaos matrices: the adversarial layouts above, replayed under seeded
// fault schedules across k ∈ {1, 2, 3, 8}, still pinned bit-identical ----

fn matrix_graph() -> (Graph, Vec<usize>) {
    // Eight vertices striped round-robin so every k ∈ {1, 2, 3, 8} leaves at
    // least one boundary edge per shard.
    let graph = GraphBuilder::from_edges(
        8,
        [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 4),
        ],
    )
    .unwrap();
    (graph, (0..8).collect())
}

fn striped(assignment: &[usize], k: usize) -> Vec<usize> {
    assignment.iter().map(|&v| v % k).collect()
}

#[test]
fn drop_matrix_is_bit_identical_across_shard_counts() {
    let (graph, vertices) = matrix_graph();
    for k in [1usize, 2, 3, 8] {
        for seed in [1u64, 77] {
            let plan = FaultPlan::seeded(seed).with_drop_rate(0.1);
            run_pinned_chaos(&graph, striped(&vertices, k), k, Some(&plan));
        }
    }
}

#[test]
fn duplicate_matrix_is_bit_identical_across_shard_counts() {
    let (graph, vertices) = matrix_graph();
    for k in [1usize, 2, 3, 8] {
        let plan = FaultPlan::seeded(23).with_duplicate_rate(0.15);
        run_pinned_chaos(&graph, striped(&vertices, k), k, Some(&plan));
    }
}

#[test]
fn reorder_matrix_is_bit_identical_across_shard_counts() {
    // Delays re-deliver messages a few transport operations later — the
    // reordering case: sequence numbers and (seq, from) keys must absorb it.
    let (graph, vertices) = matrix_graph();
    for k in [1usize, 2, 3, 8] {
        let plan = FaultPlan::seeded(31).with_delay(0.15, 3);
        run_pinned_chaos(&graph, striped(&vertices, k), k, Some(&plan));
    }
}

#[test]
fn crash_matrix_is_bit_identical_across_shard_counts() {
    let (graph, vertices) = matrix_graph();
    for k in [1usize, 2, 3, 8] {
        let plan = FaultPlan::seeded(47).with_crash(k - 1, 5);
        run_pinned_chaos(&graph, striped(&vertices, k), k, Some(&plan));
    }
}

#[test]
fn mixed_fault_matrix_is_bit_identical_across_shard_counts() {
    let (graph, vertices) = matrix_graph();
    for k in [1usize, 2, 3, 8] {
        let plan = FaultPlan::seeded(59)
            .with_drop_rate(0.06)
            .with_delay(0.06, 2)
            .with_duplicate_rate(0.06)
            .with_crash(0, 8);
        run_pinned_chaos(&graph, striped(&vertices, k), k, Some(&plan));
    }
}
