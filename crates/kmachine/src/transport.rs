//! Message transport between the coordinator and the worker shards.
//!
//! The execution engine's protocol is deliberately small — four message
//! kinds, strictly round-synchronous — so the [`Transport`] trait can stay a
//! two-method mailbox: `send` to a peer, blocking `recv` from anyone. The
//! in-process implementation ([`MpscTransport`], built by [`mpsc_mesh`]) runs
//! every shard on its own thread over [`std::sync::mpsc`] channels; a socket
//! implementation would serialise [`Message`] and keep the same call sites
//! (all payloads are plain `usize`/`u32`/`f64` data).
//!
//! ## Protocol
//!
//! One detection pipeline run is a sequence of commands from the coordinator,
//! each processed by every shard in order:
//!
//! * [`Message::LoadLanes`] — reset the listed walk lanes; the shard homing a
//!   lane's seed loads the point mass. No reply (per-shard command order is
//!   FIFO, so a following `Step` observes the load).
//! * [`Message::Step`] — one physical walk round for the listed lanes: every
//!   shard emits its mass deltas ([`cdrw_walk::shard::emit_step_deltas`]),
//!   sends each peer its bucket in one [`Message::Deltas`], absorbs the
//!   `k − 1` buckets it receives (plus its own, which never touches the
//!   wire), and replies [`Message::StepDone`] with its owned slice of every
//!   stepped lane's support.
//! * [`Message::Halt`] — shut the shard down.
//!
//! Rounds are globally synchronous — the coordinator collects every
//! `StepDone` before issuing the next command — so at most one `Deltas`
//! per (sender, receiver) pair is ever in flight and a shard can never
//! receive round `r + 1` data while still in round `r`.

use std::sync::mpsc::{channel, Receiver, Sender};

use cdrw_graph::VertexId;
use cdrw_walk::shard::MassDelta;

/// A walk lane's deltas addressed to one receiving shard, for one round.
#[derive(Debug, Clone)]
pub struct LaneDeltas {
    /// The walk lane the deltas belong to.
    pub lane: u32,
    /// The mass contributions, in the sender's emission order.
    pub deltas: Vec<MassDelta>,
}

/// A shard's post-step report for one walk lane.
#[derive(Debug, Clone)]
pub struct LaneState {
    /// The walk lane.
    pub lane: u32,
    /// Edge messages this shard emitted for the lane this round (its share
    /// of the CONGEST flood cost).
    pub emitted_messages: u64,
    /// The shard-owned slice of the lane's support after the step:
    /// `(vertex, mass)`, ascending by vertex, zero-mass entries included.
    pub support: Vec<(VertexId, f64)>,
}

/// A protocol message.
#[derive(Debug, Clone)]
pub enum Message {
    /// Coordinator → shard: reset the listed lanes to fresh point-mass walks.
    LoadLanes {
        /// `(lane, seed)` pairs; every shard resets the lane, the seed's
        /// home shard loads the mass.
        seeds: Vec<(u32, VertexId)>,
    },
    /// Coordinator → shard: run one walk round for the listed lanes.
    Step {
        /// Active lanes, ascending.
        lanes: Vec<u32>,
    },
    /// Shard → shard: one round's mass deltas for the receiving shard.
    Deltas {
        /// The sending shard (used only for debugging/assertions).
        from: usize,
        /// Per-lane delta buckets, ascending by lane.
        lanes: Vec<LaneDeltas>,
    },
    /// Shard → coordinator: the step round is complete on this shard.
    StepDone {
        /// The reporting shard.
        shard: usize,
        /// Per-lane emitted counts and owned support slices, ascending by
        /// lane.
        lanes: Vec<LaneState>,
    },
    /// Coordinator → shard: shut down.
    Halt,
}

/// A message peer: the coordinator or a worker shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// The coordinator process.
    Coordinator,
    /// Worker shard `i`.
    Shard(usize),
}

/// A shard's mailbox: send to any peer, blocking receive from all of them.
///
/// In-process today ([`MpscTransport`]); the engine only ever talks through
/// this trait, so a socket transport slots in without touching the shard or
/// coordinator logic.
pub trait Transport: Send {
    /// Sends `message` to `to`. Must not block on the receiver.
    fn send(&mut self, to: Peer, message: Message);
    /// Receives the next message addressed to this endpoint, blocking until
    /// one arrives.
    fn recv(&mut self) -> Message;
}

/// The in-process [`Transport`]: unbounded [`std::sync::mpsc`] channels, one
/// inbox per shard.
#[derive(Debug)]
pub struct MpscTransport {
    to_coordinator: Sender<Message>,
    to_shards: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
}

impl Transport for MpscTransport {
    fn send(&mut self, to: Peer, message: Message) {
        let sender = match to {
            Peer::Coordinator => &self.to_coordinator,
            Peer::Shard(i) => &self.to_shards[i],
        };
        // A disconnected receiver means the run is being torn down (e.g. a
        // panic elsewhere); dropping the message is the right response.
        let _ = sender.send(message);
    }

    fn recv(&mut self) -> Message {
        self.inbox
            .recv()
            .expect("transport disconnected while the shard is running")
    }
}

/// The coordinator's end of an in-process mesh.
#[derive(Debug)]
pub struct CoordinatorLinks {
    to_shards: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
}

impl CoordinatorLinks {
    /// Sends `message` to shard `i`.
    pub fn send(&self, i: usize, message: Message) {
        let _ = self.to_shards[i].send(message);
    }

    /// Broadcasts clones of `message` to every shard.
    pub fn broadcast(&self, message: &Message) {
        for sender in &self.to_shards {
            let _ = sender.send(message.clone());
        }
    }

    /// Receives the next shard reply, blocking.
    ///
    /// # Panics
    ///
    /// Panics if every shard hung up (a shard thread panicked).
    pub fn recv(&self) -> Message {
        self.inbox
            .recv()
            .expect("all shards disconnected while the coordinator is running")
    }

    /// Number of shards on the mesh.
    pub fn num_shards(&self) -> usize {
        self.to_shards.len()
    }
}

/// Builds a fully connected in-process mesh: the coordinator's links plus one
/// [`MpscTransport`] per shard.
pub fn mpsc_mesh(k: usize) -> (CoordinatorLinks, Vec<MpscTransport>) {
    let (to_coordinator, coordinator_inbox) = channel();
    let mut to_shards = Vec::with_capacity(k);
    let mut inboxes = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = channel();
        to_shards.push(tx);
        inboxes.push(rx);
    }
    let transports = inboxes
        .into_iter()
        .map(|inbox| MpscTransport {
            to_coordinator: to_coordinator.clone(),
            to_shards: to_shards.clone(),
            inbox,
        })
        .collect();
    (
        CoordinatorLinks {
            to_shards,
            inbox: coordinator_inbox,
        },
        transports,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_between_all_peers() {
        let (links, mut transports) = mpsc_mesh(2);
        assert_eq!(links.num_shards(), 2);
        // Coordinator → shard 0.
        links.send(0, Message::Halt);
        assert!(matches!(transports[0].recv(), Message::Halt));
        // Shard 0 → shard 1.
        transports[0].send(
            Peer::Shard(1),
            Message::Deltas {
                from: 0,
                lanes: Vec::new(),
            },
        );
        assert!(matches!(
            transports[1].recv(),
            Message::Deltas { from: 0, .. }
        ));
        // Shard 1 → coordinator.
        transports[1].send(
            Peer::Coordinator,
            Message::StepDone {
                shard: 1,
                lanes: Vec::new(),
            },
        );
        assert!(matches!(links.recv(), Message::StepDone { shard: 1, .. }));
        // Broadcast reaches both shards.
        links.broadcast(&Message::Step { lanes: vec![0] });
        for t in &mut transports {
            assert!(matches!(t.recv(), Message::Step { .. }));
        }
    }
}
