//! Message transport between the coordinator and the worker shards.
//!
//! The execution engine's protocol is deliberately small — a handful of
//! message kinds, strictly round-synchronous — so the [`Transport`] trait can
//! stay a small mailbox: `send` to a peer, blocking (or deadline-bounded)
//! `recv` from anyone. The in-process implementation ([`MpscTransport`],
//! built by [`mpsc_mesh`]) runs every shard on its own thread over
//! [`std::sync::mpsc`] channels; a socket implementation would serialise
//! [`Message`] and keep the same call sites (all payloads are plain
//! `usize`/`u32`/`u64`/`f64` data).
//!
//! ## Protocol
//!
//! One detection pipeline run is a sequence of *commands* from the
//! coordinator, each processed by every shard in order. Every command
//! carries a dense global sequence number `seq` (1, 2, 3, …) so that a
//! lossy or reordering transport is survivable: a shard executes exactly
//! the commands `last + 1`, treats a replayed `seq ≤ last` as a duplicate
//! (re-sending its cached replies instead of re-executing), and answers a
//! gap (`seq > last + 1`) with [`Message::Nack`] so the coordinator can
//! re-send the missing prefix from its command log.
//!
//! * [`Message::LoadLanes`] — reset the listed walk lanes; the shard homing
//!   a lane's seed loads the point mass. No direct reply; a gap is caught by
//!   the `Nack` rule when the next `Step` arrives.
//! * [`Message::Step`] — one physical walk round for the listed lanes: every
//!   shard emits its mass deltas ([`cdrw_walk::shard::emit_step_deltas`]),
//!   sends each peer its bucket in one [`Message::Deltas`], absorbs the
//!   `k − 1` buckets it receives (plus its own, which never touches the
//!   wire), and replies [`Message::StepDone`] with its owned slice of every
//!   stepped lane's support.
//! * [`Message::Checkpoint`] — shard → coordinator, every few rounds: a
//!   snapshot of every lane's owned support, enough to re-materialise the
//!   shard after a crash (see `ShardWorker::from_checkpoint`).
//! * [`Message::Assist`] — coordinator → shards during recovery: re-send
//!   your cached outgoing delta buckets for the named rounds to the named
//!   (re-materialised) shard so it can replay them.
//! * [`Message::Halt`] — shut the shard down.
//!
//! On a fault-free transport rounds are globally synchronous — the
//! coordinator collects every `StepDone` before issuing the next command —
//! so at most one `Deltas` per (sender, receiver) pair is in flight and the
//! sequence numbers are pure bookkeeping. Under faults (see the
//! [`chaos`](crate::chaos) module) they are what makes retries idempotent:
//! duplicates are absorbed by the `(seq, from)` keys, never double-counted.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use cdrw_graph::VertexId;
use cdrw_walk::shard::MassDelta;

/// Why a receive did not produce a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// Every sender for this endpoint hung up: the peer (or the whole run)
    /// is gone and no message can ever arrive again.
    Disconnected,
    /// No message arrived within the deadline. The peer may be slow, the
    /// message may have been lost — retrying is the caller's decision.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => f.write_str("transport disconnected"),
            TransportError::Timeout => f.write_str("transport receive timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A walk lane's deltas addressed to one receiving shard, for one round.
#[derive(Debug, Clone)]
pub struct LaneDeltas {
    /// The walk lane the deltas belong to.
    pub lane: u32,
    /// The mass contributions, in the sender's emission order.
    pub deltas: Vec<MassDelta>,
}

/// A shard's post-step report for one walk lane.
#[derive(Debug, Clone)]
pub struct LaneState {
    /// The walk lane.
    pub lane: u32,
    /// Edge messages this shard emitted for the lane this round (its share
    /// of the CONGEST flood cost).
    pub emitted_messages: u64,
    /// The shard-owned slice of the lane's support after the step:
    /// `(vertex, mass)`, ascending by vertex, zero-mass entries included.
    pub support: Vec<(VertexId, f64)>,
}

/// A protocol message.
#[derive(Debug, Clone)]
pub enum Message {
    /// Coordinator → shard: reset the listed lanes to fresh point-mass walks.
    LoadLanes {
        /// Global command sequence number.
        seq: u64,
        /// `(lane, seed)` pairs; every shard resets the lane, the seed's
        /// home shard loads the mass.
        seeds: Vec<(u32, VertexId)>,
    },
    /// Coordinator → shard: run one walk round for the listed lanes.
    Step {
        /// Global command sequence number.
        seq: u64,
        /// Active lanes, ascending.
        lanes: Vec<u32>,
    },
    /// Shard → shard: one round's mass deltas for the receiving shard.
    Deltas {
        /// The command sequence number of the `Step` these deltas belong to.
        seq: u64,
        /// The sending shard.
        from: usize,
        /// Per-lane delta buckets, ascending by lane.
        lanes: Vec<LaneDeltas>,
    },
    /// Shard → coordinator: the step round is complete on this shard.
    StepDone {
        /// The command sequence number of the completed `Step`.
        seq: u64,
        /// The reporting shard.
        shard: usize,
        /// Per-lane emitted counts and owned support slices, ascending by
        /// lane.
        lanes: Vec<LaneState>,
    },
    /// Shard → shard-coordinator liveness signal: the shard is alive and
    /// inside the exchange barrier of round `seq` (sent when a coordinator
    /// retry reaches a shard already working on that round). Distinguishes a
    /// *blocked* shard — waiting on a dead peer's deltas — from a dead one,
    /// so the coordinator recovers only the truly silent shard.
    Busy {
        /// The round the shard is working on.
        seq: u64,
        /// The reporting shard.
        shard: usize,
    },
    /// Shard → coordinator: a command arrived out of order (`seq` jumped
    /// past `expected`); re-send the command log from `expected` onwards.
    Nack {
        /// The complaining shard.
        shard: usize,
        /// The lowest sequence number the shard has not yet executed.
        expected: u64,
    },
    /// Shard → coordinator: a recovery snapshot of every lane's owned
    /// support, taken after executing command `seq`.
    Checkpoint {
        /// The last command sequence number covered by the snapshot.
        seq: u64,
        /// The reporting shard.
        shard: usize,
        /// Every lane's owned support slice, ascending by lane.
        lanes: Vec<LaneState>,
    },
    /// Coordinator → shards: shard `shard` was re-materialised and is
    /// replaying commands `from_seq..=to_seq`; re-send it your cached
    /// outgoing delta buckets for those rounds.
    Assist {
        /// The recovering shard.
        shard: usize,
        /// First command sequence number being replayed.
        from_seq: u64,
        /// Last command sequence number being replayed.
        to_seq: u64,
    },
    /// Coordinator → shard: shut down.
    Halt,
}

/// A message peer: the coordinator or a worker shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// The coordinator process.
    Coordinator,
    /// Worker shard `i`.
    Shard(usize),
}

/// A shard's mailbox: send to any peer, blocking receive from all of them.
///
/// In-process today ([`MpscTransport`]); the engine only ever talks through
/// this trait, so a socket transport slots in without touching the shard or
/// coordinator logic. The chaos wrapper ([`crate::chaos::ChaosTransport`])
/// also implements it, injecting seeded faults around any inner transport.
pub trait Transport: Send {
    /// Sends `message` to `to`. Must not block on the receiver.
    fn send(&mut self, to: Peer, message: Message);
    /// Receives the next message addressed to this endpoint, blocking until
    /// one arrives.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when no message can ever arrive.
    fn recv(&mut self) -> Result<Message, TransportError>;
    /// Receives the next message, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when the deadline expires first,
    /// [`TransportError::Disconnected`] when no message can ever arrive.
    fn recv_deadline(&mut self, timeout: Duration) -> Result<Message, TransportError>;
}

/// The mesh's routing table: one outgoing channel per shard. Shared (behind
/// a lock) so a crashed shard's slot can be swapped for a replacement's
/// fresh inbox without rebuilding every peer's transport.
type ShardRoutes = Arc<RwLock<Vec<Sender<Message>>>>;

/// The in-process [`Transport`]: unbounded [`std::sync::mpsc`] channels, one
/// inbox per shard, shard-to-shard routes resolved through the shared
/// routing table at send time.
#[derive(Debug)]
pub struct MpscTransport {
    to_coordinator: Sender<Message>,
    routes: ShardRoutes,
    inbox: Receiver<Message>,
}

impl Transport for MpscTransport {
    fn send(&mut self, to: Peer, message: Message) {
        // A disconnected receiver means the run is being torn down (e.g. a
        // panic elsewhere) or the peer crashed; dropping the message is the
        // right response — the retry protocol recovers.
        match to {
            Peer::Coordinator => {
                let _ = self.to_coordinator.send(message);
            }
            Peer::Shard(i) => {
                let routes = self.routes.read().expect("routing table poisoned");
                let _ = routes[i].send(message);
            }
        }
    }

    fn recv(&mut self) -> Result<Message, TransportError> {
        self.inbox.recv().map_err(|_| TransportError::Disconnected)
    }

    fn recv_deadline(&mut self, timeout: Duration) -> Result<Message, TransportError> {
        self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }
}

/// The coordinator's end of an in-process mesh.
#[derive(Debug)]
pub struct CoordinatorLinks {
    routes: ShardRoutes,
    inbox: Receiver<Message>,
    num_shards: usize,
}

impl CoordinatorLinks {
    /// Sends `message` to shard `i`.
    pub fn send(&self, i: usize, message: Message) {
        let routes = self.routes.read().expect("routing table poisoned");
        let _ = routes[i].send(message);
    }

    /// Broadcasts clones of `message` to every shard.
    pub fn broadcast(&self, message: &Message) {
        let routes = self.routes.read().expect("routing table poisoned");
        for sender in routes.iter() {
            let _ = sender.send(message.clone());
        }
    }

    /// Receives the next shard reply, blocking.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when every shard hung up (e.g. a
    /// shard thread panicked and the run is tearing down).
    pub fn recv(&self) -> Result<Message, TransportError> {
        self.inbox.recv().map_err(|_| TransportError::Disconnected)
    }

    /// Receives the next shard reply, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when the deadline expires first,
    /// [`TransportError::Disconnected`] when every shard hung up.
    pub fn recv_deadline(&self, timeout: Duration) -> Result<Message, TransportError> {
        self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }

    /// Number of shards on the mesh.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }
}

/// A handle that can mint a replacement [`MpscTransport`] for a crashed
/// shard: a fresh inbox is created and the shared routing table's slot is
/// swapped, so from that moment every peer's sends to the shard reach the
/// replacement. The old shard's inbox goes quiet and its worker exits by
/// patience timeout.
///
/// Holding a reconnector keeps the coordinator inbox's channel alive, so
/// coordinators that own one must use deadline-bounded receives.
#[derive(Debug, Clone)]
pub struct ShardReconnector {
    routes: ShardRoutes,
    to_coordinator: Sender<Message>,
}

impl ShardReconnector {
    /// Replaces shard `i`'s route with a fresh inbox and returns the
    /// transport wired to it.
    pub fn reconnect(&self, i: usize) -> MpscTransport {
        let (tx, rx) = channel();
        {
            let mut routes = self.routes.write().expect("routing table poisoned");
            routes[i] = tx;
        }
        MpscTransport {
            to_coordinator: self.to_coordinator.clone(),
            routes: Arc::clone(&self.routes),
            inbox: rx,
        }
    }
}

/// Builds a fully connected in-process mesh: the coordinator's links plus one
/// [`MpscTransport`] per shard.
///
/// The links hold no sender to the coordinator inbox, so once every shard
/// transport is dropped [`CoordinatorLinks::recv`] reports
/// [`TransportError::Disconnected`] instead of blocking forever.
pub fn mpsc_mesh(k: usize) -> (CoordinatorLinks, Vec<MpscTransport>) {
    let (links, transports, _) = mpsc_mesh_recoverable(k);
    (links, transports)
}

/// Builds the mesh of [`mpsc_mesh`] plus a [`ShardReconnector`] able to
/// re-wire crashed shards. Because the reconnector keeps the coordinator
/// channel alive, pair it with [`CoordinatorLinks::recv_deadline`].
pub fn mpsc_mesh_recoverable(k: usize) -> (CoordinatorLinks, Vec<MpscTransport>, ShardReconnector) {
    let (to_coordinator, coordinator_inbox) = channel();
    let mut route_senders = Vec::with_capacity(k);
    let mut inboxes = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = channel();
        route_senders.push(tx);
        inboxes.push(rx);
    }
    let routes: ShardRoutes = Arc::new(RwLock::new(route_senders));
    let transports = inboxes
        .into_iter()
        .map(|inbox| MpscTransport {
            to_coordinator: to_coordinator.clone(),
            routes: Arc::clone(&routes),
            inbox,
        })
        .collect();
    let reconnector = ShardReconnector {
        routes: Arc::clone(&routes),
        to_coordinator,
    };
    (
        CoordinatorLinks {
            routes,
            inbox: coordinator_inbox,
            num_shards: k,
        },
        transports,
        reconnector,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_between_all_peers() {
        let (links, mut transports) = mpsc_mesh(2);
        assert_eq!(links.num_shards(), 2);
        // Coordinator → shard 0.
        links.send(0, Message::Halt);
        assert!(matches!(transports[0].recv(), Ok(Message::Halt)));
        // Shard 0 → shard 1.
        transports[0].send(
            Peer::Shard(1),
            Message::Deltas {
                seq: 1,
                from: 0,
                lanes: Vec::new(),
            },
        );
        assert!(matches!(
            transports[1].recv(),
            Ok(Message::Deltas {
                seq: 1,
                from: 0,
                ..
            })
        ));
        // Shard 1 → coordinator.
        transports[1].send(
            Peer::Coordinator,
            Message::StepDone {
                seq: 1,
                shard: 1,
                lanes: Vec::new(),
            },
        );
        assert!(matches!(
            links.recv(),
            Ok(Message::StepDone {
                seq: 1,
                shard: 1,
                ..
            })
        ));
        // Broadcast reaches both shards.
        links.broadcast(&Message::Step {
            seq: 2,
            lanes: vec![0],
        });
        for t in &mut transports {
            assert!(matches!(t.recv(), Ok(Message::Step { seq: 2, .. })));
        }
    }

    #[test]
    fn coordinator_recv_reports_disconnect_as_a_typed_error() {
        let (links, transports) = mpsc_mesh(2);
        // Every shard transport gone (their `to_coordinator` clones dropped):
        // the coordinator must observe a typed error, not panic or hang.
        drop(transports);
        assert!(matches!(links.recv(), Err(TransportError::Disconnected)));
        assert!(matches!(
            links.recv_deadline(Duration::from_millis(1)),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn recv_deadline_times_out_when_no_message_arrives() {
        let (links, mut transports) = mpsc_mesh(1);
        assert!(matches!(
            links.recv_deadline(Duration::from_millis(1)),
            Err(TransportError::Timeout)
        ));
        assert!(matches!(
            transports[0].recv_deadline(Duration::from_millis(1)),
            Err(TransportError::Timeout)
        ));
    }

    #[test]
    fn reconnect_reroutes_sends_to_the_replacement_inbox() {
        let (links, mut transports, reconnector) = mpsc_mesh_recoverable(2);
        // Swap shard 1 for a replacement; the old inbox goes quiet.
        let mut replacement = reconnector.reconnect(1);
        links.send(1, Message::Halt);
        transports[0].send(
            Peer::Shard(1),
            Message::Deltas {
                seq: 3,
                from: 0,
                lanes: Vec::new(),
            },
        );
        assert!(matches!(replacement.recv(), Ok(Message::Halt)));
        assert!(matches!(
            replacement.recv(),
            Ok(Message::Deltas { seq: 3, .. })
        ));
        // The old inbox's last sender (the routing-table slot) was dropped by
        // the swap: the orphaned worker observes disconnection and exits.
        assert!(matches!(
            transports[1].recv_deadline(Duration::from_millis(1)),
            Err(TransportError::Disconnected)
        ));
        // The replacement still reaches the coordinator.
        replacement.send(
            Peer::Coordinator,
            Message::Nack {
                shard: 1,
                expected: 2,
            },
        );
        assert!(matches!(
            links.recv(),
            Ok(Message::Nack {
                shard: 1,
                expected: 2
            })
        ));
    }
}
