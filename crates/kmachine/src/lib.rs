//! # cdrw-kmachine
//!
//! The k-machine ("Big Data") model simulation of CDRW, reproducing
//! Section III-B of *Efficient Distributed Community Detection in the
//! Stochastic Block Model* (ICDCS 2019).
//!
//! In the k-machine model the `n`-vertex input graph is distributed over
//! `k ≪ n` machines by the *random vertex partition* (RVP): every vertex is
//! hashed to a uniformly random machine, which becomes its *home machine* and
//! stores its incident edges. Machines communicate point-to-point over a
//! complete network of links, each carrying `B = O(log n)` bits per round;
//! the complexity measure is the number of communication rounds.
//!
//! The paper implements CDRW in this model by *simulating* the CONGEST
//! algorithm: when vertex `u` messages its neighbour `v`, the home machine of
//! `u` sends the same message to the home machine of `v` (no cost if they
//! share a machine). The round complexity then follows from the Conversion
//! Theorem of Klauck–Nanongkai–Pandurangan–Robinson (SODA 2015): a CONGEST
//! algorithm using `M` messages and `T` rounds runs in
//! `Õ(M/k² + ∆·T/k)` k-machine rounds.
//!
//! This crate provides:
//!
//! * [`RandomVertexPartition`] — the RVP mapping plus balance statistics
//!   (each machine holds `Õ(n/k)` vertices and `Õ(m/k + ∆)` edges, which the
//!   tests verify empirically);
//! * [`conversion_rounds`] — the Conversion Theorem bound;
//! * [`KMachineSimulator`] — runs the CONGEST CDRW runner, plugs its measured
//!   `M` and `T` into the conversion bound for the requested `k`, and also
//!   re-derives the paper's closed-form
//!   `Õ((n²/k² + n/(kr))(p + q(r−1)))` prediction for comparison;
//! * [`KMachineEngine`] — the *execution* engine: actually runs the pipeline
//!   distributed over `k` worker shards exchanging probability-mass deltas in
//!   explicit message rounds (see [`engine`] and [`transport`]), producing
//!   decisions bit-identical to the sequential driver alongside a
//!   measured-vs-modelled message-conformance ledger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod conversion;
pub mod engine;
mod partition;
pub mod shard;
pub mod transport;

pub use chaos::{ChaosHarness, ChaosTransport, FaultPlan, ShardCrash};
pub use conversion::{conversion_rounds, paper_round_bound, ConversionInput};
pub use engine::{
    DetectionFlood, FaultLog, KMachineEngine, KMachineRunReport, ResiliencePolicy,
    RoundConformance, ShardRecovery, WalkConformance,
};
pub use partition::{PartitionStats, RandomVertexPartition};
pub use shard::ShardOptions;
pub use transport::TransportError;

use cdrw_congest::{CongestCdrw, CongestConfig, CongestReport};
use cdrw_core::CdrwError;
use cdrw_graph::Graph;
use serde::{Deserialize, Serialize};

/// Configuration of a k-machine simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMachineConfig {
    /// Number of machines `k ≥ 2`.
    pub num_machines: usize,
    /// Link bandwidth `B` in bits per round (the model's `O(log n)`).
    pub bandwidth_bits: u64,
    /// Seed of the random vertex partition hash.
    pub partition_seed: u64,
    /// The CONGEST/CDRW configuration whose execution is converted.
    pub congest: CongestConfig,
}

impl KMachineConfig {
    /// Creates a configuration with `k` machines and default parameters.
    pub fn new(num_machines: usize) -> Self {
        KMachineConfig {
            num_machines,
            bandwidth_bits: 32,
            partition_seed: 0,
            congest: CongestConfig::default(),
        }
    }

    /// Sets the CONGEST configuration.
    pub fn with_congest(mut self, congest: CongestConfig) -> Self {
        self.congest = congest;
        self
    }

    /// Sets the partition seed.
    pub fn with_partition_seed(mut self, seed: u64) -> Self {
        self.partition_seed = seed;
        self
    }
}

/// Result of a k-machine simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMachineReport {
    /// Number of machines used.
    pub num_machines: usize,
    /// The measured CONGEST execution that was converted.
    pub congest: CongestReport,
    /// Balance statistics of the random vertex partition.
    pub partition: PartitionStats,
    /// Round bound from the Conversion Theorem applied to the measured
    /// CONGEST message and round counts.
    pub conversion_rounds: f64,
    /// The number of CONGEST messages that actually cross machine boundaries
    /// under this vertex partition (messages between co-located vertices are
    /// free). This refines `M` in the conversion bound.
    pub cross_machine_fraction: f64,
}

impl KMachineReport {
    /// The conversion bound recomputed with the measured cross-machine
    /// message fraction instead of the worst-case `M`.
    pub fn refined_rounds(&self) -> f64 {
        let input = ConversionInput {
            messages: (self.congest.total.messages as f64 * self.cross_machine_fraction) as u64,
            rounds: self.congest.total.rounds,
            max_degree: self.partition.max_degree as u64,
            num_machines: self.num_machines,
        };
        conversion_rounds(&input)
    }
}

/// Simulates CDRW in the k-machine model.
#[derive(Debug, Clone)]
pub struct KMachineSimulator {
    config: KMachineConfig,
}

impl KMachineSimulator {
    /// Creates a simulator with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CdrwError::InvalidConfig`] when `num_machines < 2`.
    pub fn new(config: KMachineConfig) -> Result<Self, CdrwError> {
        if config.num_machines < 2 {
            return Err(CdrwError::InvalidConfig {
                field: "num_machines",
                reason: format!(
                    "the k-machine model needs k ≥ 2, got {}",
                    config.num_machines
                ),
            });
        }
        Ok(KMachineSimulator { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &KMachineConfig {
        &self.config
    }

    /// Runs CDRW on the graph and reports the k-machine round complexity.
    ///
    /// # Errors
    ///
    /// Propagates CONGEST/CDRW failures (empty graph, no edges, invalid
    /// algorithm configuration).
    pub fn run(&self, graph: &Graph) -> Result<KMachineReport, CdrwError> {
        let congest = CongestCdrw::new(self.config.congest).detect_all(graph)?;
        let partition =
            RandomVertexPartition::new(graph, self.config.num_machines, self.config.partition_seed);
        let stats = partition.stats(graph);

        // Fraction of graph edges whose endpoints live on different machines;
        // CONGEST messages travel along edges, so this is (in expectation) the
        // fraction of messages that incur inter-machine communication.
        let cross_edges = graph
            .edges()
            .filter(|&(u, v)| partition.machine_of(u) != partition.machine_of(v))
            .count();
        let cross_machine_fraction = if graph.num_edges() == 0 {
            0.0
        } else {
            cross_edges as f64 / graph.num_edges() as f64
        };

        let input = ConversionInput {
            messages: congest.total.messages,
            rounds: congest.total.rounds,
            max_degree: graph.max_degree() as u64,
            num_machines: self.config.num_machines,
        };
        let rounds = conversion_rounds(&input);
        Ok(KMachineReport {
            num_machines: self.config.num_machines,
            congest,
            partition: stats,
            conversion_rounds: rounds,
            cross_machine_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrw_core::CdrwConfig;
    use cdrw_gen::{generate_ppm, PpmParams};

    fn setup(n: usize, r: usize) -> (Graph, f64) {
        let p = 12.0 * (n as f64).ln() / n as f64;
        let q = p / (20.0 * r as f64);
        let params = PpmParams::new(n, r, p.min(1.0), q.min(1.0)).unwrap();
        let (graph, _) = generate_ppm(&params, 3).unwrap();
        (graph, params.expected_block_conductance().clamp(0.01, 1.0))
    }

    #[test]
    fn k_less_than_two_is_rejected() {
        assert!(KMachineSimulator::new(KMachineConfig::new(1)).is_err());
        assert!(KMachineSimulator::new(KMachineConfig::new(0)).is_err());
        assert!(KMachineSimulator::new(KMachineConfig::new(2)).is_ok());
    }

    #[test]
    fn report_fields_are_consistent() {
        let (graph, delta) = setup(256, 2);
        let congest = CongestConfig::new(CdrwConfig::builder().seed(1).delta(delta).build());
        let config = KMachineConfig::new(8)
            .with_congest(congest)
            .with_partition_seed(5);
        let report = KMachineSimulator::new(config).unwrap().run(&graph).unwrap();
        assert_eq!(report.num_machines, 8);
        assert!(report.conversion_rounds > 0.0);
        assert!(report.cross_machine_fraction > 0.0 && report.cross_machine_fraction <= 1.0);
        assert!(report.refined_rounds() <= report.conversion_rounds + 1.0);
        assert_eq!(report.partition.num_machines, 8);
    }

    #[test]
    fn rounds_decrease_as_k_grows() {
        // §III-B: round complexity scales between 1/k and 1/k².
        let (graph, delta) = setup(256, 2);
        let congest = CongestConfig::new(CdrwConfig::builder().seed(1).delta(delta).build());
        let mut rounds = Vec::new();
        for k in [2usize, 4, 8, 16] {
            let config = KMachineConfig::new(k).with_congest(congest);
            let report = KMachineSimulator::new(config).unwrap().run(&graph).unwrap();
            rounds.push(report.conversion_rounds);
        }
        for window in rounds.windows(2) {
            assert!(
                window[1] < window[0],
                "rounds should decrease with k: {rounds:?}"
            );
        }
        // Doubling k should cut rounds by at least ~1.5× (between k and k²).
        assert!(rounds[0] / rounds[1] > 1.5, "{rounds:?}");
    }

    #[test]
    fn cross_machine_fraction_approaches_one_minus_one_over_k() {
        let (graph, delta) = setup(256, 2);
        let congest = CongestConfig::new(CdrwConfig::builder().seed(1).delta(delta).build());
        let config = KMachineConfig::new(16).with_congest(congest);
        let report = KMachineSimulator::new(config).unwrap().run(&graph).unwrap();
        // Under RVP a random edge crosses machines with probability 1 − 1/k.
        let expected = 1.0 - 1.0 / 16.0;
        assert!(
            (report.cross_machine_fraction - expected).abs() < 0.05,
            "fraction = {}, expected ≈ {expected}",
            report.cross_machine_fraction
        );
    }
}
