//! The shard worker: one machine of the k-machine execution.
//!
//! A [`ShardWorker`] owns a [`SubCsr`] slice of the graph and, per walk lane,
//! a [`WalkWorkspace`] holding the restriction of that lane's distribution to
//! the owned vertices. It runs a blocking message loop driven entirely by the
//! coordinator's commands (see [`crate::transport`] for the protocol); all
//! *decisions* — sweeps, growth tracking, ensemble votes, assembly — live on
//! the coordinator, which is the engine's documented deviation from the
//! paper's fully decentralised CONGEST machinery (PAPER_MAP deviation; the
//! coordination costs remain modelled by `cdrw-congest`).
//!
//! ## Surviving a lossy transport
//!
//! The worker tracks the last executed command sequence number and treats
//! every arriving command against it:
//!
//! * `seq == last + 1` — execute it (the normal case).
//! * `seq ≤ last` — a duplicate (a coordinator retry, or a chaos-delayed
//!   copy): for a `Step`, re-send the cached outgoing delta buckets and the
//!   cached `StepDone` reply for that round; never re-execute. A duplicate
//!   `LoadLanes` is ignored outright — re-running it would reset live walk
//!   state.
//! * `seq > last + 1` — a gap: reply [`Message::Nack`] naming the first
//!   missing sequence number so the coordinator re-sends its command log.
//!
//! Inter-shard `Deltas` are keyed by `(seq, from)`: buckets for a future
//! round are buffered, duplicates for an already-counted sender are
//! discarded, and stale rounds are dropped. Every `checkpoint_interval`
//! commands the worker ships a [`Message::Checkpoint`] snapshot of all lane
//! supports to the coordinator — the state a replacement worker is rebuilt
//! from ([`ShardWorker::from_checkpoint`]) after a crash, which is bit-exact
//! because a workspace's support order survives the snapshot/restore
//! round-trip (see [`WalkWorkspace::snapshot_sparse`]). A worker that hears
//! nothing for the configured patience window assumes the run is gone and
//! exits rather than blocking forever on a lost `Halt`.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

use cdrw_graph::{SubCsr, VertexId};
use cdrw_walk::shard::{absorb_step_deltas, emit_step_deltas, sort_step_deltas, MassDelta};
use cdrw_walk::WalkWorkspace;

use crate::transport::{LaneDeltas, LaneState, Message, Peer, Transport, TransportError};

/// Fault-tolerance knobs of one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardOptions {
    /// Send a [`Message::Checkpoint`] after every this-many executed
    /// commands (`0` = never checkpoint).
    pub checkpoint_interval: u64,
    /// Give up and exit when no message arrives for this long — the lost-
    /// `Halt` watchdog. Generous by default: the coordinator legitimately
    /// goes quiet between rounds while it sweeps and assembles.
    pub patience: Duration,
    /// How many completed rounds of outgoing buckets and `StepDone` replies
    /// to keep for duplicate-triggered re-sends and recovery assists. Must
    /// cover the replay window of a checkpoint-restored peer — at least two
    /// checkpoint intervals.
    pub cache_depth: usize,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            checkpoint_interval: 4,
            patience: Duration::from_secs(60),
            cache_depth: 10,
        }
    }
}

impl ShardOptions {
    /// Options consistent with a checkpoint interval: the reply cache spans
    /// two intervals (plus slack) so an assist can always cover the replay
    /// window from the coordinator's last received checkpoint.
    pub fn with_checkpoint_interval(interval: u64) -> Self {
        ShardOptions {
            checkpoint_interval: interval,
            cache_depth: (interval.saturating_mul(2) + 2).max(8) as usize,
            ..ShardOptions::default()
        }
    }
}

/// One completed round's cached artefacts, for duplicate-triggered re-sends.
#[derive(Debug)]
struct RoundCache {
    seq: u64,
    /// Outgoing delta buckets, indexed by destination shard (own slot empty).
    outgoing: Vec<Vec<LaneDeltas>>,
    /// The `StepDone` lanes reply.
    reply: Vec<LaneState>,
}

/// One worker shard of the execution engine.
#[derive(Debug)]
pub struct ShardWorker<'a> {
    id: usize,
    k: usize,
    n: usize,
    sub: SubCsr,
    /// Home machine of every global vertex (delta routing table).
    machine_of: &'a [usize],
    laziness: f64,
    options: ShardOptions,
    /// Last executed command sequence number.
    seq: u64,
    /// Per-lane shard-local walk state; grown on demand by `LoadLanes`.
    lanes: Vec<WalkWorkspace>,
    /// Reusable emission buffer.
    emitted: Vec<MassDelta>,
    /// Reusable per-destination delta buckets (`k` of them).
    buckets: Vec<Vec<MassDelta>>,
    /// Completed rounds, newest last, bounded by `options.cache_depth`.
    cache: VecDeque<RoundCache>,
}

impl<'a> ShardWorker<'a> {
    /// Creates the worker for shard `id` of `k`, owning `sub`.
    pub fn new(
        id: usize,
        k: usize,
        sub: SubCsr,
        machine_of: &'a [usize],
        laziness: f64,
        options: ShardOptions,
    ) -> Self {
        let n = sub.num_global_vertices();
        ShardWorker {
            id,
            k,
            n,
            sub,
            machine_of,
            laziness,
            options,
            seq: 0,
            lanes: Vec::new(),
            emitted: Vec::new(),
            buckets: (0..k).map(|_| Vec::new()).collect(),
            cache: VecDeque::new(),
        }
    }

    /// Re-materialises a crashed shard from its last checkpoint: the worker
    /// starts with `seq` already executed and every checkpointed lane's
    /// support restored bit-exactly. The coordinator replays the command log
    /// from `seq + 1` and peers re-send the matching delta rounds
    /// ([`Message::Assist`]), after which the replacement is
    /// indistinguishable from a worker that never died.
    #[allow(clippy::too_many_arguments)] // mirrors `new` plus the restart state
    pub fn from_checkpoint(
        id: usize,
        k: usize,
        sub: SubCsr,
        machine_of: &'a [usize],
        laziness: f64,
        options: ShardOptions,
        seq: u64,
        checkpoint: &[LaneState],
    ) -> Self {
        let mut worker = ShardWorker::new(id, k, sub, machine_of, laziness, options);
        worker.seq = seq;
        for lane in checkpoint {
            worker.ensure_lane(lane.lane);
            worker.lanes[lane.lane as usize]
                .load_sparse(&lane.support)
                .expect("checkpointed support is strictly ascending");
        }
        worker
    }

    /// Runs the blocking message loop until [`Message::Halt`], a patience
    /// timeout, or transport disconnection.
    pub fn run<T: Transport>(mut self, transport: &mut T) {
        // Delta buckets that raced ahead of this shard's own `Step` command
        // (a peer received its command first, or a recovery assist replayed
        // a future round), keyed by (seq, sender).
        let mut early: BTreeMap<(u64, usize), Vec<LaneDeltas>> = BTreeMap::new();
        let mut last_heard = Instant::now();
        loop {
            let message = match transport.recv_deadline(self.options.patience) {
                Ok(message) => message,
                Err(TransportError::Timeout) => {
                    if last_heard.elapsed() >= self.options.patience {
                        return; // Orphaned: the run is gone, don't block forever.
                    }
                    continue;
                }
                Err(TransportError::Disconnected) => return,
            };
            last_heard = Instant::now();
            match message {
                Message::LoadLanes { seq, seeds } => {
                    if seq == self.seq + 1 {
                        self.load_lanes(&seeds);
                        self.seq = seq;
                    } else if seq > self.seq + 1 {
                        self.nack(transport);
                    }
                    // A stale duplicate is ignored: re-running a load would
                    // reset live walk state.
                }
                Message::Step { seq, lanes } => {
                    if seq == self.seq + 1 {
                        if !self.step_round(seq, &lanes, transport, &mut early) {
                            return;
                        }
                        self.seq = seq;
                        self.maybe_checkpoint(transport);
                    } else if seq > self.seq + 1 {
                        self.nack(transport);
                    } else {
                        // Coordinator retry of a round we completed: its
                        // `StepDone` (or a peer's deltas) went missing.
                        self.resend_round(seq, transport, true);
                    }
                }
                Message::Deltas { seq, from, lanes } => {
                    if seq > self.seq {
                        early.entry((seq, from)).or_insert(lanes);
                    }
                }
                Message::Assist {
                    shard,
                    from_seq,
                    to_seq,
                } => self.assist(shard, from_seq, to_seq, transport),
                Message::Halt => return,
                // Stray traffic (chaos-delayed replies addressed elsewhere
                // on a real network would not even arrive here): ignore.
                Message::StepDone { .. }
                | Message::Nack { .. }
                | Message::Checkpoint { .. }
                | Message::Busy { .. } => {}
            }
            early.retain(|&(seq, _), _| seq > self.seq);
        }
    }

    fn nack<T: Transport>(&self, transport: &mut T) {
        transport.send(
            Peer::Coordinator,
            Message::Nack {
                shard: self.id,
                expected: self.seq + 1,
            },
        );
    }

    /// Re-sends a completed round's cached artefacts: the outgoing delta
    /// buckets to every peer and (when `with_reply`) the `StepDone` to the
    /// coordinator. A round that has aged out of the cache is ignored — the
    /// coordinator only retries recent rounds.
    fn resend_round<T: Transport>(&self, seq: u64, transport: &mut T, with_reply: bool) {
        let Some(entry) = self.cache.iter().find(|c| c.seq == seq) else {
            return;
        };
        for (m, bucket) in entry.outgoing.iter().enumerate() {
            if m != self.id {
                transport.send(
                    Peer::Shard(m),
                    Message::Deltas {
                        seq,
                        from: self.id,
                        lanes: bucket.clone(),
                    },
                );
            }
        }
        if with_reply {
            transport.send(
                Peer::Coordinator,
                Message::StepDone {
                    seq,
                    shard: self.id,
                    lanes: entry.reply.clone(),
                },
            );
        }
    }

    /// Serves a recovery assist: re-sends the cached outgoing buckets for
    /// every requested round directly to the recovering shard.
    fn assist<T: Transport>(&self, shard: usize, from_seq: u64, to_seq: u64, transport: &mut T) {
        if shard == self.id {
            return;
        }
        for entry in &self.cache {
            if entry.seq >= from_seq && entry.seq <= to_seq {
                transport.send(
                    Peer::Shard(shard),
                    Message::Deltas {
                        seq: entry.seq,
                        from: self.id,
                        lanes: entry.outgoing[shard].clone(),
                    },
                );
            }
        }
    }

    fn maybe_checkpoint<T: Transport>(&mut self, transport: &mut T) {
        let interval = self.options.checkpoint_interval;
        if interval == 0 || !self.seq.is_multiple_of(interval) {
            return;
        }
        let lanes = (0..self.lanes.len())
            .map(|lane| LaneState {
                lane: lane as u32,
                emitted_messages: 0,
                support: self.lanes[lane].snapshot_sparse(),
            })
            .collect();
        transport.send(
            Peer::Coordinator,
            Message::Checkpoint {
                seq: self.seq,
                shard: self.id,
                lanes,
            },
        );
    }

    fn ensure_lane(&mut self, lane: u32) {
        while self.lanes.len() <= lane as usize {
            self.lanes.push(WalkWorkspace::with_len(self.n));
        }
    }

    fn load_lanes(&mut self, seeds: &[(u32, VertexId)]) {
        for &(lane, seed) in seeds {
            self.ensure_lane(lane);
            let ws = &mut self.lanes[lane as usize];
            if self.machine_of[seed] == self.id {
                ws.load_point_mass(seed)
                    .expect("seed validated by the coordinator");
            } else {
                ws.load_sparse(&[]).expect("workspace is non-empty");
            }
        }
    }

    /// One physical walk round: emit, exchange, absorb, report. Returns
    /// `false` when the round was abandoned (halt, disconnection, or
    /// patience exhausted mid-barrier) and the worker should exit.
    fn step_round<T: Transport>(
        &mut self,
        seq: u64,
        lanes: &[u32],
        transport: &mut T,
        early: &mut BTreeMap<(u64, usize), Vec<LaneDeltas>>,
    ) -> bool {
        // Emit every lane's deltas, bucketed by the target's home shard.
        let mut outgoing: Vec<Vec<LaneDeltas>> = (0..self.k).map(|_| Vec::new()).collect();
        let mut reports: Vec<LaneState> = Vec::with_capacity(lanes.len());
        for &lane in lanes {
            self.ensure_lane(lane);
            self.emitted.clear();
            let messages = emit_step_deltas(
                &self.sub,
                self.laziness,
                &self.lanes[lane as usize],
                &mut self.emitted,
            );
            for bucket in &mut self.buckets {
                bucket.clear();
            }
            for &d in &self.emitted {
                self.buckets[self.machine_of[d.target]].push(d);
            }
            for (m, bucket) in self.buckets.iter_mut().enumerate() {
                outgoing[m].push(LaneDeltas {
                    lane,
                    deltas: std::mem::take(bucket),
                });
            }
            reports.push(LaneState {
                lane,
                emitted_messages: messages,
                support: Vec::new(),
            });
        }

        // Send every peer its bucket (always, even when empty — the barrier
        // counts k − 1 senders); keep our own. The buckets stay cached for
        // duplicate-triggered re-sends and recovery assists.
        for (m, bucket) in outgoing.iter().enumerate() {
            if m != self.id {
                transport.send(
                    Peer::Shard(m),
                    Message::Deltas {
                        seq,
                        from: self.id,
                        lanes: bucket.clone(),
                    },
                );
            }
        }
        let mut incoming: Vec<Vec<LaneDeltas>> = Vec::with_capacity(self.k);
        let mut have = vec![false; self.k];
        have[self.id] = true;
        incoming.push(std::mem::take(&mut outgoing[self.id]));
        for (from, seen) in have.iter_mut().enumerate() {
            if let Some(bucket) = early.remove(&(seq, from)) {
                if !*seen {
                    *seen = true;
                    incoming.push(bucket);
                }
            }
        }

        // Barrier: wait for every peer's bucket for this round, absorbing
        // duplicates/stale traffic and serving retries and assists so a
        // faulty transport cannot wedge two shards against each other.
        let mut waited = Instant::now();
        while incoming.len() < self.k {
            match transport.recv_deadline(Duration::from_millis(20)) {
                Ok(Message::Deltas {
                    seq: s,
                    from,
                    lanes,
                }) => {
                    waited = Instant::now();
                    if s == seq && !have[from] {
                        have[from] = true;
                        incoming.push(lanes);
                    } else if s > seq {
                        early.entry((s, from)).or_insert(lanes);
                    }
                }
                Ok(Message::Step { seq: s, .. }) => {
                    waited = Instant::now();
                    if s == seq {
                        // Coordinator retry of the round we are inside: a
                        // peer may be missing our buckets — re-send them —
                        // and tell the coordinator we are alive-but-blocked
                        // so it recovers the silent peer, not us.
                        for (m, bucket) in outgoing.iter().enumerate() {
                            if m != self.id {
                                transport.send(
                                    Peer::Shard(m),
                                    Message::Deltas {
                                        seq,
                                        from: self.id,
                                        lanes: bucket.clone(),
                                    },
                                );
                            }
                        }
                        transport.send(
                            Peer::Coordinator,
                            Message::Busy {
                                seq,
                                shard: self.id,
                            },
                        );
                    } else if s < seq {
                        self.resend_round(s, transport, true);
                    } else {
                        // A retry of a round we have not reached yet (we are
                        // replaying after recovery): we are alive, just
                        // behind — say so, or the coordinator re-recovers us.
                        transport.send(
                            Peer::Coordinator,
                            Message::Busy {
                                seq,
                                shard: self.id,
                            },
                        );
                    }
                }
                Ok(Message::Assist {
                    shard,
                    from_seq,
                    to_seq,
                }) => {
                    waited = Instant::now();
                    self.assist(shard, from_seq, to_seq, transport);
                }
                Ok(Message::Halt) => return false,
                Ok(_) => {}
                Err(TransportError::Timeout) => {
                    if waited.elapsed() >= self.options.patience {
                        return false;
                    }
                }
                Err(TransportError::Disconnected) => return false,
            }
        }

        // Absorb per lane: collect this lane's deltas from every sender,
        // sort into the sequential accumulation order, accumulate.
        for report in &mut reports {
            let lane = report.lane;
            let mut collected: Vec<MassDelta> = incoming
                .iter()
                .flat_map(|sender| {
                    sender
                        .iter()
                        .filter(|ld| ld.lane == lane)
                        .flat_map(|ld| ld.deltas.iter().copied())
                })
                .collect();
            sort_step_deltas(&mut collected);
            let ws = &mut self.lanes[lane as usize];
            absorb_step_deltas(ws, &collected);
            report.support = ws
                .support()
                .iter()
                .map(|&v| (v, ws.probability(v)))
                .collect();
        }
        transport.send(
            Peer::Coordinator,
            Message::StepDone {
                seq,
                shard: self.id,
                lanes: reports.clone(),
            },
        );
        // Our own bucket was consumed by the barrier; rebuild the cached
        // slot as empty (it is never re-sent to ourselves anyway).
        self.cache.push_back(RoundCache {
            seq,
            outgoing,
            reply: reports,
        });
        while self.cache.len() > self.options.cache_depth {
            self.cache.pop_front();
        }
        true
    }
}
