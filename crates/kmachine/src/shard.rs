//! The shard worker: one machine of the k-machine execution.
//!
//! A [`ShardWorker`] owns a [`SubCsr`] slice of the graph and, per walk lane,
//! a [`WalkWorkspace`] holding the restriction of that lane's distribution to
//! the owned vertices. It runs a blocking message loop driven entirely by the
//! coordinator's commands (see [`crate::transport`] for the protocol); all
//! *decisions* — sweeps, growth tracking, ensemble votes, assembly — live on
//! the coordinator, which is the engine's documented deviation from the
//! paper's fully decentralised CONGEST machinery (PAPER_MAP deviation; the
//! coordination costs remain modelled by `cdrw-congest`).

use cdrw_graph::{SubCsr, VertexId};
use cdrw_walk::shard::{absorb_step_deltas, emit_step_deltas, sort_step_deltas, MassDelta};
use cdrw_walk::WalkWorkspace;

use crate::transport::{LaneDeltas, LaneState, Message, Peer, Transport};

/// One worker shard of the execution engine.
#[derive(Debug)]
pub struct ShardWorker<'a> {
    id: usize,
    k: usize,
    n: usize,
    sub: SubCsr,
    /// Home machine of every global vertex (delta routing table).
    machine_of: &'a [usize],
    laziness: f64,
    /// Per-lane shard-local walk state; grown on demand by `LoadLanes`.
    lanes: Vec<WalkWorkspace>,
    /// Reusable emission buffer.
    emitted: Vec<MassDelta>,
    /// Reusable per-destination delta buckets (`k` of them).
    buckets: Vec<Vec<MassDelta>>,
}

impl<'a> ShardWorker<'a> {
    /// Creates the worker for shard `id` of `k`, owning `sub`.
    pub fn new(id: usize, k: usize, sub: SubCsr, machine_of: &'a [usize], laziness: f64) -> Self {
        let n = sub.num_global_vertices();
        ShardWorker {
            id,
            k,
            n,
            sub,
            machine_of,
            laziness,
            lanes: Vec::new(),
            emitted: Vec::new(),
            buckets: (0..k).map(|_| Vec::new()).collect(),
        }
    }

    /// Runs the blocking message loop until [`Message::Halt`].
    pub fn run<T: Transport>(mut self, transport: &mut T) {
        // Deltas that raced ahead of this shard's own `Step` command (a peer
        // received its command first); consumed by the next step round.
        let mut early: Vec<Vec<LaneDeltas>> = Vec::new();
        loop {
            match transport.recv() {
                Message::LoadLanes { seeds } => self.load_lanes(&seeds),
                Message::Step { lanes } => self.step_round(&lanes, transport, &mut early),
                Message::Deltas { lanes, .. } => early.push(lanes),
                Message::Halt => return,
                Message::StepDone { .. } => {
                    unreachable!("shards never receive StepDone")
                }
            }
        }
    }

    fn ensure_lane(&mut self, lane: u32) {
        while self.lanes.len() <= lane as usize {
            self.lanes.push(WalkWorkspace::with_len(self.n));
        }
    }

    fn load_lanes(&mut self, seeds: &[(u32, VertexId)]) {
        for &(lane, seed) in seeds {
            self.ensure_lane(lane);
            let ws = &mut self.lanes[lane as usize];
            if self.machine_of[seed] == self.id {
                ws.load_point_mass(seed)
                    .expect("seed validated by the coordinator");
            } else {
                ws.load_sparse(&[]).expect("workspace is non-empty");
            }
        }
    }

    /// One physical walk round: emit, exchange, absorb, report.
    fn step_round<T: Transport>(
        &mut self,
        lanes: &[u32],
        transport: &mut T,
        early: &mut Vec<Vec<LaneDeltas>>,
    ) {
        // Emit every lane's deltas, bucketed by the target's home shard.
        let mut outgoing: Vec<Vec<LaneDeltas>> = (0..self.k).map(|_| Vec::new()).collect();
        let mut reports: Vec<LaneState> = Vec::with_capacity(lanes.len());
        for &lane in lanes {
            self.ensure_lane(lane);
            self.emitted.clear();
            let messages = emit_step_deltas(
                &self.sub,
                self.laziness,
                &self.lanes[lane as usize],
                &mut self.emitted,
            );
            for bucket in &mut self.buckets {
                bucket.clear();
            }
            for &d in &self.emitted {
                self.buckets[self.machine_of[d.target]].push(d);
            }
            for (m, bucket) in self.buckets.iter_mut().enumerate() {
                outgoing[m].push(LaneDeltas {
                    lane,
                    deltas: std::mem::take(bucket),
                });
            }
            reports.push(LaneState {
                lane,
                emitted_messages: messages,
                support: Vec::new(),
            });
        }

        // Send every peer its bucket (always, even when empty — the barrier
        // counts k − 1 messages); keep our own.
        let mut incoming: Vec<Vec<LaneDeltas>> = Vec::with_capacity(self.k);
        for (m, bucket) in outgoing.into_iter().enumerate() {
            if m == self.id {
                incoming.push(bucket);
            } else {
                transport.send(
                    Peer::Shard(m),
                    Message::Deltas {
                        from: self.id,
                        lanes: bucket,
                    },
                );
            }
        }
        incoming.append(early);
        while incoming.len() < self.k {
            match transport.recv() {
                Message::Deltas { lanes, .. } => incoming.push(lanes),
                other => unreachable!("unexpected message during a step round: {other:?}"),
            }
        }

        // Absorb per lane: collect this lane's deltas from every sender,
        // sort into the sequential accumulation order, accumulate.
        for report in &mut reports {
            let lane = report.lane;
            let mut collected: Vec<MassDelta> = incoming
                .iter()
                .flat_map(|sender| {
                    sender
                        .iter()
                        .filter(|ld| ld.lane == lane)
                        .flat_map(|ld| ld.deltas.iter().copied())
                })
                .collect();
            sort_step_deltas(&mut collected);
            let ws = &mut self.lanes[lane as usize];
            absorb_step_deltas(ws, &collected);
            report.support = ws
                .support()
                .iter()
                .map(|&v| (v, ws.probability(v)))
                .collect();
        }
        transport.send(
            Peer::Coordinator,
            Message::StepDone {
                shard: self.id,
                lanes: reports,
            },
        );
    }
}
