//! The k-machine execution engine: CDRW running *on* the shards.
//!
//! Where [`crate::KMachineSimulator`] only prices a sequential execution,
//! [`KMachineEngine`] actually runs it distributed: the graph is split over
//! `k` worker shards by the [`crate::RandomVertexPartition`] (each holding a
//! [`cdrw_graph::SubCsr`] of its owned rows), every walk step is an explicit
//! message round of probability-mass deltas between the shards
//! ([`cdrw_walk::shard`]), and the full detect/ensemble/assembly pipeline of
//! [`cdrw_core::Cdrw::detect_all`] is driven to completion against the
//! sharded state.
//!
//! ## Conformance contract
//!
//! * **Decisions are bit-identical to the sequential driver.** The
//!   coordinator gathers each stepped lane's support from the shards
//!   (bit-identical to the sequential workspace — see the `cdrw_walk::shard`
//!   module docs for the accumulation-order argument) and runs the *same*
//!   public decision code as `Cdrw`: [`WalkEngine::sweep`],
//!   [`GrowthTracker`], `select_interior_seeds`/`community_scale_vote`/
//!   consensus, and [`cdrw_core::assembly::assemble_run`], over the pool
//!   order of [`cdrw_core::shuffled_seed_pool`]. The whole
//!   [`DetectionResult`] — members, traces, partition, assembly report —
//!   compares equal to `Cdrw::detect_all`'s.
//! * **Measured messages equal the modelled flood.** Every emitted edge
//!   delta is one counted message; per lane-round the count is exactly
//!   `sparse_walk_step_cost` on the pre-step distribution, which is also
//!   exactly the `flood` account the CONGEST runner charges per detection.
//!   [`WalkConformance`] carries measured and modelled side by side, per
//!   physical round and per detection, so the cost tests double as
//!   conformance tests of the real execution.
//!
//! Intentional deviations (asserted by the conformance suite, documented in
//! `docs/PAPER_MAP.md`): sweep/coordination costs (BFS trees, binary-search
//! aggregations, membership broadcasts) are *not* executed — the coordinator
//! decides centrally and those costs stay modelled-only — and lanes stepped
//! together share one physical round, so physical rounds ≤ modelled lane
//! rounds.
//!
//! ## Fault tolerance
//!
//! The coordinator never blocks unboundedly: every wait is a deadline
//! ([`CoordinatorLinks::recv_deadline`]) with exponential backoff, every
//! command carries a sequence number and is re-broadcast on timeout
//! (duplicates are absorbed by the shards — see [`crate::shard`]), and a
//! shard that stays silent past the retry budget is declared dead and
//! re-materialised from its last [`Message::Checkpoint`] plus a replay of
//! the command log (peers re-send the replay window's delta buckets on
//! [`Message::Assist`]). Replayed and duplicate traffic is charged to a
//! separate [`FaultLog`] — the conformance ledger counts only the first
//! accepted reply per round, so measured-vs-modelled equality survives
//! arbitrary recoverable fault schedules (deviation 16 in
//! `docs/PAPER_MAP.md`). When a shard exhausts
//! [`ResiliencePolicy::max_recoveries`] the run fails with the typed
//! [`CdrwError::ShardFailure`] — never a hang.

use std::time::Duration;

use cdrw_congest::primitives::sparse_walk_step_cost;
use cdrw_core::growth::WalkAnswer;
use cdrw_core::{
    assembly, shuffled_seed_pool, AssemblyPolicy, CdrwConfig, CdrwError, CommunityDetection,
    DetectionResult, DetectionTrace, EnsembleTrace, EnsembleWalkTrace, GrowthTracker, StepTrace,
};
use cdrw_graph::{Graph, SubCsr, VertexId};
use cdrw_walk::evidence::{community_scale_vote, select_interior_seeds, WalkEvidence};
use cdrw_walk::{WalkEngine, WalkWorkspace};

use crate::chaos::{ChaosHarness, FaultPlan};
use crate::partition::{PartitionStats, RandomVertexPartition};
use crate::shard::{ShardOptions, ShardWorker};
use crate::transport::{
    mpsc_mesh_recoverable, CoordinatorLinks, LaneState, Message, MpscTransport, TransportError,
};
use crate::KMachineConfig;

/// Message conformance of one physical walk round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundConformance {
    /// 1-based physical round index.
    pub round: u64,
    /// Lanes stepped together in this physical round.
    pub lanes: u32,
    /// Edge deltas the shards actually sent (summed over lanes).
    pub measured_messages: u64,
    /// `sparse_walk_step_cost` on each lane's pre-step distribution (summed).
    pub modelled_messages: u64,
}

/// Flood conformance of one detection (or of the assembly phase): the
/// measured execution next to the congest model's expected counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionFlood {
    /// The detection's seed (`usize::MAX` for the assembly phase).
    pub seed: VertexId,
    /// Per-lane walk rounds executed — the model's flood rounds.
    pub lane_rounds: u64,
    /// Physical rounds executed (≤ `lane_rounds`: batched lanes share one).
    pub physical_rounds: u64,
    /// Edge deltas actually sent.
    pub measured_messages: u64,
    /// The congest model's expected flood messages.
    pub modelled_messages: u64,
}

/// Walk-phase conformance ledger of one engine run.
#[derive(Debug, Clone, Default)]
pub struct WalkConformance {
    /// Physical message rounds executed.
    pub physical_rounds: u64,
    /// Per-lane walk rounds (what the congest model charges as flood rounds).
    pub lane_rounds: u64,
    /// Total edge deltas sent by the shards.
    pub measured_messages: u64,
    /// Total `sparse_walk_step_cost` messages over the same steps.
    pub modelled_messages: u64,
    /// Per-physical-round breakdown.
    pub per_round: Vec<RoundConformance>,
    /// Per-detection breakdown, in detection order.
    pub per_detection: Vec<DetectionFlood>,
    /// The assembly phase's breakdown (pooled assembly only).
    pub assembly: Option<DetectionFlood>,
}

/// One shard recovery event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecovery {
    /// The re-materialised shard.
    pub shard: usize,
    /// The command sequence number the run had reached when the shard was
    /// declared dead.
    pub at_seq: u64,
    /// The first command sequence number the replacement replayed (one past
    /// its restored checkpoint).
    pub replay_from: u64,
}

/// Every fault-handling action of one run, charged separately from the
/// conformance ledger: the base CONGEST cost model is unchanged by retries
/// and recovery (the ledger counts only the first accepted reply per
/// round), and this log is where the extra traffic is accounted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    /// Deadline expiries while waiting for shard replies.
    pub timeouts: u64,
    /// Command re-broadcasts after a timeout.
    pub retries: u64,
    /// Sequence-gap complaints received from shards.
    pub nacks: u64,
    /// Duplicate or replayed `StepDone` replies absorbed (not counted in the
    /// conformance ledger).
    pub duplicate_replies: u64,
    /// Edge deltas carried by those duplicate/replayed replies — the
    /// recovery overhead in model units.
    pub replayed_messages: u64,
    /// Shards that replied only after at least one retry of a round.
    pub stragglers: u64,
    /// Shard re-materialisations, in occurrence order.
    pub recoveries: Vec<ShardRecovery>,
}

impl FaultLog {
    /// Whether the run saw no fault-handling action at all.
    pub fn is_clean(&self) -> bool {
        self == &FaultLog::default()
    }
}

/// The coordinator's fault-tolerance budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Base deadline for one wait on shard replies; consecutive timeouts
    /// back off exponentially from here (doubling, capped at 32×).
    pub round_timeout: Duration,
    /// Consecutive timeouts tolerated (each followed by a command
    /// re-broadcast) before the still-silent shards are declared dead.
    pub max_retries: u32,
    /// Re-materialisations allowed per shard before the run fails with
    /// [`CdrwError::ShardFailure`].
    pub max_recoveries: u32,
    /// Shards checkpoint their lane state every this-many commands
    /// (`0` disables checkpointing — recovery then replays from scratch,
    /// which only works while the full command log and peer caches cover
    /// the run).
    pub checkpoint_interval: u64,
    /// How long a shard waits without hearing anything before assuming the
    /// run is gone and exiting (the lost-`Halt` watchdog).
    pub shard_patience: Duration,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        // Generous production defaults: a fault-free in-process round
        // completes in microseconds, so these never fire on a healthy mesh,
        // while a genuinely wedged shard is recovered within ~10 s.
        ResiliencePolicy {
            round_timeout: Duration::from_millis(250),
            max_retries: 4,
            max_recoveries: 2,
            checkpoint_interval: 4,
            shard_patience: Duration::from_secs(60),
        }
    }
}

impl ResiliencePolicy {
    /// A tight-deadline policy for fault-injection tests: retries fire in
    /// milliseconds so a chaos matrix sweeps quickly.
    pub fn aggressive() -> Self {
        ResiliencePolicy {
            round_timeout: Duration::from_millis(15),
            max_retries: 4,
            max_recoveries: 3,
            checkpoint_interval: 4,
            shard_patience: Duration::from_secs(10),
        }
    }

    /// The shard-side options this policy implies.
    fn shard_options(&self) -> ShardOptions {
        ShardOptions {
            checkpoint_interval: self.checkpoint_interval,
            patience: self.shard_patience,
            // The reply/bucket cache must cover the widest replay window a
            // recovery can need: up to two checkpoint intervals (the latest
            // checkpoint message may itself have been lost), plus slack.
            cache_depth: (self.checkpoint_interval.saturating_mul(2) + 2).max(8) as usize,
        }
    }
}

/// Report of one sharded execution.
#[derive(Debug, Clone)]
pub struct KMachineRunReport {
    /// Number of worker shards.
    pub num_machines: usize,
    /// The detection result — bit-identical to [`cdrw_core::Cdrw`]'s.
    pub result: DetectionResult,
    /// Balance statistics of the vertex partition used.
    pub partition: PartitionStats,
    /// Measured-vs-modelled walk message conformance.
    pub conformance: WalkConformance,
    /// Every retry, timeout, duplicate and recovery the run absorbed
    /// (empty on a healthy mesh).
    pub fault_log: FaultLog,
}

/// The real multi-shard CDRW execution engine.
///
/// Unlike the [`crate::KMachineSimulator`] (which requires `k ≥ 2` because a
/// one-machine "distributed" simulation is meaningless), the engine accepts
/// `k = 1`: a single shard exercises the full message protocol against
/// itself, which the property tests use as the degenerate base case.
#[derive(Debug, Clone)]
pub struct KMachineEngine {
    config: KMachineConfig,
    resilience: ResiliencePolicy,
    fault_plan: Option<FaultPlan>,
}

impl KMachineEngine {
    /// Creates an engine with the given configuration, default
    /// [`ResiliencePolicy`] and no fault injection.
    ///
    /// # Errors
    ///
    /// Returns [`CdrwError::InvalidConfig`] when `num_machines == 0`.
    pub fn new(config: KMachineConfig) -> Result<Self, CdrwError> {
        if config.num_machines == 0 {
            return Err(CdrwError::InvalidConfig {
                field: "num_machines",
                reason: "the execution engine needs k ≥ 1".to_string(),
            });
        }
        Ok(KMachineEngine {
            config,
            resilience: ResiliencePolicy::default(),
            fault_plan: None,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &KMachineConfig {
        &self.config
    }

    /// Replaces the fault-tolerance budget.
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Wraps every shard transport in a [`crate::chaos::ChaosTransport`]
    /// injecting the given plan's faults. The plan is validated at run time.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs the full detection pipeline on the shards, partitioning by the
    /// configured RVP seed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`cdrw_core::Cdrw::detect_all`], plus
    /// [`CdrwError::ShardFailure`] when a shard dies beyond the resilience
    /// budget.
    pub fn run(&self, graph: &Graph) -> Result<KMachineRunReport, CdrwError> {
        let partition =
            RandomVertexPartition::new(graph, self.config.num_machines, self.config.partition_seed);
        self.run_with_partition(graph, &partition)
    }

    /// Runs under fault injection with the tight-deadline
    /// [`ResiliencePolicy::aggressive`] budget: the standard entry point of
    /// the chaos conformance matrix. The result must still be bit-identical
    /// to the fault-free (and sequential) run whenever the plan is
    /// recoverable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KMachineEngine::run`], plus
    /// [`CdrwError::InvalidConfig`] for an invalid plan.
    pub fn run_chaos(
        &self,
        graph: &Graph,
        plan: &FaultPlan,
    ) -> Result<KMachineRunReport, CdrwError> {
        self.clone()
            .with_resilience(ResiliencePolicy::aggressive())
            .with_fault_plan(plan.clone())
            .run(graph)
    }

    /// [`KMachineEngine::run_chaos`] over an explicit partition.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KMachineEngine::run_chaos`].
    pub fn run_chaos_with_partition(
        &self,
        graph: &Graph,
        partition: &RandomVertexPartition,
        plan: &FaultPlan,
    ) -> Result<KMachineRunReport, CdrwError> {
        self.clone()
            .with_resilience(ResiliencePolicy::aggressive())
            .with_fault_plan(plan.clone())
            .run_with_partition(graph, partition)
    }

    /// Runs the pipeline over an explicit partition (fault-shape tests build
    /// adversarial layouts with
    /// [`RandomVertexPartition::from_assignment`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`cdrw_core::Cdrw::detect_all`].
    pub fn run_with_partition(
        &self,
        graph: &Graph,
        partition: &RandomVertexPartition,
    ) -> Result<KMachineRunReport, CdrwError> {
        let algorithm = &self.config.congest.algorithm;
        algorithm.validate()?;
        if graph.num_vertices() == 0 {
            return Err(CdrwError::EmptyGraph);
        }
        if graph.num_edges() == 0 {
            return Err(CdrwError::NoEdges);
        }
        let delta = algorithm.resolve_delta(graph)?;
        let k = partition.num_machines();
        let laziness = algorithm.criterion.laziness();
        let options = self.resilience.shard_options();

        let chaos = match &self.fault_plan {
            Some(plan) => {
                plan.validate().map_err(|reason| CdrwError::InvalidConfig {
                    field: "fault_plan",
                    reason,
                })?;
                Some(ChaosHarness::new(plan.clone()))
            }
            None => None,
        };
        let (links, transports, reconnector) = mpsc_mesh_recoverable(k);
        let assignment = partition.assignment();

        let outcome = std::thread::scope(|scope| {
            // Spawns one worker thread for shard `m`, extracting its SubCsr
            // fresh (recovery cannot reuse the dead worker's, which lives on
            // the wedged thread) and starting from the given checkpoint
            // (`seq == 0` with an empty checkpoint is a cold start).
            let spawn =
                |m: usize, transport: MpscTransport, seq: u64, checkpoint: Vec<LaneState>| {
                    let sub = SubCsr::extract(graph, partition.vertices_of(m), |v| {
                        partition.machine_of(v) == m
                    });
                    let worker = ShardWorker::from_checkpoint(
                        m,
                        k,
                        sub,
                        assignment,
                        laziness,
                        options,
                        seq,
                        &checkpoint,
                    );
                    match &chaos {
                        Some(harness) => {
                            let chaotic = harness.wrap(m, transport);
                            scope.spawn(move || {
                                let mut chaotic = chaotic;
                                worker.run(&mut chaotic);
                            });
                        }
                        None => {
                            scope.spawn(move || {
                                let mut transport = transport;
                                worker.run(&mut transport);
                            });
                        }
                    }
                };
            for (m, transport) in transports.into_iter().enumerate() {
                spawn(m, transport, 0, Vec::new());
            }
            let respawn = |m: usize, seq: u64, checkpoint: Vec<LaneState>| {
                spawn(m, reconnector.reconnect(m), seq, checkpoint);
            };
            let mut coordinator =
                Coordinator::new(algorithm, graph, &links, self.resilience, &respawn);
            let result = coordinator.detect_all(delta);
            links.broadcast(&Message::Halt);
            result.map(|r| (r, coordinator.conformance, coordinator.fault_log))
        });
        let (result, conformance, fault_log) = outcome?;
        Ok(KMachineRunReport {
            num_machines: k,
            result,
            partition: partition.stats(graph),
            conformance,
            fault_log,
        })
    }
}

/// The coordinator: owns the gathered per-lane global view, drives the shard
/// protocol, and replicates [`cdrw_core::Cdrw::detect_all`]'s control flow
/// over it using only the shared public decision components.
struct Coordinator<'g, 'l> {
    config: &'l CdrwConfig,
    graph: &'g Graph,
    engine: WalkEngine<'g>,
    links: &'l CoordinatorLinks,
    resilience: ResiliencePolicy,
    /// Re-materialises shard `m` from `(seq, checkpoint)` on a fresh
    /// transport (wired by the caller through the mesh's reconnector).
    respawn: &'l dyn Fn(usize, u64, Vec<LaneState>),
    /// Per-lane gathered global distributions — bit-identical to the
    /// sequential workspaces (the shards' owned slices concatenate to them).
    lanes: Vec<WalkWorkspace>,
    conformance: WalkConformance,
    /// Last issued command sequence number.
    seq: u64,
    /// Issued commands, ascending by seq, kept for `Nack`-triggered re-sends
    /// and recovery replay; pruned below the oldest shard checkpoint.
    command_log: Vec<(u64, Message)>,
    /// Per-shard newest received checkpoint: `(seq, all-lane snapshot)`.
    checkpoints: Vec<(u64, Vec<LaneState>)>,
    /// Per-shard re-materialisations consumed from the resilience budget.
    recoveries_used: Vec<u32>,
    fault_log: FaultLog,
}

impl<'g, 'l> Coordinator<'g, 'l> {
    fn new(
        config: &'l CdrwConfig,
        graph: &'g Graph,
        links: &'l CoordinatorLinks,
        resilience: ResiliencePolicy,
        respawn: &'l dyn Fn(usize, u64, Vec<LaneState>),
    ) -> Self {
        let k = links.num_shards();
        Coordinator {
            config,
            graph,
            engine: WalkEngine::lazy(graph, config.criterion.laziness()),
            links,
            resilience,
            respawn,
            lanes: Vec::new(),
            conformance: WalkConformance::default(),
            seq: 0,
            command_log: Vec::new(),
            checkpoints: vec![(0, Vec::new()); k],
            recoveries_used: vec![0; k],
            fault_log: FaultLog::default(),
        }
    }

    fn ensure_lanes(&mut self, count: usize) {
        while self.lanes.len() < count {
            self.lanes
                .push(WalkWorkspace::with_len(self.graph.num_vertices()));
        }
    }

    /// Issues the next command: assigns it the next sequence number,
    /// broadcasts it, and appends it to the command log.
    fn issue(&mut self, mut message: Message) -> u64 {
        self.seq += 1;
        let seq = self.seq;
        match &mut message {
            Message::LoadLanes { seq: s, .. } | Message::Step { seq: s, .. } => *s = seq,
            other => unreachable!("only commands are issued: {other:?}"),
        }
        self.links.broadcast(&message);
        self.command_log.push((seq, message));
        seq
    }

    /// Re-sends the logged commands from `from` onwards to one shard.
    fn resend_log(&self, shard: usize, from: u64) {
        for (seq, message) in &self.command_log {
            if *seq >= from {
                self.links.send(shard, message.clone());
            }
        }
    }

    /// Drops log entries every live shard has durably passed: each shard's
    /// recovery replays from its own checkpoint, so nothing below the oldest
    /// checkpoint can ever be asked for again (a live shard's `Nack` always
    /// names a seq past its own checkpoint).
    fn prune_log(&mut self) {
        let oldest = self
            .checkpoints
            .iter()
            .map(|(seq, _)| *seq)
            .min()
            .unwrap_or(0);
        if oldest > 0 {
            self.command_log.retain(|(seq, _)| *seq > oldest);
        }
    }

    /// Re-materialises a silent shard from its last checkpoint: respawn a
    /// worker, ask the peers to re-send the replay window's delta buckets,
    /// and replay the command log to it.
    ///
    /// # Errors
    ///
    /// [`CdrwError::ShardFailure`] when the shard's recovery budget
    /// ([`ResiliencePolicy::max_recoveries`]) is exhausted.
    fn recover(&mut self, shard: usize, current_seq: u64) -> Result<(), CdrwError> {
        if self.recoveries_used[shard] >= self.resilience.max_recoveries {
            return Err(CdrwError::ShardFailure {
                shard,
                seq: current_seq,
                reason: format!(
                    "silent past {} retries with all {} recoveries spent",
                    self.resilience.max_retries, self.resilience.max_recoveries
                ),
            });
        }
        self.recoveries_used[shard] += 1;
        let (checkpoint_seq, checkpoint) = self.checkpoints[shard].clone();
        (self.respawn)(shard, checkpoint_seq, checkpoint);
        let replay_from = checkpoint_seq + 1;
        self.fault_log.recoveries.push(ShardRecovery {
            shard,
            at_seq: current_seq,
            replay_from,
        });
        self.links.broadcast(&Message::Assist {
            shard,
            from_seq: replay_from,
            to_seq: current_seq,
        });
        self.resend_log(shard, replay_from);
        Ok(())
    }

    /// Handles one non-`StepDone` shard message inside a collect loop,
    /// marking the sender alive in `heard`.
    fn absorb_control(&mut self, message: Message, current_seq: u64, heard: &mut [bool]) {
        match message {
            Message::Busy { shard, .. } => heard[shard] = true,
            Message::Nack { shard, expected } => {
                heard[shard] = true;
                self.fault_log.nacks += 1;
                self.resend_log(shard, expected);
                if self.recoveries_used[shard] > 0 {
                    // A replaying replacement hit a gap (its re-sent log was
                    // itself lossy): refresh the peers' assist window too.
                    self.links.broadcast(&Message::Assist {
                        shard,
                        from_seq: expected,
                        to_seq: current_seq,
                    });
                }
            }
            Message::Checkpoint { seq, shard, lanes } => {
                heard[shard] = true;
                if seq > self.checkpoints[shard].0 {
                    self.checkpoints[shard] = (seq, lanes);
                    self.prune_log();
                }
            }
            _ => {}
        }
    }

    /// Loads `seeds[i]` as a fresh point-mass walk into lane `i`, on the
    /// shards and in the gathered view.
    fn load_lanes(&mut self, seeds: &[VertexId]) -> Result<(), CdrwError> {
        self.ensure_lanes(seeds.len());
        let mut message_seeds = Vec::with_capacity(seeds.len());
        for (lane, &seed) in seeds.iter().enumerate() {
            self.lanes[lane].load_point_mass(seed)?;
            message_seeds.push((lane as u32, seed));
        }
        if !message_seeds.is_empty() {
            // No direct reply: a lost copy surfaces as a `Nack` when the
            // next `Step`'s sequence number jumps past the gap.
            self.issue(Message::LoadLanes {
                seq: 0,
                seeds: message_seeds,
            });
        }
        Ok(())
    }

    /// One physical walk round for the given lanes: model the flood off the
    /// pre-step gathered state, command the shards, gather the post-step
    /// supports, and record the conformance ledger entry.
    ///
    /// The collect loop is the resilient heart of the engine: every wait is
    /// deadline-bounded with exponential backoff, a timeout re-broadcasts
    /// the round (shards absorb duplicates idempotently), and a shard silent
    /// past [`ResiliencePolicy::max_retries`] consecutive timeouts is
    /// declared dead and re-materialised from its checkpoint. Only the first
    /// accepted `StepDone` per shard enters the conformance ledger; all
    /// retry-induced traffic lands in the [`FaultLog`].
    ///
    /// # Errors
    ///
    /// [`CdrwError::ShardFailure`] when a shard dies beyond the budget.
    fn step(&mut self, lanes: &[u32]) -> Result<(), CdrwError> {
        debug_assert!(!lanes.is_empty());
        let modelled: u64 = lanes
            .iter()
            .map(|&lane| sparse_walk_step_cost(self.graph, &self.lanes[lane as usize]).messages)
            .sum();
        let seq = self.issue(Message::Step {
            seq: 0,
            lanes: lanes.to_vec(),
        });

        let k = self.links.num_shards();
        let mut measured = 0u64;
        let mut gathered: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); lanes.len()];
        let mut done = vec![false; k];
        let mut late = vec![false; k];
        // Shards heard from (any message) since the current timeout streak
        // began: a live shard blocked on a dead peer's deltas answers the
        // retry re-broadcast with `Busy`, so only the truly silent are
        // re-materialised when the retry budget runs out.
        let mut heard = vec![false; k];
        let mut done_count = 0usize;
        let mut consecutive_timeouts = 0u32;
        while done_count < k {
            let backoff = self
                .resilience
                .round_timeout
                .saturating_mul(1u32 << consecutive_timeouts.min(5));
            match self.links.recv_deadline(backoff) {
                Ok(Message::StepDone {
                    seq: s,
                    shard,
                    lanes: shard_lanes,
                }) => {
                    heard[shard] = true;
                    if s == seq && !done[shard] {
                        consecutive_timeouts = 0;
                        done[shard] = true;
                        done_count += 1;
                        if late[shard] {
                            late[shard] = false;
                            self.fault_log.stragglers += 1;
                        }
                        debug_assert_eq!(shard_lanes.len(), lanes.len());
                        for (slot, state) in shard_lanes.into_iter().enumerate() {
                            debug_assert_eq!(state.lane, lanes[slot]);
                            measured += state.emitted_messages;
                            gathered[slot].extend(state.support);
                        }
                    } else {
                        // A replay or a chaos duplicate: charged to the fault
                        // log, never to the conformance ledger.
                        self.fault_log.duplicate_replies += 1;
                        self.fault_log.replayed_messages += shard_lanes
                            .iter()
                            .map(|state| state.emitted_messages)
                            .sum::<u64>();
                    }
                }
                Ok(other) => self.absorb_control(other, seq, &mut heard),
                // The mesh's reconnector keeps the coordinator channel open,
                // so a disconnect here means every shard endpoint crashed at
                // once — handled like silence: retry, then recover.
                Err(TransportError::Timeout) | Err(TransportError::Disconnected) => {
                    self.fault_log.timeouts += 1;
                    consecutive_timeouts += 1;
                    if consecutive_timeouts == 1 {
                        // A fresh timeout streak: liveness must be re-proven
                        // against the retry probes that follow.
                        heard.fill(false);
                    }
                    if consecutive_timeouts > self.resilience.max_retries {
                        let silent: Vec<usize> = (0..k)
                            .filter(|&shard| !done[shard] && !heard[shard])
                            .collect();
                        if silent.is_empty() {
                            // Everyone claims to be alive yet the round is
                            // stuck: break the deadlock by re-materialising
                            // the least-recovered missing shard.
                            let fallback = (0..k)
                                .filter(|&shard| !done[shard])
                                .min_by_key(|&shard| self.recoveries_used[shard])
                                .expect("done_count < k leaves a missing shard");
                            self.recover(fallback, seq)?;
                        }
                        for shard in silent {
                            self.recover(shard, seq)?;
                        }
                        heard.fill(false);
                        consecutive_timeouts = 0;
                    } else {
                        self.fault_log.retries += 1;
                        for (shard, done) in done.iter().enumerate() {
                            if !done {
                                late[shard] = true;
                            }
                        }
                        // Re-broadcast the round: finished shards re-send
                        // their cached replies (the lost message might be
                        // theirs), stuck shards answer `Busy` and re-send
                        // their in-flight delta buckets.
                        self.links.broadcast(&Message::Step {
                            seq,
                            lanes: lanes.to_vec(),
                        });
                        // A recovered shard still missing may be wedged in
                        // its replay because the assist (or its re-sent
                        // deltas) was lost: probe the peers again.
                        for (shard, finished) in done.iter().enumerate() {
                            if !finished && self.recoveries_used[shard] > 0 {
                                self.links.broadcast(&Message::Assist {
                                    shard,
                                    from_seq: self.checkpoints[shard].0 + 1,
                                    to_seq: seq,
                                });
                            }
                        }
                    }
                }
            }
        }
        for (slot, mut support) in gathered.into_iter().enumerate() {
            // Shard supports are disjoint (each vertex has one home), so an
            // unstable sort by vertex is deterministic.
            support.sort_unstable_by_key(|&(v, _)| v);
            self.lanes[lanes[slot] as usize]
                .load_sparse(&support)
                .expect("gathered support is in range");
        }

        let ledger = &mut self.conformance;
        ledger.physical_rounds += 1;
        ledger.lane_rounds += lanes.len() as u64;
        ledger.measured_messages += measured;
        ledger.modelled_messages += modelled;
        ledger.per_round.push(RoundConformance {
            round: ledger.physical_rounds,
            lanes: lanes.len() as u32,
            measured_messages: measured,
            modelled_messages: modelled,
        });
        Ok(())
    }

    /// Snapshot of the running totals, for per-detection attribution.
    fn checkpoint(&self) -> (u64, u64, u64, u64) {
        let c = &self.conformance;
        (
            c.lane_rounds,
            c.physical_rounds,
            c.measured_messages,
            c.modelled_messages,
        )
    }

    fn flood_since(&self, seed: VertexId, mark: (u64, u64, u64, u64)) -> DetectionFlood {
        let c = &self.conformance;
        DetectionFlood {
            seed,
            lane_rounds: c.lane_rounds - mark.0,
            physical_rounds: c.physical_rounds - mark.1,
            measured_messages: c.measured_messages - mark.2,
            modelled_messages: c.modelled_messages - mark.3,
        }
    }

    /// Mirror of `Cdrw::detect_all`: the pool loop, then the configured
    /// assembly.
    fn detect_all(&mut self, delta: f64) -> Result<DetectionResult, CdrwError> {
        let n = self.graph.num_vertices();
        let mut in_pool = vec![true; n];
        let pool = shuffled_seed_pool(n, self.config.seed);

        let pooling = self.config.assembly.is_pooled();
        let mut evidence =
            WalkEvidence::for_graph_if(self.config.ensemble.is_ensemble() || pooling, self.graph);

        let mut detections: Vec<CommunityDetection> = Vec::new();
        for &seed in &pool {
            if !in_pool[seed] {
                continue;
            }
            let mark = self.checkpoint();
            let detection = self.detect_community(&mut evidence, seed, delta, pooling)?;
            self.conformance
                .per_detection
                .push(self.flood_since(seed, mark));
            if pooling {
                evidence.pool_epoch(detections.len() as u32);
            }
            for &v in &detection.members {
                in_pool[v] = false;
            }
            in_pool[seed] = false;
            detections.push(detection);
        }
        if let AssemblyPolicy::Pooled { reseed, quorum } = self.config.assembly {
            let mark = self.checkpoint();
            let result =
                self.assemble_detections(&mut evidence, detections, delta, reseed, quorum)?;
            self.conformance.assembly = Some(self.flood_since(usize::MAX, mark));
            return Ok(result);
        }
        Ok(DetectionResult::new(n, detections, delta))
    }

    /// Mirror of `Cdrw::detect_community_in`.
    fn detect_community(
        &mut self,
        evidence: &mut WalkEvidence,
        seed: VertexId,
        delta: f64,
        record_claims: bool,
    ) -> Result<CommunityDetection, CdrwError> {
        if self.graph.degree(seed) == 0 {
            let detection = CommunityDetection {
                seed,
                members: vec![seed],
                trace: DetectionTrace {
                    steps: Vec::new(),
                    stopped_by_growth_rule: false,
                    delta,
                    ensemble: None,
                },
            };
            if record_claims {
                evidence.begin();
                evidence.record_walk(&detection.members, 0.0)?;
            }
            return Ok(detection);
        }
        if !self.config.ensemble.is_ensemble() {
            let floor = self.config.min_stop_size(self.graph.num_vertices());
            let (detection, margin) = self.detect_single(seed, delta, floor)?;
            if record_claims {
                evidence.begin();
                evidence.record_walk(&detection.members, margin)?;
            }
            return Ok(detection);
        }
        self.detect_ensemble(evidence, seed, delta)
    }

    /// Mirror of `Cdrw::detect_single_in`, stepping lane 0 on the shards.
    fn detect_single(
        &mut self,
        seed: VertexId,
        delta: f64,
        stop_floor: usize,
    ) -> Result<(CommunityDetection, f64), CdrwError> {
        let n = self.graph.num_vertices();
        let mixing_config = self.config.local_mixing_config(n);
        let max_length = self.config.max_walk_length(n);

        self.load_lanes(&[seed])?;
        let mut trace = DetectionTrace {
            steps: Vec::with_capacity(max_length),
            stopped_by_growth_rule: false,
            delta,
            ensemble: None,
        };
        let mut tracker = GrowthTracker::new(stop_floor, delta, None);
        for walk_length in 1..=max_length {
            self.step(&[0])?;
            let outcome = self.engine.sweep(&mut self.lanes[0], &mixing_config)?;
            trace.steps.push(StepTrace {
                walk_length,
                mixing_set_size: outcome.size(),
                sizes_checked: outcome.sizes_checked(),
            });
            if tracker.observe_outcome(self.graph, seed, outcome, mixing_config.threshold) {
                break;
            }
        }

        let fired = tracker.fired();
        trace.stopped_by_growth_rule = fired;
        let (members, margin, _) = tracker.conclude(self.graph, seed);
        let mut detection = finish(seed, members, trace);
        if fired {
            if let Some(last) = detection.trace.steps.last_mut() {
                last.mixing_set_size = detection.members.len();
            }
        }
        Ok((detection, margin))
    }

    /// Mirror of `Cdrw::run_walks_batched`: one walk per seed, all active
    /// lanes stepped in one physical round per iteration (the batching
    /// deviation — decisions are unchanged because each lane's sharded step
    /// is bit-identical to its solo step).
    fn run_walks_batched(
        &mut self,
        seeds: &[VertexId],
        delta: f64,
        stop_floor: usize,
        bounded_cap: usize,
    ) -> Result<Vec<WalkAnswer>, CdrwError> {
        let n = self.graph.num_vertices();
        let mixing_config = self.config.local_mixing_config(n);
        let max_length = self.config.max_walk_length(n);

        self.load_lanes(seeds)?;
        let mut trackers: Vec<GrowthTracker> = seeds
            .iter()
            .map(|_| GrowthTracker::new(stop_floor, delta, Some(bounded_cap)))
            .collect();
        let mut active = vec![true; seeds.len()];
        for _ in 1..=max_length {
            let stepping: Vec<u32> = active
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(lane, _)| lane as u32)
                .collect();
            if stepping.is_empty() {
                break;
            }
            self.step(&stepping)?;
            for (lane, &walk_seed) in seeds.iter().enumerate() {
                if !active[lane] {
                    continue;
                }
                let outcome = self.engine.sweep(&mut self.lanes[lane], &mixing_config)?;
                if trackers[lane].observe_outcome(
                    self.graph,
                    walk_seed,
                    outcome,
                    mixing_config.threshold,
                ) {
                    active[lane] = false;
                }
            }
        }
        Ok(trackers
            .into_iter()
            .zip(seeds)
            .map(|(tracker, &walk_seed)| tracker.conclude(self.graph, walk_seed))
            .collect())
    }

    /// Mirror of `Cdrw::detect_ensemble_in`.
    fn detect_ensemble(
        &mut self,
        evidence: &mut WalkEvidence,
        seed: VertexId,
        delta: f64,
    ) -> Result<CommunityDetection, CdrwError> {
        let n = self.graph.num_vertices();
        let walks = self.config.ensemble.walks();
        let base_floor = self.config.min_stop_size(n);
        let (base, base_margin) = self.detect_single(seed, delta, base_floor)?;

        evidence.begin();
        evidence.record_walk(&base.members, base_margin)?;
        // Lane 0 still holds the base walk's final gathered distribution —
        // the same affinity signal the sequential driver ranks interior
        // seeds by.
        let followups =
            select_interior_seeds(self.graph, &self.lanes[0], &base.members, seed, walks - 1);
        let escalated_floor = base_floor.max(base.members.len() + 1);

        let mut walk_traces = vec![EnsembleWalkTrace {
            seed,
            set_size: base.members.len(),
            margin: base_margin,
            contributed: 0,
        }];
        let CommunityDetection {
            members: base_members,
            trace: mut base_trace,
            ..
        } = base;
        let mut sets: Vec<Vec<VertexId>> = vec![base_members];
        let answers = self.run_walks_batched(&followups, delta, escalated_floor, n / 2)?;
        for (&followup_seed, (members, walk_margin, bounded)) in followups.iter().zip(answers) {
            let (voted, margin) = community_scale_vote(members, walk_margin, bounded, n / 2)
                .unwrap_or((Vec::new(), 0.0));
            if !voted.is_empty() {
                evidence.record_walk(&voted, margin)?;
            }
            walk_traces.push(EnsembleWalkTrace {
                seed: followup_seed,
                set_size: voted.len(),
                margin,
                contributed: 0,
            });
            sets.push(voted);
        }

        let quorum = self.config.ensemble.quorum().min(evidence.walks_recorded());
        let members = evidence.consensus_with(quorum as u32, &sets[0]);
        for (walk, set) in walk_traces.iter_mut().zip(&sets) {
            walk.contributed = set
                .iter()
                .filter(|v| members.binary_search(v).is_ok())
                .count();
        }
        base_trace.ensemble = Some(EnsembleTrace {
            quorum,
            walks: walk_traces,
            consensus_size: members.len(),
        });
        Ok(finish(seed, members, base_trace))
    }

    /// Mirror of `Cdrw::assemble_detections`: the shared
    /// [`assembly::assemble_run`] drives the decisions; the re-seed walks run
    /// sharded through [`Coordinator::run_walks_batched`].
    fn assemble_detections(
        &mut self,
        evidence: &mut WalkEvidence,
        mut detections: Vec<CommunityDetection>,
        delta: f64,
        reseed: usize,
        quorum: usize,
    ) -> Result<DetectionResult, CdrwError> {
        let n = self.graph.num_vertices();
        let cap = n / 2;
        let member_sets: Vec<Vec<VertexId>> =
            detections.iter().map(|d| d.members.clone()).collect();
        let seeds: Vec<VertexId> = detections.iter().map(|d| d.seed).collect();
        let graph = self.graph;
        let outcome = assembly::assemble_run(
            graph,
            reseed,
            quorum,
            &member_sets,
            &seeds,
            evidence,
            |walk_seeds, floor| {
                let answers = self.run_walks_batched(walk_seeds, delta, floor, cap)?;
                Ok(answers
                    .into_iter()
                    .map(|(members, margin, bounded)| {
                        community_scale_vote(members, margin, bounded, cap)
                    })
                    .collect())
            },
        )?;
        for (detection, refined) in detections.iter_mut().zip(outcome.refined) {
            detection.members = refined;
        }
        Ok(DetectionResult::assembled(
            n,
            detections,
            outcome.partition,
            outcome.report,
            delta,
        ))
    }
}

/// Mirror of `Cdrw::finish`: a detection always contains its seed.
fn finish(seed: VertexId, mut members: Vec<VertexId>, trace: DetectionTrace) -> CommunityDetection {
    if members.binary_search(&seed).is_err() {
        members.push(seed);
        members.sort_unstable();
    }
    CommunityDetection {
        seed,
        members,
        trace,
    }
}
